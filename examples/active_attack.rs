//! Anatomy of the ∇Sim attack: passive observation vs active protocol
//! abuse.
//!
//! The passive adversary watches the honest protocol; the active one sends
//! participants a crafted model **equidistant** from its per-attribute
//! attack models, so each class's gradient pull is maximally
//! distinguishable. This example builds both variants by hand on an
//! LFW-like population (smile-detection task, gender as the sensitive
//! attribute) and shows the amplification, then shows MixNN neutralizing
//! both.
//!
//! Run with: `cargo run --release --example active_attack`

use mixnn::attacks::{AttackMode, GradSim, GradSimConfig, InferenceExperiment};
use mixnn::data::{lfw_like, AttributeMechanism, Dataset};
use mixnn::enclave::AttestationService;
use mixnn::fl::{DirectTransport, FlConfig};
use mixnn::nn::zoo;
use mixnn::proxy::{MixnnProxy, MixnnProxyConfig, MixnnTransport, TransportMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut spec = lfw_like(23);
    spec.train_per_participant = 48;
    // A clearly gendered face signal so the example separates the passive
    // and active variants visibly at this miniature scale.
    spec.mechanism = AttributeMechanism::Signal { strength: 0.8 };
    let population = spec.generate()?;
    let mut rng = StdRng::seed_from_u64(2);
    let template = zoo::deepface_like(zoo::InputSpec::new(1, 8, 8), 2, 4, &mut rng);
    println!(
        "DeepFace-like model: {} layers, {} parameters",
        template.num_trainable_layers(),
        template.num_parameters()
    );

    let fl_cfg = FlConfig {
        rounds: 8,
        local_epochs: 2,
        batch_size: 16,
        clients_per_round: 20,
        seed: 23,
        ..FlConfig::default()
    };
    let attack_cfg = GradSimConfig {
        attack_epochs: 5,
        seed: 23,
        ..GradSimConfig::default()
    };

    // Peek inside the attack: fit reference models and inspect the crafted
    // equidistant model.
    let background: Vec<(usize, Dataset)> = (0..2)
        .map(|attr| {
            let ids: Vec<usize> = population
                .participants()
                .iter()
                .filter(|p| p.attribute() == attr)
                .take(4)
                .map(|p| p.id())
                .collect();
            (attr, population.pooled_train_data(&ids).expect("non-empty"))
        })
        .collect();
    let gradsim = GradSim::fit(
        &template,
        &template.params(),
        &background,
        &fl_cfg,
        &attack_cfg,
    )?;
    let crafted = gradsim.equidistant_model();
    let d0 = crafted.l2_distance(gradsim.reference(0).unwrap()).unwrap();
    let d1 = crafted.l2_distance(gradsim.reference(1).unwrap()).unwrap();
    println!("crafted model distances to attack models: {d0:.4} vs {d1:.4} (equidistant)");

    // Passive vs active against undefended FL, averaged over a few seeds
    // (the target set is small, so single runs are coarse).
    for (name, mode) in [
        ("passive", AttackMode::Passive),
        ("active", AttackMode::Active),
    ] {
        let mut accuracies = Vec::new();
        for rep in 0..3u64 {
            let mut cfg = fl_cfg;
            cfg.seed = fl_cfg.seed + rep;
            let mut attack = attack_cfg.clone();
            attack.seed = attack_cfg.seed + rep;
            let experiment =
                InferenceExperiment::new(&population, template.clone(), cfg, attack, mode, 0.8);
            accuracies.push(experiment.run(&mut DirectTransport::new())?.final_accuracy);
        }
        let mean = accuracies.iter().sum::<f32>() / accuracies.len() as f32;
        println!(
            "classic FL, {name} ∇Sim: inference accuracy {mean:.3} over 3 seeds (chance 0.500)"
        );
    }

    // The active attack against MixNN.
    let service = AttestationService::new(&mut rng);
    let proxy = MixnnProxy::launch(MixnnProxyConfig::default(), &service, &mut rng);
    let mut mixnn = MixnnTransport::new(proxy, TransportMode::Plaintext, 23);
    let experiment = InferenceExperiment::new(
        &population,
        template.clone(),
        fl_cfg,
        attack_cfg,
        AttackMode::Active,
        0.8,
    );
    let result = experiment.run(&mut mixnn)?;
    println!(
        "MixNN, active ∇Sim: inference accuracy {:.3} (chance {:.3})",
        result.final_accuracy,
        result.chance_level()
    );
    println!(
        "\nNote: at this miniature scale (4 targets, a {}-parameter model) the\n\
         passive attack already saturates, so the active variant's advantage is\n\
         not visible; its mechanics (the equidistant crafted model) are. The\n\
         paper-scale curves come from `cargo run --release -p mixnn-bench --bin\n\
         eval -- fig7`.",
        template.num_parameters()
    );
    Ok(())
}
