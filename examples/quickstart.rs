//! Quickstart: federated learning with and without the MixNN proxy.
//!
//! Runs three learning rounds of classic FL and of MixNN-protected FL from
//! the same seed and shows the paper's core property: **the global models
//! are bit-for-bit identical** — mixing costs no utility — while the
//! updates the server observes are no longer attributable.
//!
//! Run with: `cargo run --release --example quickstart`

use mixnn::data::motionsense_like;
use mixnn::enclave::AttestationService;
use mixnn::fl::{DirectTransport, FlConfig, FlSimulation};
use mixnn::nn::zoo;
use mixnn::proxy::{MixnnProxy, MixnnProxyConfig, MixnnTransport, TransportMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A federated population: 24 participants with a sensitive
    //    attribute (gender) shaping their sensor data.
    let mut spec = motionsense_like(42);
    spec.train_per_participant = 32;
    let population = spec.generate()?;
    println!(
        "population: {} participants, attribute histogram {:?}",
        population.len(),
        population.attribute_histogram()
    );

    // 2. The model every participant trains: 2 conv + 3 dense layers.
    let mut rng = StdRng::seed_from_u64(7);
    let template = zoo::conv2_fc3(zoo::InputSpec::new(1, 8, 8), 6, 2, 16, &mut rng);
    let cfg = FlConfig {
        rounds: 3,
        local_epochs: 1,
        batch_size: 16,
        clients_per_round: 12,
        seed: 42,
        ..FlConfig::default()
    };

    // 3a. Classic FL: updates go straight to the server.
    let mut classic = FlSimulation::new(template.clone(), cfg, &population);
    let mut direct = DirectTransport::new();
    for _ in 0..cfg.rounds {
        classic.run_round(&mut direct)?;
    }

    // 3b. MixNN: updates are sealed to an attested enclave, which mixes
    //     layers across participants before forwarding.
    let mut protected = FlSimulation::new(template.clone(), cfg, &population);
    let service = AttestationService::new(&mut rng);
    let proxy = MixnnProxy::launch(MixnnProxyConfig::default(), &service, &mut rng);
    assert!(proxy.verify_against(&service), "attestation must verify");
    let mut mixnn = MixnnTransport::new(proxy, TransportMode::Encrypted, 42);
    for _ in 0..cfg.rounds {
        protected.run_round(&mut mixnn)?;
    }

    // 4. The paper's §4.2 theorem, observed: identical global models.
    assert_eq!(
        classic.global(),
        protected.global(),
        "MixNN must not change the aggregated model"
    );
    let eval = protected.evaluate_global(population.global_test())?;
    println!(
        "after {} rounds: identical global models, accuracy {:.3}",
        cfg.rounds, eval.accuracy
    );
    println!(
        "proxy processed {} updates ({} bytes), mean decrypt {:.2} ms",
        mixnn.proxy().stats().updates_received,
        mixnn.proxy().stats().bytes_received,
        mixnn.proxy().stats().mean_decrypt_seconds() * 1000.0
    );
    Ok(())
}
