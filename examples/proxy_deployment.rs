//! The systems view of a MixNN **cascade** deployment.
//!
//! The single-proxy walkthrough this example used to show had one point
//! of trust: whoever compromised that proxy saw every (client, layer)
//! assignment. This version deploys a 3-hop mix cascade instead and walks
//! through what an operator and a participant each see: per-hop enclave
//! launch, attestation of **every** hop before the first round, onion
//! sizes on the wire, per-hop §6.5-style cost breakdowns, the audit that
//! inverts the chain, and the skip-vs-abort failure semantics when a hop
//! dies mid-round.
//!
//! Run with: `cargo run --release --example proxy_deployment`

use mixnn::attacks::analyze_routed_collusion;
use mixnn::cascade::{
    CascadeClient, CascadeConfig, CascadeCoordinator, CascadeHopConfig, FailurePolicy, LinearChain,
    StratifiedLayout,
};
use mixnn::enclave::{AttestationService, EnclaveConfig};
use mixnn::nn::{LayerParams, ModelParams};
use mixnn::proxy::codec::CompressionConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synthetic_update(layers: &[usize], rng: &mut StdRng) -> ModelParams {
    ModelParams::from_layers(
        layers
            .iter()
            .map(|&len| {
                LayerParams::from_values((0..len).map(|_| rng.gen_range(-1.0..1.0)).collect())
            })
            .collect(),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(99);
    let signature = vec![4_096usize, 16_384, 8_192, 1_024, 130];
    let hops = 3;

    // --- Operator side: launch and publish the chain --------------------
    let service = AttestationService::new(&mut rng);
    let mut cascade = CascadeCoordinator::linear(
        signature.clone(),
        hops,
        99,
        FailurePolicy::Abort,
        &service,
        &mut rng,
    )?;
    for hop in cascade.hops() {
        println!(
            "hop {} launched, EPC limit: {} MiB",
            hop.index(),
            hop.memory_stats().limit / (1024 * 1024)
        );
    }

    // --- Participant side: attest EVERY hop before the first round ------
    // One unverified hop would reintroduce the single point of trust the
    // chain exists to remove, so the client constructor checks each quote
    // (platform signature, expected measurement, key binding) and refuses
    // the chain otherwise.
    let client = CascadeClient::from_attested_hops(&cascade.descriptors(), &service)?;
    println!(
        "attestation verified for all {} hops: quotes match the published hop code and bind their keys",
        client.num_hops()
    );

    // --- Onion sizes on the wire -----------------------------------------
    let update = synthetic_update(&signature, &mut rng);
    let onion = client.seal_update(&update, &mut rng)?;
    println!(
        "update wire size: {} bytes plaintext, {} bytes as a {hops}-hop onion\n\
         (each hop strips one sealed envelope of {} bytes per layer)",
        mixnn::proxy::codec::encode_params(&update).len(),
        onion.len(),
        mixnn::crypto::sealed_box::OVERHEAD,
    );

    // --- A round of onion updates ----------------------------------------
    let clients = 12;
    let updates: Vec<ModelParams> = (0..clients)
        .map(|_| synthetic_update(&signature, &mut rng))
        .collect();
    let round = cascade.run_round(&updates, &mut rng)?;
    println!(
        "\nround traversed hops {:?}; per-hop costs (§6.5 breakdown):",
        round.chain
    );
    println!("  hop  decrypt ms  store ms  mix ms  high-water MiB");
    for (hop, stats) in cascade.hop_stats().iter().enumerate() {
        println!(
            "  {hop}    {:>8.2}  {:>8.2}  {:>6.2}  {:>14.2}",
            stats.decrypt_seconds * 1000.0,
            stats.store_seconds * 1000.0,
            stats.mix_seconds * 1000.0,
            cascade.hops()[hop].memory_stats().high_water as f64 / (1024.0 * 1024.0),
        );
    }

    // --- Utility equivalence and the audit -------------------------------
    assert_eq!(
        ModelParams::mean(&updates),
        ModelParams::mean(&round.mixed),
        "cascading must not change the aggregate"
    );
    assert_eq!(round.audit.unmix(&round.mixed)?, updates);
    println!(
        "aggregate bit-identical to classic FL; audit inverted all {} per-hop plans\n\
         (outside the audit, linking requires ALL hops to collude — see `eval cascade`)",
        round.audit.plans()?.len()
    );

    // --- Failure handling: a tampered onion ------------------------------
    // A standalone hop shows the envelope authentication: flip one
    // ciphertext bit and the hop rejects the round without leaking memory.
    let mut lone_hop = mixnn::cascade::CascadeHop::launch(
        0,
        CascadeHopConfig::default(),
        &signature,
        &service,
        &mut rng,
    );
    let lone_client = CascadeClient::from_attested_hops(&[lone_hop.descriptor()], &service)?;
    let mut tampered = lone_client.seal_update(&update, &mut rng)?;
    let last = tampered.len() - 1;
    tampered[last] ^= 1;
    match lone_hop.mix_round(&[tampered]) {
        Err(e) => println!("\ntampered onion rejected: {e}"),
        Ok(_) => unreachable!("tampering must not pass authentication"),
    }
    assert_eq!(
        lone_hop.memory_stats().allocated,
        0,
        "failed round must release its EPC charges"
    );

    // --- Failure handling: skip vs abort ---------------------------------
    // A fresh cascade whose middle hop has a starved EPC. Under Abort the
    // round fails closed; under Skip the chain routes around the dead hop
    // and the round still completes (with 2 surviving hops).
    for policy in [FailurePolicy::Abort, FailurePolicy::Skip] {
        let mut hop_configs: Vec<CascadeHopConfig> = (0..hops)
            .map(|i| CascadeHopConfig {
                seed: 200 + i as u64,
                ..CascadeHopConfig::default()
            })
            .collect();
        hop_configs[1].enclave = EnclaveConfig {
            epc_limit: 1024, // far below one round's onion footprint
            code_identity: mixnn::cascade::HOP_CODE_IDENTITY.to_vec(),
            allow_paging: false,
        };
        let mut degraded = CascadeCoordinator::launch(
            CascadeConfig {
                expected_signature: signature.clone(),
                hops: hop_configs,
                policy,
                parallelism: mixnn::proxy::Parallelism::sequential(),
                compression: CompressionConfig::F32,
            },
            Box::new(LinearChain::new(hops)),
            &service,
            &mut rng,
        )?;
        match degraded.run_round(&updates, &mut rng) {
            Ok(round) => println!(
                "policy {policy:?}: round completed on surviving chain {:?} (skipped {:?})",
                round.chain, round.skipped_this_round
            ),
            Err(e) => println!("policy {policy:?}: round failed closed: {e}"),
        }
    }

    // --- Beyond the chain: stratified routing --------------------------
    // Four hops in two strata; every client traverses ONE hop per stratum
    // (a 2-hop route instead of 4), so the round splits into per-route
    // mixing groups. Shorter routes buy latency; the price is that a
    // client's anonymity set shrinks from the whole round to its route
    // group — and a colluding subset that covers a client's entire route
    // links it without compromising the other hops at all.
    let mut stratified = CascadeCoordinator::with_topology(
        signature.clone(),
        Box::new(StratifiedLayout::evenly(4, 2, 99)),
        7,
        FailurePolicy::Abort,
        &service,
        &mut rng,
    )?;
    // Each participant verifies and seals to its own route.
    let slot0 = stratified.client_for_slot(0, &service)?;
    println!(
        "\nstratified cascade: 4 hops in 2 strata; slot 0 attested its {}-hop route",
        slot0.num_hops()
    );
    let round = stratified.run_round(&updates, &mut rng)?;
    assert_eq!(
        ModelParams::mean(&updates),
        ModelParams::mean(&round.mixed),
        "route-group mixing must not change the aggregate either"
    );
    assert_eq!(round.audit.unmix(&round.mixed)?, updates);
    // The adversary that owns stratum 0 entirely still covers no client's
    // whole route, so every anonymity set stays a full route group.
    let colluding = [0usize, 1];
    let views: Vec<mixnn::attacks::RouteGroupView> = round
        .audit
        .groups()
        .iter()
        .map(|g| {
            mixnn::attacks::RouteGroupView::for_group(g.slots(), g.route(), g.plans(), &colluding)
        })
        .collect();
    let report = analyze_routed_collusion(&views, clients, signature.len());
    println!(
        "route groups {:?}; with stratum 0 fully colluding, {} of {clients} clients linked,\n\
         per-client anonymity distribution {:?} (see `eval topology` for the full sweep)",
        round
            .audit
            .groups()
            .iter()
            .map(|g| (g.route().to_vec(), g.members()))
            .collect::<Vec<_>>(),
        report.linked_clients(),
        report.anonymity_distribution(),
    );
    Ok(())
}
