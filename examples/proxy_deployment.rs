//! The systems view of a MixNN deployment (§4.3 and §6.5 of the paper).
//!
//! Walks through what an operator and a participant each see: enclave
//! launch and attestation, sealed update submission, per-stage costs
//! (decrypt / store / mix), EPC memory accounting, and the batch vs
//! streaming mixing strategies — including what happens when things go
//! wrong (tampered ciphertexts, over-budget models).
//!
//! Run with: `cargo run --release --example proxy_deployment`

use mixnn::crypto::SealedBox;
use mixnn::enclave::{AttestationService, Enclave, EnclaveConfig};
use mixnn::nn::{LayerParams, ModelParams};
use mixnn::proxy::{codec, MixingStrategy, MixnnProxy, MixnnProxyConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synthetic_update(layers: &[usize], rng: &mut StdRng) -> ModelParams {
    ModelParams::from_layers(
        layers
            .iter()
            .map(|&len| {
                LayerParams::from_values((0..len).map(|_| rng.gen_range(-1.0..1.0)).collect())
            })
            .collect(),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(99);
    let signature = vec![4_096usize, 16_384, 8_192, 1_024, 130];

    // --- Operator side: launch and publish the proxy -------------------
    let service = AttestationService::new(&mut rng);
    let config = MixnnProxyConfig {
        strategy: MixingStrategy::Batch,
        expected_signature: signature.clone(),
        seed: 99,
        ..MixnnProxyConfig::default()
    };
    let mut proxy = MixnnProxy::launch(config, &service, &mut rng);
    println!(
        "enclave launched, EPC limit: {} MiB",
        proxy.memory_stats().limit / (1024 * 1024)
    );

    // --- Participant side: verify before trusting ----------------------
    let expected = Enclave::expected_measurement(&EnclaveConfig::default());
    assert!(service.verify_quote(proxy.quote(), &expected));
    assert!(proxy.verify_against(&service));
    println!("attestation verified: quote matches the published proxy code and binds its key");

    // --- A round of sealed updates --------------------------------------
    let clients = 12;
    for i in 0..clients {
        let update = synthetic_update(&signature, &mut rng);
        let bytes = codec::encode_params(&update);
        let sealed = SealedBox::seal(&bytes, proxy.public_key(), &mut rng);
        if i == 0 {
            println!(
                "update wire size: {} bytes plaintext, {} bytes sealed",
                bytes.len(),
                sealed.len()
            );
        }
        proxy.submit_encrypted(&sealed)?;
    }
    println!(
        "EPC while buffered: {:.2} MiB (high water {:.2} MiB)",
        proxy.memory_stats().allocated as f64 / (1024.0 * 1024.0),
        proxy.memory_stats().high_water as f64 / (1024.0 * 1024.0),
    );

    let mixed = proxy.mix_batch()?;
    println!(
        "mixed {} updates; plan row-distinct: {}",
        mixed.len(),
        proxy
            .last_plan()
            .map(|p| p.is_row_distinct())
            .unwrap_or(false)
    );

    let stats = proxy.stats();
    println!(
        "per-update costs: decrypt {:.2} ms, store {:.2} ms, mix {:.2} ms (§6.5 breakdown)",
        stats.mean_decrypt_seconds() * 1000.0,
        stats.mean_store_seconds() * 1000.0,
        stats.mean_mix_seconds() * 1000.0,
    );

    // --- Failure handling ------------------------------------------------
    let update = synthetic_update(&signature, &mut rng);
    let bytes = codec::encode_params(&update);
    let mut tampered = SealedBox::seal(&bytes, proxy.public_key(), &mut rng);
    let last = tampered.len() - 1;
    tampered[last] ^= 1;
    match proxy.submit_encrypted(&tampered) {
        Err(e) => println!("tampered ciphertext rejected: {e}"),
        Ok(_) => unreachable!("tampering must not pass authentication"),
    }
    println!(
        "rejected so far: {} (accounting survives attacks)",
        proxy.stats().updates_rejected
    );

    // --- Streaming mode ---------------------------------------------------
    let mut streaming_proxy = MixnnProxy::launch(
        MixnnProxyConfig {
            strategy: MixingStrategy::Streaming { k: 4 },
            expected_signature: signature.clone(),
            seed: 100,
            ..MixnnProxyConfig::default()
        },
        &service,
        &mut rng,
    );
    let mut emitted = 0;
    for _ in 0..10 {
        let update = synthetic_update(&signature, &mut rng);
        let sealed = SealedBox::seal(
            &codec::encode_params(&update),
            streaming_proxy.public_key(),
            &mut rng,
        );
        if streaming_proxy.submit_encrypted(&sealed)?.is_some() {
            emitted += 1;
        }
    }
    let flushed = streaming_proxy.flush()?;
    println!(
        "streaming (k=4): 10 in, {emitted} emitted during streaming, {} at flush",
        flushed.len()
    );
    Ok(())
}
