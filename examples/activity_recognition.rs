//! Activity recognition under attack — the paper's motivating scenario.
//!
//! A fitness service learns an activity classifier (walking, jogging,
//! sitting, …) from phone sensors via federated learning. The aggregation
//! server is curious: it wants each user's **gender**, which the sensor
//! data betrays. This example runs the ∇Sim attack against the three
//! systems of the paper's evaluation — classic FL, the noisy-gradient
//! baseline and MixNN — and prints the leakage and the utility cost side
//! by side (a miniature of Figures 5 and 7).
//!
//! Run with: `cargo run --release --example activity_recognition`

use mixnn::attacks::{AttackMode, InferenceExperiment};
use mixnn::data::motionsense_like;
use mixnn::fl::{FlConfig, FlSimulation};
use mixnn::nn::zoo;
use rand::rngs::StdRng;
use rand::SeedableRng;

// Re-use the bench harness's defense lineup machinery inline to keep the
// example self-contained.
use mixnn::attacks::GradSimConfig;
use mixnn::enclave::AttestationService;
use mixnn::fl::{DirectTransport, NoisyTransport, UpdateTransport};
use mixnn::proxy::{MixnnProxy, MixnnProxyConfig, MixnnTransport, TransportMode};

fn transports(seed: u64, sigma: f32) -> Vec<(&'static str, Box<dyn UpdateTransport>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let service = AttestationService::new(&mut rng);
    let proxy = MixnnProxy::launch(MixnnProxyConfig::default(), &service, &mut rng);
    vec![
        ("classic-fl", Box::new(DirectTransport::new())),
        ("noisy-gradient", Box::new(NoisyTransport::new(sigma, seed))),
        (
            "mixnn",
            Box::new(MixnnTransport::new(proxy, TransportMode::Plaintext, seed)),
        ),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut spec = motionsense_like(11);
    spec.train_per_participant = 48;
    let population = spec.generate()?;
    let mut rng = StdRng::seed_from_u64(1);
    let template = zoo::conv2_fc3(zoo::InputSpec::new(1, 8, 8), 6, 2, 16, &mut rng);
    let fl_cfg = FlConfig {
        rounds: 8,
        local_epochs: 2,
        batch_size: 32,
        clients_per_round: 20,
        seed: 11,
        ..FlConfig::default()
    };
    let attack_cfg = GradSimConfig {
        attack_epochs: 3,
        seed: 11,
        ..GradSimConfig::default()
    };

    println!("system          activity-accuracy  gender-inference  (chance = 0.500)");
    println!("--------------  -----------------  ----------------");
    for (label, mut transport) in transports(11, 0.10) {
        // Leakage: the ∇Sim active attack over the whole run.
        let experiment = InferenceExperiment::new(
            &population,
            template.clone(),
            fl_cfg,
            attack_cfg.clone(),
            AttackMode::Active,
            0.8,
        );
        let inference = experiment.run(transport.as_mut())?;

        // Utility: a fresh honest run with the same defense.
        let mut sim = FlSimulation::new(template.clone(), fl_cfg, &population);
        let mut honest = match label {
            "classic-fl" => transports(12, 0.10).remove(0).1,
            "noisy-gradient" => transports(12, 0.10).remove(1).1,
            _ => transports(12, 0.10).remove(2).1,
        };
        for _ in 0..fl_cfg.rounds {
            sim.run_round(honest.as_mut())?;
        }
        let utility = sim.evaluate_global(population.global_test())?;

        println!(
            "{label:<14}  {:<17.3}  {:.3}",
            utility.accuracy, inference.final_accuracy
        );
    }
    println!(
        "\nMixNN keeps the activity accuracy of classic FL while pushing the\n\
         gender inference down to a coin flip — the paper's Figures 5 and 7."
    );
    Ok(())
}
