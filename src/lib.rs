//! # MixNN — facade crate
//!
//! Reproduction of *"MixNN: Protection of Federated Learning Against
//! Inference Attacks by Mixing Neural Network Layers"* (MIDDLEWARE 2022).
//!
//! This crate re-exports the whole workspace behind one dependency so that
//! examples and downstream users can write `use mixnn::...` for everything:
//!
//! * [`tensor`] — dense f32 tensors and vector math,
//! * [`nn`] — neural-network layers, losses and optimizers,
//! * [`data`] — synthetic federated datasets with sensitive attributes,
//! * [`fl`] — the federated-learning substrate (clients, server, rounds),
//! * [`proxy`] — **the paper's contribution**: the layer-mixing proxy,
//! * [`cascade`] — multi-hop onion-routed chains of mixing proxies,
//! * [`net`] — a deterministic simulated network (frame batching, load
//!   generation) the cascade and proxy can run over,
//! * [`telemetry`] — deterministic, aggregate-only metrics and round
//!   tracing with privacy-audited Prometheus/JSON exporters,
//! * [`attacks`] — the ∇Sim attribute-inference attack,
//! * [`crypto`] / [`enclave`] — the (simulated) SGX substrate the proxy
//!   runs in.
//!
//! See the repository `README.md` for a quickstart and `DESIGN.md` for the
//! full system inventory.

#![deny(missing_docs)]

pub use mixnn_attacks as attacks;
pub use mixnn_cascade as cascade;
pub use mixnn_core as proxy;
pub use mixnn_crypto as crypto;
pub use mixnn_data as data;
pub use mixnn_enclave as enclave;
pub use mixnn_fl as fl;
pub use mixnn_net as net;
pub use mixnn_nn as nn;
pub use mixnn_telemetry as telemetry;
pub use mixnn_tensor as tensor;
