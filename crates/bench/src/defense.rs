//! The three systems under comparison (§6.1.3): classic FL, the
//! noisy-gradient baseline and MixNN.

use mixnn_core::{MixingStrategy, MixnnProxy, MixnnProxyConfig, MixnnTransport, TransportMode};
use mixnn_enclave::AttestationService;
use mixnn_fl::{DirectTransport, NoisyTransport, Parallelism, UpdateTransport};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A defense (or its absence) applied to the update path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Defense {
    /// No protection: the server sees attributable raw updates.
    ClassicFl,
    /// Per-scalar Gaussian noise `N(0, σ²)` added on-device (local-DP
    /// style, §6.1.3).
    NoisyGradient {
        /// Noise standard deviation.
        sigma: f32,
    },
    /// The MixNN proxy (batch mixing, plaintext transport — mixing
    /// semantics identical to the encrypted path; §6.5 measures the
    /// encrypted path separately).
    MixNn,
}

impl Defense {
    /// The label used in experiment output (matches the paper's legends).
    pub fn label(&self) -> &'static str {
        match self {
            Defense::ClassicFl => "classic-fl",
            Defense::NoisyGradient { .. } => "noisy-gradient",
            Defense::MixNn => "mixnn",
        }
    }

    /// The three defenses compared in Figs. 5–8, with the configured noise
    /// scale.
    pub fn lineup(sigma: f32) -> [Defense; 3] {
        [
            Defense::ClassicFl,
            Defense::NoisyGradient { sigma },
            Defense::MixNn,
        ]
    }

    /// Builds the transport implementing this defense.
    ///
    /// For MixNN a fresh proxy is launched (attestation service and enclave
    /// included); the plaintext transport mode is used so large sweeps are
    /// not dominated by sealing costs — the encrypted pipeline is measured
    /// by the sysperf experiment and the Criterion benches.
    pub fn make_transport(&self, seed: u64) -> Box<dyn UpdateTransport> {
        match self {
            Defense::ClassicFl => Box::new(DirectTransport::new()),
            Defense::NoisyGradient { sigma } => Box::new(NoisyTransport::new(*sigma, seed)),
            Defense::MixNn => {
                let mut rng = StdRng::seed_from_u64(seed);
                let service = AttestationService::new(&mut rng);
                let proxy = MixnnProxy::launch(
                    MixnnProxyConfig {
                        strategy: MixingStrategy::Batch,
                        seed,
                        // Sharded mixing is bit-identical to sequential, so
                        // the sweeps can take the throughput for free.
                        parallelism: Parallelism::available(),
                        ..MixnnProxyConfig::default()
                    },
                    &service,
                    &mut rng,
                );
                Box::new(MixnnTransport::new(proxy, TransportMode::Plaintext, seed))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixnn_fl::ModelUpdate;
    use mixnn_nn::{LayerParams, ModelParams};

    fn updates(c: usize) -> Vec<ModelUpdate> {
        (0..c)
            .map(|i| {
                ModelUpdate::new(
                    i,
                    ModelParams::from_layers(vec![
                        LayerParams::from_values(vec![i as f32; 2]),
                        LayerParams::from_values(vec![i as f32; 2]),
                    ]),
                )
            })
            .collect()
    }

    #[test]
    fn labels_are_distinct() {
        let lineup = Defense::lineup(0.1);
        let labels: Vec<&str> = lineup.iter().map(Defense::label).collect();
        assert_eq!(labels, vec!["classic-fl", "noisy-gradient", "mixnn"]);
    }

    #[test]
    fn all_transports_relay_round() {
        for d in Defense::lineup(0.1) {
            let mut t = d.make_transport(7);
            let out = t.relay(updates(5)).unwrap();
            assert_eq!(out.len(), 5, "{}", d.label());
        }
    }

    #[test]
    fn classic_is_identity_noisy_and_mixnn_are_not() {
        let ins = updates(6);
        let out = Defense::ClassicFl
            .make_transport(0)
            .relay(ins.clone())
            .unwrap();
        assert_eq!(out, ins);
        let noisy = Defense::NoisyGradient { sigma: 0.5 }
            .make_transport(0)
            .relay(ins.clone())
            .unwrap();
        assert_ne!(noisy, ins);
        let mixed = Defense::MixNn.make_transport(0).relay(ins.clone()).unwrap();
        assert_ne!(mixed, ins);
        // MixNN preserves the aggregate exactly; noise does not.
        let mean_in = ModelParams::mean(&ins.iter().map(|u| u.params.clone()).collect::<Vec<_>>());
        let mean_mix =
            ModelParams::mean(&mixed.iter().map(|u| u.params.clone()).collect::<Vec<_>>());
        assert_eq!(mean_in, mean_mix);
    }
}
