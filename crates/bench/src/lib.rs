//! Experiment harness regenerating **every** evaluation artifact of the
//! MixNN paper: Figures 5–9 and the §6.5 system-performance numbers.
//!
//! Each experiment module produces printable row/series structures so the
//! `eval` binary can emit the same curves the paper plots:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`experiments::utility`] | Fig. 5 — model accuracy vs learning round |
//! | [`experiments::utility_cdf`] | Fig. 6 — CDF of per-participant accuracy |
//! | [`experiments::inference`] | Fig. 7 — ∇Sim inference accuracy vs round |
//! | [`experiments::background`] | Fig. 8 — inference vs background knowledge |
//! | [`experiments::robustness`] | Fig. 9 — CDF of close-gradient neighbours |
//! | [`experiments::sysperf`] | §6.5 — proxy cost and memory breakdown |
//! | [`experiments::throughput`] | beyond the paper — parallel-ingest scaling (`BENCH_throughput.json`) |
//! | [`experiments::cascade`] | beyond the paper — mix-cascade hop/collusion sweep (`BENCH_cascade.json`) |
//!
//! Experiments come in two scales: `paper` (the §6.1.4 round/epoch/batch
//! parameters) and `quick` (shrunk for smoke tests). Absolute numbers
//! differ from the paper — the substrate is a synthetic simulator, not the
//! authors' TensorFlow testbed — but the *shape* (who wins, by what
//! factor, where curves flatten) is the reproduction target; see
//! `EXPERIMENTS.md`.

#![deny(missing_docs)]

pub mod configs;
pub mod defense;
pub mod experiments;
pub mod report;

pub use configs::{DatasetKind, ExperimentScale, ExperimentSetup};
pub use defense::Defense;
