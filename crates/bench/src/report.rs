//! Plain-text table output for experiment results.

/// Prints an aligned table to stdout: a header row followed by data rows.
///
/// # Panics
///
/// Panics if any row's arity differs from the header's — a harness bug.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row arity mismatch in table");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    println!("\n== {title} ==");
    let header_line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:<w$}"))
        .collect();
    println!("{}", header_line.join("  "));
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Formats an accuracy/fraction with three decimals.
pub fn fmt3(v: f32) -> String {
    format!("{v:.3}")
}

/// Formats a duration in milliseconds with two decimals.
pub fn fmt_ms(seconds: f64) -> String {
    format!("{:.2}", seconds * 1000.0)
}

/// Formats a byte count in MB with two decimals.
pub fn fmt_mb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// The `q`-quantile (`0.0 ..= 1.0`) of `samples` by linear interpolation
/// between closest ranks. The input need not be sorted. Degenerate
/// inputs degrade instead of panicking: non-finite samples (NaN, ±∞)
/// are ignored, an input with no finite samples yields `0.0`, `q`
/// outside `[0, 1]` is clamped, and a NaN `q` reads as `0.0` (the
/// minimum) — so a report renders something sensible out of whatever a
/// partially failed run produced.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return 0.0;
    }
    sorted.sort_by(f64::total_cmp);
    let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (sorted[hi] - sorted[lo]) * (rank - lo as f64)
    }
}

/// The percentile summary every latency/duration table reports: median,
/// tail, extreme tail. Built once from a sample vector so experiments
/// stop hand-rolling their own aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

impl Percentiles {
    /// Summarizes `samples` (unsorted is fine; empty or all-non-finite
    /// yields all zeros — a single sample is its own median and tail,
    /// and NaN/±∞ samples are ignored like [`percentile`] does).
    pub fn from_samples(samples: &[f64]) -> Self {
        Percentiles {
            p50: percentile(samples, 0.50),
            p99: percentile(samples, 0.99),
            p999: percentile(samples, 0.999),
        }
    }
}

/// Mean of a non-empty f32 slice (0.0 for empty).
pub fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f32>() / values.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt3(0.12345), "0.123");
        assert_eq!(fmt_ms(0.19), "190.00");
        assert_eq!(fmt_mb(26_900_000), "25.65");
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn percentiles_interpolate_and_handle_degenerate_inputs() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let p = Percentiles::from_samples(&samples);
        assert_eq!(p.p50, 50.5);
        assert!((p.p99 - 99.01).abs() < 1e-9);
        assert!((p.p999 - 99.901).abs() < 1e-9);
        // Order must not matter.
        let mut reversed = samples.clone();
        reversed.reverse();
        assert_eq!(p, Percentiles::from_samples(&reversed));
        // A single sample is every percentile; empty is all zeros.
        let one = Percentiles::from_samples(&[7.0]);
        assert_eq!((one.p50, one.p99, one.p999), (7.0, 7.0, 7.0));
        let none = Percentiles::from_samples(&[]);
        assert_eq!((none.p50, none.p99, none.p999), (0.0, 0.0, 0.0));
    }

    #[test]
    fn percentile_ignores_non_finite_samples() {
        // NaNs and infinities drop out; the finite samples summarize.
        let noisy = [f64::NAN, 3.0, f64::INFINITY, 1.0, f64::NEG_INFINITY, 2.0];
        assert_eq!(percentile(&noisy, 0.5), 2.0);
        assert_eq!(percentile(&noisy, 0.0), 1.0);
        assert_eq!(percentile(&noisy, 1.0), 3.0);
        // No finite samples at all degrades to zero, not a panic.
        assert_eq!(percentile(&[f64::NAN, f64::INFINITY], 0.5), 0.0);
        let p = Percentiles::from_samples(&[f64::NAN]);
        assert_eq!((p.p50, p.p99, p.p999), (0.0, 0.0, 0.0));
    }

    #[test]
    fn percentile_clamps_degenerate_quantiles() {
        let samples = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&samples, -0.5), 1.0);
        assert_eq!(percentile(&samples, 1.5), 4.0);
        assert_eq!(percentile(&samples, f64::INFINITY), 4.0);
        assert_eq!(percentile(&samples, f64::NEG_INFINITY), 1.0);
        assert_eq!(percentile(&samples, f64::NAN), 1.0);
    }

    #[test]
    fn print_table_accepts_consistent_rows() {
        print_table(
            "test",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn print_table_rejects_ragged_rows() {
        print_table("test", &["a", "b"], &[vec!["1".into()]]);
    }
}
