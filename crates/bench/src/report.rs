//! Plain-text table output for experiment results.

/// Prints an aligned table to stdout: a header row followed by data rows.
///
/// # Panics
///
/// Panics if any row's arity differs from the header's — a harness bug.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row arity mismatch in table");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    println!("\n== {title} ==");
    let header_line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:<w$}"))
        .collect();
    println!("{}", header_line.join("  "));
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Formats an accuracy/fraction with three decimals.
pub fn fmt3(v: f32) -> String {
    format!("{v:.3}")
}

/// Formats a duration in milliseconds with two decimals.
pub fn fmt_ms(seconds: f64) -> String {
    format!("{:.2}", seconds * 1000.0)
}

/// Formats a byte count in MB with two decimals.
pub fn fmt_mb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Mean of a non-empty f32 slice (0.0 for empty).
pub fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f32>() / values.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt3(0.12345), "0.123");
        assert_eq!(fmt_ms(0.19), "190.00");
        assert_eq!(fmt_mb(26_900_000), "25.65");
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn print_table_accepts_consistent_rows() {
        print_table(
            "test",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn print_table_rejects_ragged_rows() {
        print_table("test", &["a", "b"], &[vec!["1".into()]]);
    }
}
