//! Per-dataset experiment configurations from §6.1.4 of the paper.

use mixnn_attacks::GradSimConfig;
use mixnn_data::SyntheticSpec;
use mixnn_fl::{FlConfig, OptimizerKind, Parallelism};
use mixnn_nn::{zoo, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The four evaluation datasets of §6.1.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// CIFAR10-like image classification; sensitive attribute = preference
    /// group (3 classes).
    Cifar10,
    /// MotionSense-like activity recognition; sensitive attribute = gender.
    MotionSense,
    /// MobiAct-like activity recognition; sensitive attribute = gender.
    MobiAct,
    /// LFW-like smile detection with the DeepFace-style model; sensitive
    /// attribute = gender.
    Lfw,
}

impl DatasetKind {
    /// All four datasets, in the paper's presentation order.
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::Cifar10,
        DatasetKind::MotionSense,
        DatasetKind::MobiAct,
        DatasetKind::Lfw,
    ];

    /// Parses a dataset name (as accepted by the `eval` binary).
    pub fn parse(s: &str) -> Option<DatasetKind> {
        match s.to_ascii_lowercase().as_str() {
            "cifar10" | "cifar" => Some(DatasetKind::Cifar10),
            "motionsense" | "motion" => Some(DatasetKind::MotionSense),
            "mobiact" => Some(DatasetKind::MobiAct),
            "lfw" => Some(DatasetKind::Lfw),
            _ => None,
        }
    }

    /// Canonical lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Cifar10 => "cifar10",
            DatasetKind::MotionSense => "motionsense",
            DatasetKind::MobiAct => "mobiact",
            DatasetKind::Lfw => "lfw",
        }
    }
}

/// Paper-parameter or shrunk-for-smoke-tests scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// §6.1.4 rounds/epochs/batches/users.
    Paper,
    /// Reduced rounds and population for fast runs (CI, unit tests).
    Quick,
}

/// Everything needed to run one dataset's experiments: the synthetic data
/// spec, FL hyper-parameters, attack settings and model widths.
#[derive(Debug, Clone)]
pub struct ExperimentSetup {
    /// Which dataset this models.
    pub kind: DatasetKind,
    /// Synthetic population specification.
    pub spec: SyntheticSpec,
    /// Federated hyper-parameters (§6.1.4 row for this dataset).
    pub fl: FlConfig,
    /// ∇Sim settings (attack models trained 5 epochs, cosine metric).
    pub attack: GradSimConfig,
    /// Noise scale of the noisy-gradient baseline, calibrated to land the
    /// paper's shape (~10 pt accuracy drop; see DESIGN.md).
    pub noise_sigma: f32,
    /// Convolution width of the model zoo template.
    pub conv_width: usize,
    /// Dense width of the model zoo template.
    pub fc_width: usize,
}

impl ExperimentSetup {
    /// The §6.1.4 configuration for a dataset.
    ///
    /// Paper rows: CIFAR10 — 3 local epochs, batch 32, 16 users/round, 10
    /// rounds; MotionSense — 2 epochs, batch 256, 20 users, 20 rounds;
    /// MobiAct — 3 epochs, batch 64, 40 users, 20 rounds; LFW — 2 epochs,
    /// batch 16, 20 users, 30 rounds; Adam everywhere.
    pub fn paper(kind: DatasetKind, seed: u64) -> Self {
        let (spec, fl, conv_width, fc_width) = match kind {
            DatasetKind::Cifar10 => (
                mixnn_data::cifar10_like(seed),
                FlConfig {
                    rounds: 10,
                    local_epochs: 3,
                    batch_size: 32,
                    clients_per_round: 16,
                    learning_rate: 0.005,
                    optimizer: OptimizerKind::Adam,
                    seed,
                    parallelism: Parallelism::available(),
                    compression: mixnn_core::codec::CompressionConfig::F32,
                },
                4,
                32,
            ),
            DatasetKind::MotionSense => (
                mixnn_data::motionsense_like(seed),
                FlConfig {
                    rounds: 20,
                    local_epochs: 2,
                    batch_size: 256,
                    clients_per_round: 20,
                    learning_rate: 0.005,
                    optimizer: OptimizerKind::Adam,
                    seed,
                    parallelism: Parallelism::available(),
                    compression: mixnn_core::codec::CompressionConfig::F32,
                },
                4,
                32,
            ),
            DatasetKind::MobiAct => (
                mixnn_data::mobiact_like(seed),
                FlConfig {
                    rounds: 20,
                    local_epochs: 3,
                    batch_size: 64,
                    clients_per_round: 40,
                    learning_rate: 0.005,
                    optimizer: OptimizerKind::Adam,
                    seed,
                    parallelism: Parallelism::available(),
                    compression: mixnn_core::codec::CompressionConfig::F32,
                },
                4,
                32,
            ),
            DatasetKind::Lfw => (
                mixnn_data::lfw_like(seed),
                FlConfig {
                    rounds: 30,
                    local_epochs: 2,
                    batch_size: 16,
                    clients_per_round: 20,
                    learning_rate: 0.005,
                    optimizer: OptimizerKind::Adam,
                    seed,
                    parallelism: Parallelism::available(),
                    compression: mixnn_core::codec::CompressionConfig::F32,
                },
                4,
                32,
            ),
        };
        ExperimentSetup {
            kind,
            spec,
            fl,
            attack: GradSimConfig {
                attack_epochs: 5,
                seed,
                ..GradSimConfig::default()
            },
            noise_sigma: 0.10,
            conv_width,
            fc_width,
        }
    }

    /// A shrunk configuration for smoke tests: fewer rounds, smaller
    /// population and batches, narrower models.
    pub fn quick(kind: DatasetKind, seed: u64) -> Self {
        let mut setup = Self::paper(kind, seed);
        setup.fl.rounds = setup.fl.rounds.min(4);
        setup.fl.local_epochs = 1;
        setup.fl.batch_size = setup.fl.batch_size.min(32);
        setup.fl.clients_per_round = setup.fl.clients_per_round.min(8);
        setup.attack.attack_epochs = 2;
        setup.conv_width = 2;
        setup.fc_width = 16;
        setup.spec.train_per_participant = setup.spec.train_per_participant.min(32);
        setup.spec.test_per_participant = setup.spec.test_per_participant.min(12);
        setup.spec.global_test_examples = setup.spec.global_test_examples.min(120);
        // Shrink the population but keep the attribute balance shape.
        let shrink = |c: usize| (c / 2).max(2);
        setup.spec.attribute_counts = setup
            .spec
            .attribute_counts
            .iter()
            .map(|&c| shrink(c))
            .collect();
        setup.fl.clients_per_round = setup
            .fl
            .clients_per_round
            .min(setup.spec.attribute_counts.iter().sum());
        setup
    }

    /// Builds one setup at the given scale.
    pub fn at_scale(kind: DatasetKind, scale: ExperimentScale, seed: u64) -> Self {
        match scale {
            ExperimentScale::Paper => Self::paper(kind, seed),
            ExperimentScale::Quick => Self::quick(kind, seed),
        }
    }

    /// Builds the model template for this dataset: 2-conv + 3-dense for
    /// CIFAR10/MotionSense/MobiAct, DeepFace-like for LFW (§6.1.1).
    pub fn build_template(&self, rng: &mut StdRng) -> Sequential {
        let input = zoo::InputSpec::new(
            self.spec.dims.channels,
            self.spec.dims.height,
            self.spec.dims.width,
        );
        match self.kind {
            DatasetKind::Lfw => {
                zoo::deepface_like(input, self.spec.num_classes, self.conv_width, rng)
            }
            _ => zoo::conv2_fc3(
                input,
                self.spec.num_classes,
                self.conv_width,
                self.fc_width,
                rng,
            ),
        }
    }

    /// Deterministic template for this setup (seeded from the FL seed).
    pub fn template(&self) -> Sequential {
        let mut rng = StdRng::seed_from_u64(self.fl.seed ^ 0x7e3);
        self.build_template(&mut rng)
    }

    /// The chance level of the sensitive-attribute inference for this
    /// dataset (1/3 for CIFAR10's preference groups, 1/2 elsewhere).
    pub fn chance_level(&self) -> f32 {
        1.0 / self.spec.num_attributes as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_match_section_614() {
        let c = ExperimentSetup::paper(DatasetKind::Cifar10, 0);
        assert_eq!(
            (
                c.fl.rounds,
                c.fl.local_epochs,
                c.fl.batch_size,
                c.fl.clients_per_round
            ),
            (10, 3, 32, 16)
        );
        let m = ExperimentSetup::paper(DatasetKind::MotionSense, 0);
        assert_eq!(
            (
                m.fl.rounds,
                m.fl.local_epochs,
                m.fl.batch_size,
                m.fl.clients_per_round
            ),
            (20, 2, 256, 20)
        );
        let a = ExperimentSetup::paper(DatasetKind::MobiAct, 0);
        assert_eq!(
            (
                a.fl.rounds,
                a.fl.local_epochs,
                a.fl.batch_size,
                a.fl.clients_per_round
            ),
            (20, 3, 64, 40)
        );
        let l = ExperimentSetup::paper(DatasetKind::Lfw, 0);
        assert_eq!(
            (
                l.fl.rounds,
                l.fl.local_epochs,
                l.fl.batch_size,
                l.fl.clients_per_round
            ),
            (30, 2, 16, 20)
        );
        for k in DatasetKind::ALL {
            assert_eq!(
                ExperimentSetup::paper(k, 0).fl.optimizer,
                OptimizerKind::Adam
            );
        }
    }

    #[test]
    fn quick_is_smaller_than_paper() {
        for k in DatasetKind::ALL {
            let p = ExperimentSetup::paper(k, 0);
            let q = ExperimentSetup::quick(k, 0);
            assert!(q.fl.rounds <= p.fl.rounds);
            assert!(q.spec.num_participants() <= p.spec.num_participants());
            assert!(q.fl.clients_per_round <= q.spec.num_participants());
            q.spec.validate().unwrap();
        }
    }

    #[test]
    fn templates_build_and_match_dataset_geometry() {
        for k in DatasetKind::ALL {
            let setup = ExperimentSetup::quick(k, 1);
            let mut template = setup.template();
            let (x, _) = setup
                .spec
                .generate()
                .unwrap()
                .global_test()
                .batch(&[0])
                .unwrap();
            let out = template.forward(&x).unwrap();
            assert_eq!(out.dims(), &[1, setup.spec.num_classes], "{k:?}");
        }
    }

    #[test]
    fn lfw_uses_deepface_architecture() {
        let setup = ExperimentSetup::quick(DatasetKind::Lfw, 0);
        let t = setup.template();
        assert!(t.layer_names().contains(&"locally_connected2d"));
        let other = ExperimentSetup::quick(DatasetKind::Cifar10, 0);
        assert!(!other
            .template()
            .layer_names()
            .contains(&"locally_connected2d"));
    }

    #[test]
    fn dataset_kind_parsing() {
        assert_eq!(DatasetKind::parse("CIFAR10"), Some(DatasetKind::Cifar10));
        assert_eq!(DatasetKind::parse("motion"), Some(DatasetKind::MotionSense));
        assert_eq!(DatasetKind::parse("mobiact"), Some(DatasetKind::MobiAct));
        assert_eq!(DatasetKind::parse("lfw"), Some(DatasetKind::Lfw));
        assert_eq!(DatasetKind::parse("imagenet"), None);
    }

    #[test]
    fn chance_levels() {
        assert!(
            (ExperimentSetup::paper(DatasetKind::Cifar10, 0).chance_level() - 1.0 / 3.0).abs()
                < 1e-6
        );
        assert_eq!(
            ExperimentSetup::paper(DatasetKind::Lfw, 0).chance_level(),
            0.5
        );
    }

    #[test]
    fn template_is_deterministic() {
        let setup = ExperimentSetup::quick(DatasetKind::MotionSense, 3);
        assert_eq!(setup.template().params(), setup.template().params());
    }
}
