//! `eval` — regenerates every evaluation artifact of the MixNN paper.
//!
//! ```text
//! eval <experiment|all> [options]        run `eval --list` for the registry
//!
//! Options:
//!   --list                                         enumerate registered experiments
//!   --dataset <cifar10|motionsense|mobiact|lfw>   one dataset (default: all four)
//!   --quick                                        shrunk configuration (fast smoke run)
//!   --seed <u64>                                   base seed (default 42)
//!   --repeats <n>                                  repetitions to average (default 1; paper uses 5)
//!   --sigma <f32>                                  noisy-gradient noise scale override
//!   --passive                                      run ∇Sim passively (fig7/fig8; default active)
//!   --round <n>                                    evaluation round for fig6 (default 6)
//!   --radius <f32>                                 neighbour radius for fig9, on unit-normalized
//!                                                  gradients (default 1.25; see EXPERIMENTS.md)
//!   --clients <n>                                  clients for sysperf/cascade/topology (default 16)
//!   --parallel                                     extended worker/pipeline sweep for cascade
//!   --load-clients <n>                             simulated clients for load (default 100000,
//!                                                  quick 2000)
//!   --out <path>                                   JSON artifact path override
//!                                                  (throughput: BENCH_throughput.json,
//!                                                   cascade: BENCH_cascade.json,
//!                                                   topology: BENCH_topology.json,
//!                                                   load: BENCH_load.json,
//!                                                   pooled: BENCH_pooled.json,
//!                                                   compress: BENCH_compress.json)
//!   --metrics-out <path>                           write the run's Prometheus metrics
//!                                                  snapshot (throughput/cascade/load)
//! ```
//!
//! `throughput` sweeps the parallel ingest pipeline over worker counts
//! {1,2,4,8} and round sizes {32,128,512} (quick: {8,32}), verifying that
//! every configuration mixes bit-identically, and writes the measured
//! speedups to the JSON artifact. `cascade` sweeps the multi-hop mix
//! cascade over hop counts 1..4 × every colluding subset of hops,
//! asserting bit-identical aggregates against the single-proxy baseline,
//! and sweeps the parallel cascade engine (ingest workers × route-group
//! workers × pipeline depth; `--parallel` extends the worker set) with
//! every configuration verified bit-identical to the sequential drive.
//! `topology` compares the three cascade layouts (linear, stratified,
//! free-route) over hop counts 2..4 × every colluding subset, asserting
//! the same bit-identical aggregate and recording per-client
//! anonymity-set distributions. `load` drives 10^5 (default) simulated
//! clients through the cascade wire under batched and per-envelope
//! flushing, reporting sustained updates/s, p50/p99/p99.9 round latency,
//! peak queue depths and wire bytes per client — all virtual-time
//! derived, so the artifact is deterministic per seed and config.
//! `pooled` trickles clients into a continuous mix pool and sweeps the
//! pool threshold k × the firing deadline, asserting the k-floor (every
//! fired pool and route group padded to ≥ k with hop-generated cover)
//! and bit-identical dummy-stripped aggregates, and recording pools by
//! trigger, cover overhead, p50/p99 added latency and residual
//! anonymity-set sizes. `compress` sweeps the MIXN v2 wire codec (f32 /
//! int8 / int8+topk) over wire bytes per client, sustained updates/s and
//! stripped-aggregate error against the lossless baseline across all
//! three layouts, asserting route-group size uniformity (cover updates
//! included) and the ≥4x compressed-byte budget.

use mixnn_attacks::AttackMode;
use mixnn_bench::experiments::{
    background, cascade, compress, inference, load, pooled, robustness, sysperf, throughput,
    topology, utility, utility_cdf,
};
use mixnn_bench::{report, DatasetKind, Defense, ExperimentScale, ExperimentSetup};
use mixnn_telemetry::{
    check_counter_monotonicity, validate_prometheus, Registry, Telemetry, VirtualClock,
};
use std::process::ExitCode;

/// The experiment registry: every runnable command with its one-line
/// description and handler. `eval --list`, the usage line and command
/// dispatch all derive from this single table, so a new experiment is
/// added in exactly one place (`all` is the only special case).
/// One registry row: command name, one-line description, handler.
type Experiment = (
    &'static str,
    &'static str,
    fn(&Options) -> Result<(), String>,
);

const EXPERIMENTS: &[Experiment] = &[
    (
        "fig5",
        "Model accuracy per learning round (utility, Fig. 5)",
        run_fig5,
    ),
    ("fig6", "CDF of per-participant accuracy (Fig. 6)", run_fig6),
    (
        "fig7",
        "∇Sim attribute-inference accuracy per round (Fig. 7)",
        run_fig7,
    ),
    (
        "fig8",
        "Inference accuracy vs adversary background knowledge (Fig. 8)",
        run_fig8,
    ),
    (
        "fig9",
        "CDF of close-gradient neighbours (robustness, Fig. 9)",
        run_fig9,
    ),
    (
        "sysperf",
        "§6.5 proxy pipeline cost and memory breakdown",
        run_sysperf,
    ),
    (
        "throughput",
        "Parallel-ingest scaling sweep -> BENCH_throughput.json",
        run_throughput,
    ),
    (
        "cascade",
        "Mix cascade: hop count x colluding subsets -> BENCH_cascade.json",
        run_cascade,
    ),
    (
        "topology",
        "Cascade layouts: linear vs stratified vs free-route -> BENCH_topology.json",
        run_topology,
    ),
    (
        "load",
        "Simulated-network load generation: batched vs per-envelope flush -> BENCH_load.json",
        run_load,
    ),
    (
        "pooled",
        "Continuous pooled mixing: k x deadline sweep with cover traffic -> BENCH_pooled.json",
        run_pooled,
    ),
    (
        "compress",
        "MIXN v2 codec: f32 vs int8 vs int8+topk wire cost and accuracy -> BENCH_compress.json",
        run_compress,
    ),
];

/// The one command that is not a row of [`EXPERIMENTS`]: it iterates them.
const ALL_COMMAND: (&str, &str) = ("all", "Every experiment above, in sequence");

#[derive(Debug)]
struct Options {
    datasets: Vec<DatasetKind>,
    scale: ExperimentScale,
    seed: u64,
    repeats: usize,
    sigma: Option<f32>,
    mode: AttackMode,
    round: usize,
    radius: f32,
    clients: usize,
    parallel: bool,
    out: Option<String>,
    load_clients: Option<usize>,
    metrics_out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            datasets: DatasetKind::ALL.to_vec(),
            scale: ExperimentScale::Paper,
            seed: 42,
            repeats: 1,
            sigma: None,
            mode: AttackMode::Active,
            round: 6,
            radius: 1.25,
            clients: 16,
            parallel: false,
            out: None,
            load_clients: None,
            metrics_out: None,
        }
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut i = 0;
    while i < args.len() {
        let take_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {}", args[*i - 1]))
        };
        match args[i].as_str() {
            "--dataset" => {
                let v = take_value(&mut i)?;
                let kind =
                    DatasetKind::parse(&v).ok_or_else(|| format!("unknown dataset '{v}'"))?;
                opts.datasets = vec![kind];
            }
            "--quick" => opts.scale = ExperimentScale::Quick,
            "--seed" => opts.seed = take_value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--repeats" => {
                opts.repeats = take_value(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--sigma" => {
                opts.sigma = Some(take_value(&mut i)?.parse().map_err(|e| format!("{e}"))?)
            }
            "--passive" => opts.mode = AttackMode::Passive,
            "--round" => opts.round = take_value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--radius" => opts.radius = take_value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--clients" => {
                opts.clients = take_value(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--parallel" => opts.parallel = true,
            "--load-clients" => {
                opts.load_clients = Some(take_value(&mut i)?.parse().map_err(|e| format!("{e}"))?)
            }
            "--out" => opts.out = Some(take_value(&mut i)?),
            "--metrics-out" => opts.metrics_out = Some(take_value(&mut i)?),
            other => return Err(format!("unknown option '{other}'")),
        }
        i += 1;
    }
    Ok(opts)
}

fn setups(opts: &Options) -> Vec<ExperimentSetup> {
    opts.datasets
        .iter()
        .map(|&kind| {
            let mut setup = ExperimentSetup::at_scale(kind, opts.scale, opts.seed);
            if let Some(sigma) = opts.sigma {
                setup.noise_sigma = sigma;
            }
            setup
        })
        .collect()
}

fn run_fig5(opts: &Options) -> Result<(), String> {
    for setup in setups(opts) {
        let points = utility::run(&setup, opts.repeats).map_err(|e| e.to_string())?;
        report::print_table(
            &format!(
                "Figure 5 ({}): model accuracy per learning round",
                setup.kind.name()
            ),
            &["dataset", "defense", "round", "accuracy", "loss"],
            &utility::rows(&points),
        );
    }
    Ok(())
}

fn run_fig6(opts: &Options) -> Result<(), String> {
    for setup in setups(opts) {
        let (points, means) = utility_cdf::run(&setup, opts.round).map_err(|e| e.to_string())?;
        report::print_table(
            &format!(
                "Figure 6 ({}): CDF of per-participant accuracy at round {}",
                setup.kind.name(),
                opts.round
            ),
            &["dataset", "defense", "accuracy", "cdf"],
            &utility_cdf::rows(&points),
        );
        let mean_rows: Vec<Vec<String>> = means
            .iter()
            .map(|m| vec![m.defense.clone(), report::fmt3(m.mean_accuracy)])
            .collect();
        report::print_table(
            &format!("Figure 6 ({}): population means", setup.kind.name()),
            &["defense", "mean accuracy"],
            &mean_rows,
        );
    }
    Ok(())
}

fn run_fig7(opts: &Options) -> Result<(), String> {
    for setup in setups(opts) {
        let points =
            inference::run(&setup, opts.mode, 0.8, opts.repeats).map_err(|e| e.to_string())?;
        report::print_table(
            &format!(
                "Figure 7 ({}): ∇Sim {} inference accuracy per round",
                setup.kind.name(),
                match opts.mode {
                    AttackMode::Active => "active",
                    AttackMode::Passive => "passive",
                }
            ),
            &[
                "dataset",
                "defense",
                "round",
                "inference accuracy",
                "chance",
            ],
            &inference::rows(&points),
        );
    }
    Ok(())
}

fn run_fig8(opts: &Options) -> Result<(), String> {
    for setup in setups(opts) {
        let points = background::run(&setup, &background::DEFAULT_FRACTIONS, opts.mode)
            .map_err(|e| e.to_string())?;
        report::print_table(
            &format!(
                "Figure 8 ({}): inference accuracy vs background knowledge",
                setup.kind.name()
            ),
            &[
                "dataset",
                "defense",
                "background",
                "inference accuracy",
                "chance",
            ],
            &background::rows(&points),
        );
    }
    Ok(())
}

fn run_fig9(opts: &Options) -> Result<(), String> {
    for setup in setups(opts) {
        let (points, counts) =
            robustness::run(&setup, 2, opts.radius).map_err(|e| e.to_string())?;
        report::print_table(
            &format!(
                "Figure 9 ({}): CDF of close-gradient neighbours (radius {})",
                setup.kind.name(),
                opts.radius
            ),
            &["dataset", "neighbors", "cdf"],
            &robustness::rows(&points),
        );
        let with_neighbors = counts.iter().filter(|&&c| c > 0).count();
        println!(
            "{} / {} participants have at least one alter ego within the radius",
            with_neighbors,
            counts.len()
        );
    }
    Ok(())
}

fn run_sysperf(opts: &Options) -> Result<(), String> {
    // Sysperf uses a single dataset's geometry (CIFAR10 in the paper).
    let setup = ExperimentSetup::at_scale(DatasetKind::Cifar10, opts.scale, opts.seed);
    let results = sysperf::run(&setup, opts.clients).map_err(|e| e.to_string())?;
    report::print_table(
        &format!(
            "Section 6.5: proxy pipeline cost ({} clients, encrypted path)",
            opts.clients
        ),
        &[
            "model",
            "params",
            "update MB",
            "decrypt ms",
            "store ms",
            "process ms",
            "mix ms",
            "EPC high-water MB",
        ],
        &sysperf::rows(&results),
    );
    println!(
        "\nNote: the paper reports 0.19 s / 26.9 MB (2conv+3fc) and 0.22 s / 51.3 MB\n\
         (3conv+3fc) for TensorFlow-scale models on a 2016 laptop; the reproduction\n\
         targets the *shape* (decrypt-dominated, scaling with model size).",
    );
    let _ = Defense::lineup(0.0);
    Ok(())
}

/// Splices the registry's JSON snapshot into a hand-rolled `{...}` BENCH
/// artifact as a top-level `"telemetry"` key, so the shared registry's
/// counters ship alongside the experiment rows they describe.
fn embed_telemetry(artifact: String, telemetry: &Telemetry) -> String {
    let trimmed = artifact.trim_end();
    let body = trimmed
        .strip_suffix('}')
        .expect("BENCH artifacts are JSON objects");
    format!(
        "{},\n  \"telemetry\": {}\n}}\n",
        body.trim_end(),
        telemetry.snapshot().to_json("  ")
    )
}

/// Renders the registry's final Prometheus snapshot, enforces the export
/// gates (well-formed exposition text, bounded cardinality, no forbidden
/// label axes, counters monotone since `mid_prom`), and writes it to
/// `--metrics-out` when requested.
fn export_metrics(
    telemetry: &Telemetry,
    mid_prom: &str,
    metrics_out: Option<&str>,
) -> Result<(), String> {
    let text = telemetry.snapshot().to_prometheus();
    let summary = validate_prometheus(&text).map_err(|e| format!("metrics export invalid: {e}"))?;
    check_counter_monotonicity(mid_prom, &text)
        .map_err(|e| format!("counter regressed during the run: {e}"))?;
    println!(
        "Telemetry export validated: {} families, {} series, max {} label set(s) per family.",
        summary.families, summary.series, summary.max_label_sets
    );
    if let Some(path) = metrics_out {
        std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
        println!("Metrics written to {path}.");
    }
    Ok(())
}

fn run_throughput(opts: &Options) -> Result<(), String> {
    let out = opts.out.as_deref().unwrap_or("BENCH_throughput.json");
    let setup = ExperimentSetup::at_scale(DatasetKind::Cifar10, opts.scale, opts.seed);
    let telemetry = Registry::new().shared();
    let clients: &[usize] = match opts.scale {
        ExperimentScale::Paper => &throughput::DEFAULT_CLIENTS,
        ExperimentScale::Quick => &[8, 32],
    };
    let results = throughput::run_with(
        &setup,
        clients,
        &throughput::DEFAULT_WORKERS,
        opts.repeats,
        &telemetry,
    )
    .map_err(|e| e.to_string())?;
    let mid_prom = telemetry.snapshot().to_prometheus();
    report::print_table(
        "Ingest throughput: parallel pipeline vs sequential (encrypted path)",
        &[
            "clients",
            "workers",
            "ingest ms",
            "mix ms",
            "updates/s",
            "speedup",
        ],
        &throughput::rows(&results),
    );
    std::fs::write(
        out,
        embed_telemetry(throughput::to_json(&results), &telemetry),
    )
    .map_err(|e| format!("writing {out}: {e}"))?;
    let threads = throughput::hardware_threads();
    println!(
        "\nAll worker counts produced bit-identical mixed outputs (verified).\n\
         Results written to {out}."
    );
    println!("Hardware threads available: {threads}.");
    if threads < 4 {
        println!(
            "NOTE: fewer than 4 hardware threads — worker counts beyond {threads} cannot\n\
             speed up the wall-clock on this host; expect speedup ~1.0x here and\n\
             ~min(workers, cores)x on the decrypt share of the budget elsewhere."
        );
    }

    // The hooks stay enabled in production paths, so their cost is
    // measured (enabled registry vs the no-op one) and gated every run.
    // The pass must be long enough that scheduler jitter cannot fake a
    // 2% delta — 64 updates is ~10 ms of decrypt even on one core.
    let overhead_clients = match opts.scale {
        ExperimentScale::Paper => 256,
        ExperimentScale::Quick => 64,
    };
    let overhead = throughput::measure_overhead(opts.seed, overhead_clients, opts.repeats.max(15))
        .map_err(|e| e.to_string())?;
    println!(
        "Telemetry hook overhead (sequential ingest+mix, {} updates, min of {} repeats):\n\
         enabled {:.4} s vs no-op {:.4} s -> {:+.2}% (gate: {:.0}%).",
        overhead.clients,
        overhead.repeats,
        overhead.enabled_seconds,
        overhead.noop_seconds,
        overhead.overhead_fraction * 100.0,
        throughput::MAX_TELEMETRY_OVERHEAD * 100.0,
    );
    if overhead.overhead_fraction > throughput::MAX_TELEMETRY_OVERHEAD {
        return Err(format!(
            "telemetry hook overhead {:.2}% exceeds the {:.0}% ceiling",
            overhead.overhead_fraction * 100.0,
            throughput::MAX_TELEMETRY_OVERHEAD * 100.0
        ));
    }
    export_metrics(&telemetry, &mid_prom, opts.metrics_out.as_deref())
}

fn run_cascade(opts: &Options) -> Result<(), String> {
    let out = opts.out.as_deref().unwrap_or("BENCH_cascade.json");
    let setup = ExperimentSetup::at_scale(DatasetKind::Cifar10, opts.scale, opts.seed);
    let telemetry = Registry::new().shared();
    let parallel_configs: &[(usize, usize)] = if opts.parallel {
        &cascade::EXTENDED_PARALLEL
    } else {
        &cascade::DEFAULT_PARALLEL
    };
    let sweep = cascade::run_with(
        &setup,
        opts.scale,
        opts.clients,
        &cascade::DEFAULT_HOPS,
        parallel_configs,
        opts.repeats,
        &telemetry,
    )
    .map_err(|e| e.to_string())?;
    let mid_prom = telemetry.snapshot().to_prometheus();
    report::print_table(
        &format!(
            "Mix cascade: per-hop cost over hop counts {:?} ({} clients, onion path)",
            cascade::DEFAULT_HOPS,
            opts.clients
        ),
        &[
            "hops",
            "hop",
            "decrypt ms",
            "store ms",
            "mix ms",
            "recv MB",
            "round ms",
            "updates/s",
        ],
        &cascade::perf_rows(&sweep),
    );
    report::print_table(
        "Colluding-subset adversary: residual linkability per subset of hops",
        &["hops", "colluding", "linkable", "anonymity set"],
        &cascade::collusion_rows(&sweep),
    );
    report::print_table(
        "Parallel cascade engine: worker/pipeline sweep (free-route, grouped)",
        &[
            "workers",
            "depth",
            "hops",
            "rounds x clients",
            "batch ms",
            "updates/s",
            "speedup",
        ],
        &cascade::parallel_rows(&sweep),
    );
    std::fs::write(
        out,
        embed_telemetry(cascade::to_json(&sweep, opts.clients), &telemetry),
    )
    .map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "\nAsserted at every hop count: the unmixed server aggregate is bit-identical\n\
         to the single-proxy baseline, and the audit restores the original updates\n\
         bit-exactly. Only the all-hops-colluding subsets report linkability 1.00.\n\
         Every parallel configuration reproduced the sequential outputs bit-for-bit.\n\
         Results written to {out}."
    );
    let threads = throughput::hardware_threads();
    if threads < 4 {
        println!(
            "NOTE: {threads} hardware thread(s) — expect parallel speedup ~1.0x here and\n\
             ~min(workers, cores)x on the decrypt share of the budget elsewhere."
        );
    }
    export_metrics(&telemetry, &mid_prom, opts.metrics_out.as_deref())
}

fn run_topology(opts: &Options) -> Result<(), String> {
    let out = opts.out.as_deref().unwrap_or("BENCH_topology.json");
    let setup = ExperimentSetup::at_scale(DatasetKind::Cifar10, opts.scale, opts.seed);
    let sweep = topology::run(&setup, opts.scale, opts.clients, &topology::DEFAULT_HOPS)
        .map_err(|e| e.to_string())?;
    report::print_table(
        &format!(
            "Cascade layouts over hop counts {:?} ({} clients, onion path)",
            topology::DEFAULT_HOPS,
            opts.clients
        ),
        &[
            "layout",
            "hops",
            "groups",
            "group sizes",
            "mean route",
            "round ms",
        ],
        &topology::structure_rows(&sweep),
    );
    report::print_table(
        "Routed colluding-subset adversary: per-client anonymity per layout",
        &[
            "layout",
            "hops",
            "colluding",
            "linkable",
            "linked",
            "mean set",
            "distribution",
        ],
        &topology::collusion_rows(&sweep),
    );
    std::fs::write(out, topology::to_json(&sweep, opts.clients))
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "\nAsserted for every layout and hop count: the server aggregate is bit-identical\n\
         to the single-proxy baseline and the audit inverts every route group exactly.\n\
         A client is linked iff the colluding subset covers its whole route (or its\n\
         route is unique); otherwise its anonymity set is its full route group.\n\
         Results written to {out}."
    );
    Ok(())
}

fn run_load(opts: &Options) -> Result<(), String> {
    let out = opts.out.as_deref().unwrap_or("BENCH_load.json");
    // The load generator runs entirely in virtual time, so its registry
    // gets a virtual clock: the simulator drives it and every recorded
    // timestamp reproduces byte for byte.
    let telemetry = Registry::with_virtual_clock(VirtualClock::default()).shared();
    let rows = load::run_with(opts.scale, opts.load_clients, opts.seed, &telemetry)?;
    let mid_prom = telemetry.snapshot().to_prometheus();
    report::print_table(
        &format!(
            "Simulated-network load: batched vs per-envelope flush ({} clients x {} rounds)",
            rows[0].clients, rows[0].rounds
        ),
        &[
            "flush",
            "codec",
            "clients",
            "rounds",
            "updates/s",
            "p50 s",
            "p99 s",
            "p99.9 s",
            "peak sendq",
            "peak recvq",
            "B/client",
            "framing",
            "packets",
        ],
        &load::rows(&rows),
    );
    std::fs::write(out, embed_telemetry(load::to_json(&rows), &telemetry))
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "\nAll figures are virtual-time derived (deterministic per seed and config).\n\
         Verified before measuring: a real crypto-carrying cascade round delivered\n\
         over the simulated wire is bit-identical to the in-process drive; batched\n\
         flushing beat the per-envelope baseline; batched framing overhead stayed\n\
         under {:.0}% of payload (cross-checked against the ~23 KB/client/round\n\
         figure in ROADMAP.md, ratio {:.2}).\n\
         Results written to {out}.",
        load::MAX_FRAMING_OVERHEAD * 100.0,
        rows[0].roadmap_bytes_ratio,
    );
    println!(
        "Round trace: {} event(s) on the virtual clock (byte-identical across reruns).",
        telemetry.trace_events().len()
    );
    export_metrics(&telemetry, &mid_prom, opts.metrics_out.as_deref())
}

fn run_pooled(opts: &Options) -> Result<(), String> {
    let out = opts.out.as_deref().unwrap_or("BENCH_pooled.json");
    // Pool deadlines are measured on the registry clock, so the registry
    // gets a virtual clock: the arrival schedule drives it and every
    // firing decision reproduces byte for byte.
    let telemetry = Registry::with_virtual_clock(VirtualClock::default()).shared();
    let rows = pooled::run_with(opts.scale, opts.seed, &telemetry)?;
    let mid_prom = telemetry.snapshot().to_prometheus();
    report::print_table(
        &format!(
            "Continuous pooled mixing: k x deadline sweep ({} clients trickled, {} hops)",
            rows[0].clients,
            pooled::HOPS
        ),
        &[
            "k",
            "deadline ms",
            "pools",
            "thr/ddl/flush",
            "mean depth",
            "dummies",
            "wait p50 ms",
            "wait p99 ms",
            "mean anon",
            "min anon",
        ],
        &pooled::rows(&rows),
    );
    std::fs::write(out, embed_telemetry(pooled::to_json(&rows), &telemetry))
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "\nAsserted at every (k, deadline) point: each fired pool and each of its route\n\
         groups meets the k-floor (real + cover >= k); the dummy-stripped server\n\
         aggregate is bit-identical to a dummy-free reference round over the same\n\
         updates; and every client is committed by exactly one pool. All figures are\n\
         virtual-time derived (deterministic per seed and scale).\n\
         Results written to {out}."
    );
    export_metrics(&telemetry, &mid_prom, opts.metrics_out.as_deref())
}

fn run_compress(opts: &Options) -> Result<(), String> {
    let out = opts.out.as_deref().unwrap_or("BENCH_compress.json");
    let rows = compress::run(opts.scale, opts.seed)?;
    report::print_table(
        &format!(
            "MIXN v2 codec: wire cost and aggregate accuracy ({} simulated clients)",
            rows[0].clients
        ),
        &[
            "mode",
            "B/client",
            "reduction",
            "updates/s",
            "rmse",
            "max |err|",
            "tolerance",
            "onion B",
        ],
        &compress::rows(&rows),
    );
    std::fs::write(out, compress::to_json(&rows)).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "\nAsserted per mode and layout (linear, stratified, free-route): every sealed\n\
         onion of a route — real clients and hop-generated cover alike — encodes to\n\
         one length, so compression adds no linkability side channel; the stripped\n\
         aggregate stays within the stated RMSE tolerance of the lossless baseline;\n\
         and int8+topk cuts wire bytes ≥{:.0}x to ≤{:.0} B/client/round ({:.2}x, {:.0} B\n\
         measured). All figures are deterministic per seed and scale.\n\
         Results written to {out}.",
        compress::MIN_REDUCTION,
        compress::MAX_COMPRESSED_BYTES,
        rows[2].reduction_vs_f32,
        rows[2].bytes_on_wire_per_client,
    );
    Ok(())
}

fn print_experiment_list() {
    println!("registered experiments:");
    for (name, description, _) in EXPERIMENTS {
        println!("  {name:<12} {description}");
    }
    let (name, description) = ALL_COMMAND;
    println!("  {name:<12} {description}");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--list` is only a command substitute in command position; after an
    // explicit command it falls through to option parsing and is rejected
    // there, rather than silently discarding the requested experiment.
    if args.first().map(String::as_str) == Some("--list") {
        print_experiment_list();
        return ExitCode::SUCCESS;
    }
    let Some((command, rest)) = args.split_first() else {
        let mut names: Vec<&str> = EXPERIMENTS.iter().map(|(name, _, _)| *name).collect();
        names.push(ALL_COMMAND.0);
        eprintln!(
            "usage: eval <{}> [options]\nrun `eval --list` for one-line descriptions",
            names.join("|")
        );
        return ExitCode::FAILURE;
    };
    let opts = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = if command == ALL_COMMAND.0 {
        // `--out` names exactly one file, but `all` runs two JSON-writing
        // experiments (throughput and cascade); honoring the override would
        // clobber one artifact with the other, so reject the combination
        // rather than silently dropping the flag.
        if opts.out.is_some() {
            eprintln!(
                "error: --out names a single file but 'all' writes several artifacts;\n\
                 run the experiments individually to redirect their outputs"
            );
            return ExitCode::FAILURE;
        }
        // Same clobbering hazard for the Prometheus export: each handler
        // would overwrite the previous one's metrics file.
        if opts.metrics_out.is_some() {
            eprintln!(
                "error: --metrics-out names a single file but 'all' runs several experiments;\n\
                 run the experiments individually to export their metrics"
            );
            return ExitCode::FAILURE;
        }
        EXPERIMENTS
            .iter()
            .try_for_each(|(_, _, handler)| handler(&opts))
    } else if let Some((_, _, handler)) = EXPERIMENTS.iter().find(|(name, _, _)| name == command) {
        handler(&opts)
    } else {
        Err(format!(
            "unknown command '{command}' (run `eval --list` for the registry)"
        ))
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
