//! `eval` — regenerates every evaluation artifact of the MixNN paper.
//!
//! ```text
//! eval <fig5|fig6|fig7|fig8|fig9|sysperf|throughput|all> [options]
//!
//! Options:
//!   --dataset <cifar10|motionsense|mobiact|lfw>   one dataset (default: all four)
//!   --quick                                        shrunk configuration (fast smoke run)
//!   --seed <u64>                                   base seed (default 42)
//!   --repeats <n>                                  repetitions to average (default 1; paper uses 5)
//!   --sigma <f32>                                  noisy-gradient noise scale override
//!   --passive                                      run ∇Sim passively (fig7/fig8; default active)
//!   --round <n>                                    evaluation round for fig6 (default 6)
//!   --radius <f32>                                 neighbour radius for fig9, on unit-normalized
//!                                                  gradients (default 1.25; see EXPERIMENTS.md)
//!   --clients <n>                                  clients for sysperf (default 16)
//!   --out <path>                                   JSON artifact path for throughput
//!                                                  (default BENCH_throughput.json)
//! ```
//!
//! `throughput` sweeps the parallel ingest pipeline over worker counts
//! {1,2,4,8} and round sizes {32,128,512} (quick: {8,32}), verifying that
//! every configuration mixes bit-identically, and writes the measured
//! speedups to the JSON artifact.

use mixnn_attacks::AttackMode;
use mixnn_bench::experiments::{
    background, inference, robustness, sysperf, throughput, utility, utility_cdf,
};
use mixnn_bench::{report, DatasetKind, Defense, ExperimentScale, ExperimentSetup};
use std::process::ExitCode;

#[derive(Debug)]
struct Options {
    datasets: Vec<DatasetKind>,
    scale: ExperimentScale,
    seed: u64,
    repeats: usize,
    sigma: Option<f32>,
    mode: AttackMode,
    round: usize,
    radius: f32,
    clients: usize,
    out: String,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            datasets: DatasetKind::ALL.to_vec(),
            scale: ExperimentScale::Paper,
            seed: 42,
            repeats: 1,
            sigma: None,
            mode: AttackMode::Active,
            round: 6,
            radius: 1.25,
            clients: 16,
            out: "BENCH_throughput.json".to_string(),
        }
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut i = 0;
    while i < args.len() {
        let take_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {}", args[*i - 1]))
        };
        match args[i].as_str() {
            "--dataset" => {
                let v = take_value(&mut i)?;
                let kind =
                    DatasetKind::parse(&v).ok_or_else(|| format!("unknown dataset '{v}'"))?;
                opts.datasets = vec![kind];
            }
            "--quick" => opts.scale = ExperimentScale::Quick,
            "--seed" => opts.seed = take_value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--repeats" => {
                opts.repeats = take_value(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--sigma" => {
                opts.sigma = Some(take_value(&mut i)?.parse().map_err(|e| format!("{e}"))?)
            }
            "--passive" => opts.mode = AttackMode::Passive,
            "--round" => opts.round = take_value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--radius" => opts.radius = take_value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--clients" => {
                opts.clients = take_value(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--out" => opts.out = take_value(&mut i)?,
            other => return Err(format!("unknown option '{other}'")),
        }
        i += 1;
    }
    Ok(opts)
}

fn setups(opts: &Options) -> Vec<ExperimentSetup> {
    opts.datasets
        .iter()
        .map(|&kind| {
            let mut setup = ExperimentSetup::at_scale(kind, opts.scale, opts.seed);
            if let Some(sigma) = opts.sigma {
                setup.noise_sigma = sigma;
            }
            setup
        })
        .collect()
}

fn run_fig5(opts: &Options) -> Result<(), String> {
    for setup in setups(opts) {
        let points = utility::run(&setup, opts.repeats).map_err(|e| e.to_string())?;
        report::print_table(
            &format!(
                "Figure 5 ({}): model accuracy per learning round",
                setup.kind.name()
            ),
            &["dataset", "defense", "round", "accuracy", "loss"],
            &utility::rows(&points),
        );
    }
    Ok(())
}

fn run_fig6(opts: &Options) -> Result<(), String> {
    for setup in setups(opts) {
        let (points, means) = utility_cdf::run(&setup, opts.round).map_err(|e| e.to_string())?;
        report::print_table(
            &format!(
                "Figure 6 ({}): CDF of per-participant accuracy at round {}",
                setup.kind.name(),
                opts.round
            ),
            &["dataset", "defense", "accuracy", "cdf"],
            &utility_cdf::rows(&points),
        );
        let mean_rows: Vec<Vec<String>> = means
            .iter()
            .map(|m| vec![m.defense.clone(), report::fmt3(m.mean_accuracy)])
            .collect();
        report::print_table(
            &format!("Figure 6 ({}): population means", setup.kind.name()),
            &["defense", "mean accuracy"],
            &mean_rows,
        );
    }
    Ok(())
}

fn run_fig7(opts: &Options) -> Result<(), String> {
    for setup in setups(opts) {
        let points =
            inference::run(&setup, opts.mode, 0.8, opts.repeats).map_err(|e| e.to_string())?;
        report::print_table(
            &format!(
                "Figure 7 ({}): ∇Sim {} inference accuracy per round",
                setup.kind.name(),
                match opts.mode {
                    AttackMode::Active => "active",
                    AttackMode::Passive => "passive",
                }
            ),
            &[
                "dataset",
                "defense",
                "round",
                "inference accuracy",
                "chance",
            ],
            &inference::rows(&points),
        );
    }
    Ok(())
}

fn run_fig8(opts: &Options) -> Result<(), String> {
    for setup in setups(opts) {
        let points = background::run(&setup, &background::DEFAULT_FRACTIONS, opts.mode)
            .map_err(|e| e.to_string())?;
        report::print_table(
            &format!(
                "Figure 8 ({}): inference accuracy vs background knowledge",
                setup.kind.name()
            ),
            &[
                "dataset",
                "defense",
                "background",
                "inference accuracy",
                "chance",
            ],
            &background::rows(&points),
        );
    }
    Ok(())
}

fn run_fig9(opts: &Options) -> Result<(), String> {
    for setup in setups(opts) {
        let (points, counts) =
            robustness::run(&setup, 2, opts.radius).map_err(|e| e.to_string())?;
        report::print_table(
            &format!(
                "Figure 9 ({}): CDF of close-gradient neighbours (radius {})",
                setup.kind.name(),
                opts.radius
            ),
            &["dataset", "neighbors", "cdf"],
            &robustness::rows(&points),
        );
        let with_neighbors = counts.iter().filter(|&&c| c > 0).count();
        println!(
            "{} / {} participants have at least one alter ego within the radius",
            with_neighbors,
            counts.len()
        );
    }
    Ok(())
}

fn run_sysperf(opts: &Options) -> Result<(), String> {
    // Sysperf uses a single dataset's geometry (CIFAR10 in the paper).
    let setup = ExperimentSetup::at_scale(DatasetKind::Cifar10, opts.scale, opts.seed);
    let results = sysperf::run(&setup, opts.clients).map_err(|e| e.to_string())?;
    report::print_table(
        &format!(
            "Section 6.5: proxy pipeline cost ({} clients, encrypted path)",
            opts.clients
        ),
        &[
            "model",
            "params",
            "update MB",
            "decrypt ms",
            "store ms",
            "process ms",
            "mix ms",
            "EPC high-water MB",
        ],
        &sysperf::rows(&results),
    );
    println!(
        "\nNote: the paper reports 0.19 s / 26.9 MB (2conv+3fc) and 0.22 s / 51.3 MB\n\
         (3conv+3fc) for TensorFlow-scale models on a 2016 laptop; the reproduction\n\
         targets the *shape* (decrypt-dominated, scaling with model size).",
    );
    let _ = Defense::lineup(0.0);
    Ok(())
}

fn run_throughput(opts: &Options) -> Result<(), String> {
    let setup = ExperimentSetup::at_scale(DatasetKind::Cifar10, opts.scale, opts.seed);
    let clients: &[usize] = match opts.scale {
        ExperimentScale::Paper => &throughput::DEFAULT_CLIENTS,
        ExperimentScale::Quick => &[8, 32],
    };
    let results = throughput::run(&setup, clients, &throughput::DEFAULT_WORKERS)
        .map_err(|e| e.to_string())?;
    report::print_table(
        "Ingest throughput: parallel pipeline vs sequential (encrypted path)",
        &[
            "clients",
            "workers",
            "ingest ms",
            "mix ms",
            "updates/s",
            "speedup",
        ],
        &throughput::rows(&results),
    );
    std::fs::write(&opts.out, throughput::to_json(&results))
        .map_err(|e| format!("writing {}: {e}", opts.out))?;
    let threads = throughput::hardware_threads();
    println!(
        "\nAll worker counts produced bit-identical mixed outputs (verified).\n\
         Results written to {}.",
        opts.out
    );
    println!("Hardware threads available: {threads}.");
    if threads < 4 {
        println!(
            "NOTE: fewer than 4 hardware threads — worker counts beyond {threads} cannot\n\
             speed up the wall-clock on this host; expect speedup ~1.0x here and\n\
             ~min(workers, cores)x on the decrypt share of the budget elsewhere."
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("usage: eval <fig5|fig6|fig7|fig8|fig9|sysperf|throughput|all> [options]");
        return ExitCode::FAILURE;
    };
    let opts = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "fig5" => run_fig5(&opts),
        "fig6" => run_fig6(&opts),
        "fig7" => run_fig7(&opts),
        "fig8" => run_fig8(&opts),
        "fig9" => run_fig9(&opts),
        "sysperf" => run_sysperf(&opts),
        "throughput" => run_throughput(&opts),
        "all" => run_fig5(&opts)
            .and_then(|()| run_fig6(&opts))
            .and_then(|()| run_fig7(&opts))
            .and_then(|()| run_fig8(&opts))
            .and_then(|()| run_fig9(&opts))
            .and_then(|()| run_sysperf(&opts))
            .and_then(|()| run_throughput(&opts)),
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
