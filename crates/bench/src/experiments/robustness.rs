//! **Figure 9** — CDF over participants of the number of neighbours whose
//! gradient lies within a small Euclidean radius.
//!
//! Expected shape (§6.4): every participant has at least a few close alter
//! egos, so a malicious server enumerating combinations of mixed layers
//! cannot tell which pieces belong together.

use crate::ExperimentSetup;
use mixnn_attacks::robustness::{cdf_of_counts, neighbor_counts};
use mixnn_attacks::AttackError;
use mixnn_fl::{DirectTransport, FlSimulation};

/// One CDF point of Fig. 9.
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborPoint {
    /// Dataset name.
    pub dataset: String,
    /// Number of close neighbours.
    pub neighbors: usize,
    /// Fraction of participants with at most this many neighbours.
    pub fraction: f64,
}

/// Runs the Fig. 9 analysis: train classic FL for `warmup_rounds`, then
/// collect one round of raw updates and count, for each participant, how
/// many others are within `radius` (on unit-normalized gradients; the
/// normalization keeps the radius meaningful as gradients shrink, see
/// `mixnn_attacks::robustness`).
///
/// # Errors
///
/// Propagates data-generation and FL failures.
pub fn run(
    setup: &ExperimentSetup,
    warmup_rounds: usize,
    radius: f32,
) -> Result<(Vec<NeighborPoint>, Vec<usize>), AttackError> {
    let population = setup.spec.generate()?;
    let mut fl_cfg = setup.fl;
    // All participants report this round so the neighbourhood statistics
    // cover the population, as in the paper's figure.
    fl_cfg.clients_per_round = population.len();
    let mut sim = FlSimulation::new(setup.template(), fl_cfg, &population);
    let mut transport = DirectTransport::new();
    for _ in 0..warmup_rounds {
        sim.run_round(&mut transport)?;
    }
    let global = sim.global().clone();
    let outcome = sim.run_round(&mut transport)?;
    let gradients: Vec<Vec<f32>> = outcome
        .observed
        .iter()
        .map(|u| u.gradient_from(&global).expect("same architecture"))
        .collect();
    let counts = neighbor_counts(&gradients, radius, true);
    let points = cdf_of_counts(&counts)
        .into_iter()
        .map(|(neighbors, fraction)| NeighborPoint {
            dataset: setup.kind.name().to_string(),
            neighbors,
            fraction,
        })
        .collect();
    Ok((points, counts))
}

/// Formats Fig. 9 points as table rows.
pub fn rows(points: &[NeighborPoint]) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|p| {
            vec![
                p.dataset.clone(),
                p.neighbors.to_string(),
                format!("{:.3}", p.fraction),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetKind, ExperimentScale};

    #[test]
    fn produces_valid_cdf() {
        let setup = ExperimentSetup::at_scale(DatasetKind::MotionSense, ExperimentScale::Quick, 2);
        let (points, counts) = run(&setup, 1, 0.5).unwrap();
        assert_eq!(counts.len(), setup.spec.num_participants());
        assert!(!points.is_empty());
        assert!((points.last().unwrap().fraction - 1.0).abs() < 1e-9);
        assert!(points
            .windows(2)
            .all(|w| w[0].neighbors < w[1].neighbors && w[0].fraction <= w[1].fraction));
    }
}
