//! `eval load` — load generation over the simulated network.
//!
//! Drives 10^5 (paper scale) size-only simulated clients through a 3-hop
//! cascade wire three times — with **batched** MIXB flushing (a round's
//! envelopes for one peer coalesced into a single burst), with the
//! **per-envelope-flush baseline**, and batched again under the **MIXN
//! v2 `int8+topk` codec** — and reports, per row: sustained updates per
//! virtual second, p50/p99/p99.9 round latency, peak send/receive queue
//! depths, and wire bytes per client per round.
//!
//! The run fails rather than reporting nonsense: a small *fidelity
//! cross-check* first drives a real (crypto-carrying) cascade round over
//! the simulated wire and asserts bit-identity with the in-process
//! drive; batched flushing must beat the per-envelope baseline in
//! virtual time; and the batched framing overhead must stay under 5% of
//! payload. The per-client wire bytes are cross-checked against the
//! ~23 KB/client/round `bytes_received` figure ROADMAP.md records for
//! the paper-scale model. Every reported metric is virtual-time derived,
//! so `BENCH_load.json` is identical across reruns of the same seed and
//! configuration.

use crate::report::Percentiles;
use crate::ExperimentScale;
use mixnn_cascade::{CascadeCoordinator, CascadeTransport, FailurePolicy};
use mixnn_core::codec;
use mixnn_enclave::AttestationService;
use mixnn_fl::{ModelUpdate, UpdateTransport};
use mixnn_net::{run_load_with, FlushPolicy, LinkConfig, LoadConfig, NetCascadeTransport};
use mixnn_nn::{LayerParams, ModelParams};
use mixnn_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The ~23 KB/client/round `bytes_received` reference ROADMAP.md records
/// for the paper-scale model, in bytes.
pub const ROADMAP_BYTES_PER_CLIENT: f64 = 23.0 * 1024.0;

/// Hard ceiling on acceptable framing overhead (fraction of payload).
pub const MAX_FRAMING_OVERHEAD: f64 = 0.05;

/// One flush policy's metrics. All time-derived figures are virtual, so
/// rows are byte-identical across reruns of one seed and configuration.
#[derive(Debug, Clone)]
pub struct LoadRow {
    /// Flush policy (`batched` / `per_envelope`).
    pub flush: &'static str,
    /// Wire codec mode (`f32` / `int8+topk`).
    pub codec: &'static str,
    /// Clients per round.
    pub clients: usize,
    /// Rounds driven.
    pub rounds: usize,
    /// Virtual time at which the last round completed.
    pub sim_seconds: f64,
    /// Updates sustained per virtual second.
    pub sustained_updates_per_sec: f64,
    /// p50/p99/p99.9 of per-client round latency, virtual seconds.
    pub latency: Percentiles,
    /// Deepest any link's send queue got.
    pub peak_send_queue: usize,
    /// Deepest any node's receive queue got.
    pub peak_recv_queue: usize,
    /// Access-link wire bytes per client per round (framing included).
    pub bytes_on_wire_per_client: f64,
    /// Fraction of the access wire spent on burst framing.
    pub framing_overhead: f64,
    /// `bytes_on_wire_per_client` over [`ROADMAP_BYTES_PER_CLIENT`].
    pub roadmap_bytes_ratio: f64,
    /// Packets transmitted across all links.
    pub packets_sent: u64,
    /// Packets lost in flight (zero for the healthy deployment modelled).
    pub packets_lost: u64,
    /// Packets that drew the slow reorder detour.
    pub packets_reordered: u64,
    /// Wire bytes across all links.
    pub wire_bytes_total: u64,
    /// Simulator events processed.
    pub events_processed: u64,
}

fn small_updates(c: usize) -> Vec<ModelUpdate> {
    (0..c)
        .map(|i| {
            ModelUpdate::new(
                i,
                ModelParams::from_layers(vec![
                    LayerParams::from_values(vec![i as f32; 3]),
                    LayerParams::from_values(vec![-(i as f32); 2]),
                ]),
            )
        })
        .collect()
}

/// Drives one real (crypto-carrying) cascade round over the simulated
/// wire and asserts bit-identity with the in-process drive — the load
/// model's sizes mean nothing if the wire itself corrupts rounds.
fn fidelity_check(seed: u64) -> Result<(), String> {
    let cascade = |s| {
        let mut rng = StdRng::seed_from_u64(s);
        let service = AttestationService::new(&mut rng);
        CascadeCoordinator::linear(vec![3, 2], 2, s, FailurePolicy::Abort, &service, &mut rng)
            .map_err(|e| e.to_string())
    };
    let mut in_process = CascadeTransport::new(cascade(seed)?, seed ^ 0x11);
    let mut over_wire = NetCascadeTransport::new(
        cascade(seed)?,
        seed ^ 0x11,
        LinkConfig {
            jitter_ns: 30_000,
            reorder: 0.2,
            ..LinkConfig::default()
        },
        FlushPolicy::Batched,
        10_000_000_000,
    );
    let reference = in_process
        .relay(small_updates(8))
        .map_err(|e| e.to_string())?;
    let wired = over_wire
        .relay(small_updates(8))
        .map_err(|e| e.to_string())?;
    if reference != wired {
        return Err(
            "fidelity check failed: simulated-wire round diverged from the \
             in-process drive"
                .to_string(),
        );
    }
    Ok(())
}

/// Runs the load experiment at `scale`, returning the two f32 flush
/// rows (batched first) followed by the compressed batched row.
///
/// # Errors
///
/// Fails when the fidelity cross-check diverges, a run times out, the
/// batched framing overhead exceeds [`MAX_FRAMING_OVERHEAD`], or batched
/// flushing does not beat the per-envelope baseline.
pub fn run(
    scale: ExperimentScale,
    clients: Option<usize>,
    seed: u64,
) -> Result<Vec<LoadRow>, String> {
    run_with(scale, clients, seed, &mixnn_telemetry::noop())
}

/// [`run`] with a telemetry registry attached to the simulated network —
/// the load generator drives the registry's virtual clock (if it carries
/// one), so counters, queue-depth gauges and round trace events are all
/// stamped in virtual nanoseconds and reproduce byte for byte.
///
/// # Errors
///
/// Same conditions as [`run`].
pub fn run_with(
    scale: ExperimentScale,
    clients: Option<usize>,
    seed: u64,
    telemetry: &Telemetry,
) -> Result<Vec<LoadRow>, String> {
    fidelity_check(seed)?;

    // Two f32 rows pin the framing comparison; the third row reruns the
    // deployment configuration (batched) under the MIXN v2 compressed
    // codec. Only wire cost changes: lossy rounds keep the aggregate
    // within the tolerances `eval compress` gates (int8+topk RMSE ≤ 0.2
    // vs the lossless baseline at the reference model).
    let sweep = [
        (FlushPolicy::Batched, codec::CompressionConfig::F32),
        (FlushPolicy::PerEnvelope, codec::CompressionConfig::F32),
        (FlushPolicy::Batched, codec::CompressionConfig::int8_top_k()),
    ];
    let mut rows = Vec::with_capacity(sweep.len());
    for (flush, compression) in sweep {
        let mut cfg = match scale {
            ExperimentScale::Paper => LoadConfig::paper(clients.unwrap_or(100_000), flush),
            ExperimentScale::Quick => {
                let mut cfg = LoadConfig::quick(flush);
                if let Some(c) = clients {
                    cfg.clients = c;
                }
                cfg
            }
        };
        cfg.seed = seed;
        cfg.compression = compression;
        let out = run_load_with(&cfg, telemetry).map_err(|e| e.to_string())?;
        let row = LoadRow {
            flush: flush.name(),
            codec: compression.name(),
            clients: out.clients,
            rounds: out.rounds,
            sim_seconds: out.sim_seconds,
            sustained_updates_per_sec: out.sustained_updates_per_sec,
            latency: Percentiles::from_samples(&out.latency_samples_s),
            peak_send_queue: out.peak_send_queue,
            peak_recv_queue: out.peak_recv_queue,
            bytes_on_wire_per_client: out.bytes_on_wire_per_client,
            framing_overhead: out.framing_overhead,
            roadmap_bytes_ratio: out.bytes_on_wire_per_client / ROADMAP_BYTES_PER_CLIENT,
            packets_sent: out.packets_sent,
            packets_lost: out.packets_lost,
            packets_reordered: out.packets_reordered,
            wire_bytes_total: out.wire_bytes_total,
            events_processed: out.events_processed,
        };
        if flush == FlushPolicy::Batched && row.framing_overhead > MAX_FRAMING_OVERHEAD {
            return Err(format!(
                "batched framing overhead {:.4} exceeds the {:.0}% ceiling",
                row.framing_overhead,
                MAX_FRAMING_OVERHEAD * 100.0
            ));
        }
        rows.push(row);
    }
    let (batched, per_env) = (&rows[0], &rows[1]);
    if batched.sim_seconds >= per_env.sim_seconds {
        return Err(format!(
            "batched flushing ({:.3} virtual s) failed to beat the per-envelope \
             baseline ({:.3} virtual s)",
            batched.sim_seconds, per_env.sim_seconds
        ));
    }
    Ok(rows)
}

/// Formats load rows for the report table.
pub fn rows(results: &[LoadRow]) -> Vec<Vec<String>> {
    results
        .iter()
        .map(|r| {
            vec![
                r.flush.to_string(),
                r.codec.to_string(),
                r.clients.to_string(),
                r.rounds.to_string(),
                format!("{:.1}", r.sustained_updates_per_sec),
                format!("{:.3}", r.latency.p50),
                format!("{:.3}", r.latency.p99),
                format!("{:.3}", r.latency.p999),
                r.peak_send_queue.to_string(),
                r.peak_recv_queue.to_string(),
                format!("{:.0}", r.bytes_on_wire_per_client),
                format!("{:.2}%", r.framing_overhead * 100.0),
                r.packets_sent.to_string(),
            ]
        })
        .collect()
}

/// Serializes the rows as the `BENCH_load.json` artifact. Only
/// virtual-time metrics appear, so the artifact is reproducible byte for
/// byte from one seed and configuration.
pub fn to_json(results: &[LoadRow]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"load\",\n");
    out.push_str(&format!(
        "  \"roadmap_bytes_per_client\": {ROADMAP_BYTES_PER_CLIENT:.0},\n  \"rows\": [\n"
    ));
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"flush\": \"{}\", \"codec\": \"{}\", \"clients\": {}, \"rounds\": {}, \
             \"sim_seconds\": {:.6}, \"sustained_updates_per_sec\": {:.2}, \
             \"latency_p50_s\": {:.6}, \"latency_p99_s\": {:.6}, \"latency_p999_s\": {:.6}, \
             \"peak_send_queue\": {}, \"peak_recv_queue\": {}, \
             \"bytes_on_wire_per_client\": {:.2}, \"framing_overhead\": {:.6}, \
             \"roadmap_bytes_ratio\": {:.4}, \"packets_sent\": {}, \
             \"packets_lost\": {}, \"packets_reordered\": {}, \
             \"wire_bytes_total\": {}, \"events_processed\": {}}}{}\n",
            r.flush,
            r.codec,
            r.clients,
            r.rounds,
            r.sim_seconds,
            r.sustained_updates_per_sec,
            r.latency.p50,
            r.latency.p99,
            r.latency.p999,
            r.peak_send_queue,
            r.peak_recv_queue,
            r.bytes_on_wire_per_client,
            r.framing_overhead,
            r.roadmap_bytes_ratio,
            r.packets_sent,
            r.packets_lost,
            r.packets_reordered,
            r.wire_bytes_total,
            r.events_processed,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_every_row_and_passes_gates() {
        let rows = run(ExperimentScale::Quick, Some(500), 42).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!((rows[0].flush, rows[0].codec), ("batched", "f32"));
        assert_eq!((rows[1].flush, rows[1].codec), ("per_envelope", "f32"));
        assert_eq!((rows[2].flush, rows[2].codec), ("batched", "int8+topk"));
        assert!(rows[0].sim_seconds < rows[1].sim_seconds);
        // The compressed row keeps the f32 baseline rows intact and cuts
        // the per-client wire bytes at least 4x.
        assert!(
            rows[2].bytes_on_wire_per_client * 4.0 <= rows[0].bytes_on_wire_per_client,
            "topk {} B vs f32 {} B",
            rows[2].bytes_on_wire_per_client,
            rows[0].bytes_on_wire_per_client
        );
        assert!(rows[0].framing_overhead < MAX_FRAMING_OVERHEAD);
        assert!(rows[0].latency.p50 <= rows[0].latency.p99);
        assert!(rows[0].latency.p99 <= rows[0].latency.p999);
        // The generator models a healthy deployment: nothing may be
        // lost, and the default links draw no reorder detours.
        assert_eq!(rows[0].packets_lost, 0);
        assert_eq!(rows[0].packets_reordered, 0);
        // Paper-signature envelopes with 2 remaining seals land near the
        // ROADMAP per-client figure.
        assert!(
            (0.8..1.2).contains(&rows[0].roadmap_bytes_ratio),
            "ratio {} strays from the ROADMAP reference",
            rows[0].roadmap_bytes_ratio
        );
    }

    #[test]
    fn artifact_is_deterministic_for_one_seed_and_config() {
        let a = run(ExperimentScale::Quick, Some(300), 7).unwrap();
        let b = run(ExperimentScale::Quick, Some(300), 7).unwrap();
        assert_eq!(to_json(&a), to_json(&b));
        let c = run(ExperimentScale::Quick, Some(300), 8).unwrap();
        assert_ne!(
            to_json(&a),
            to_json(&c),
            "different seed should shift jitter draws somewhere"
        );
    }

    #[test]
    fn json_has_every_required_metric() {
        let rows = run(ExperimentScale::Quick, Some(200), 42).unwrap();
        let json = to_json(&rows);
        for key in [
            "sustained_updates_per_sec",
            "latency_p50_s",
            "latency_p99_s",
            "latency_p999_s",
            "peak_send_queue",
            "peak_recv_queue",
            "bytes_on_wire_per_client",
            "framing_overhead",
            "roadmap_bytes_ratio",
            "packets_lost",
            "packets_reordered",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert!(json.contains("\"batched\""));
        assert!(json.contains("\"per_envelope\""));
        assert!(json.contains("\"f32\""));
        assert!(json.contains("\"int8+topk\""));
    }
}
