//! **Figure 8** — ∇Sim inference accuracy as a function of the adversary's
//! background knowledge (fraction of users whose data it controls).
//!
//! Expected shape (§6.3): more background knowledge → better attack models
//! → higher inference accuracy for classic FL and (less so) noisy
//! gradient; MixNN stays flat at chance regardless of knowledge.

use crate::{Defense, ExperimentSetup};
use mixnn_attacks::{AttackError, AttackMode, InferenceExperiment};

/// One (defense, background-ratio) point of the Fig. 8 curves.
#[derive(Debug, Clone, PartialEq)]
pub struct BackgroundPoint {
    /// Dataset name.
    pub dataset: String,
    /// Defense label.
    pub defense: String,
    /// Fraction of users available to the adversary as auxiliary data.
    pub background_fraction: f64,
    /// Final inference accuracy (after all rounds).
    pub accuracy: f32,
    /// The random-guess level.
    pub chance: f32,
}

/// The ratios swept in Fig. 8.
pub const DEFAULT_FRACTIONS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

/// Runs the Fig. 8 sweep.
///
/// # Errors
///
/// Propagates attack and FL failures.
pub fn run(
    setup: &ExperimentSetup,
    fractions: &[f64],
    mode: AttackMode,
) -> Result<Vec<BackgroundPoint>, AttackError> {
    let mut points = Vec::new();
    for defense in Defense::lineup(setup.noise_sigma) {
        for &fraction in fractions {
            let population = setup.spec.generate()?;
            let experiment = InferenceExperiment::new(
                &population,
                setup.template(),
                setup.fl,
                setup.attack.clone(),
                mode,
                fraction,
            );
            let mut transport = defense.make_transport(setup.fl.seed);
            let result = experiment.run(transport.as_mut())?;
            points.push(BackgroundPoint {
                dataset: setup.kind.name().to_string(),
                defense: defense.label().to_string(),
                background_fraction: fraction,
                accuracy: result.final_accuracy,
                chance: setup.chance_level(),
            });
        }
    }
    Ok(points)
}

/// Formats Fig. 8 points as table rows.
pub fn rows(points: &[BackgroundPoint]) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|p| {
            vec![
                p.dataset.clone(),
                p.defense.clone(),
                format!("{:.1}", p.background_fraction),
                crate::report::fmt3(p.accuracy),
                crate::report::fmt3(p.chance),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetKind, ExperimentScale};

    #[test]
    fn sweep_covers_all_fractions_and_defenses() {
        let setup = ExperimentSetup::at_scale(DatasetKind::MotionSense, ExperimentScale::Quick, 4);
        let fractions = [0.5, 1.0];
        let points = run(&setup, &fractions, AttackMode::Active).unwrap();
        assert_eq!(points.len(), 3 * fractions.len());
        for p in &points {
            assert!((0.0..=1.0).contains(&p.accuracy));
        }
    }
}
