//! **Figure 7** — ∇Sim (active) inference accuracy per learning round,
//! for classic FL, noisy gradient and MixNN.
//!
//! Expected shape (§6.3): classic FL approaches perfect inference within a
//! few rounds; noisy gradient leaks less but still far above chance; MixNN
//! stays at the random-guess level (1/3 for CIFAR10's three preference
//! groups, 1/2 for the gender datasets).

use crate::{Defense, ExperimentSetup};
use mixnn_attacks::{AttackError, AttackMode, InferenceExperiment};

/// One (defense, round) point of the Fig. 7 curves.
#[derive(Debug, Clone, PartialEq)]
pub struct InferencePoint {
    /// Dataset name.
    pub dataset: String,
    /// Defense label.
    pub defense: String,
    /// Learning round (1-based).
    pub round: usize,
    /// Inference accuracy with scores accumulated up to this round.
    pub accuracy: f32,
    /// The random-guess level for this dataset.
    pub chance: f32,
}

/// Runs the Fig. 7 experiment: the ∇Sim attack (active by default, as in
/// the paper's figure) against each defense, averaged over `repeats`
/// seeds.
///
/// # Errors
///
/// Propagates attack and FL failures.
pub fn run(
    setup: &ExperimentSetup,
    mode: AttackMode,
    background_fraction: f64,
    repeats: usize,
) -> Result<Vec<InferencePoint>, AttackError> {
    let rounds = setup.fl.rounds;
    let mut points = Vec::new();
    for defense in Defense::lineup(setup.noise_sigma) {
        let mut acc_sum = vec![0.0f32; rounds];
        for rep in 0..repeats.max(1) {
            let seed = setup.fl.seed.wrapping_add(777 * rep as u64);
            let mut spec = setup.spec.clone();
            spec.seed = seed;
            let population = spec.generate()?;
            let mut fl_cfg = setup.fl;
            fl_cfg.seed = seed;
            let mut attack_cfg = setup.attack.clone();
            attack_cfg.seed = seed;
            let mut setup_seeded = setup.clone();
            setup_seeded.fl = fl_cfg;
            let template = setup_seeded.template();
            let experiment = InferenceExperiment::new(
                &population,
                template,
                fl_cfg,
                attack_cfg,
                mode,
                background_fraction,
            );
            let mut transport = defense.make_transport(seed);
            let result = experiment.run(transport.as_mut())?;
            for (round, acc) in result.per_round_accuracy.iter().enumerate() {
                acc_sum[round] += acc;
            }
        }
        let n = repeats.max(1) as f32;
        for (round, sum) in acc_sum.iter().enumerate() {
            points.push(InferencePoint {
                dataset: setup.kind.name().to_string(),
                defense: defense.label().to_string(),
                round: round + 1,
                accuracy: sum / n,
                chance: setup.chance_level(),
            });
        }
    }
    Ok(points)
}

/// Formats Fig. 7 points as table rows.
pub fn rows(points: &[InferencePoint]) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|p| {
            vec![
                p.dataset.clone(),
                p.defense.clone(),
                p.round.to_string(),
                crate::report::fmt3(p.accuracy),
                crate::report::fmt3(p.chance),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetKind, ExperimentScale};

    #[test]
    fn quick_inference_produces_grid() {
        let setup = ExperimentSetup::at_scale(DatasetKind::Lfw, ExperimentScale::Quick, 9);
        let points = run(&setup, AttackMode::Active, 0.8, 1).unwrap();
        assert_eq!(points.len(), 3 * setup.fl.rounds);
        for p in &points {
            assert!((0.0..=1.0).contains(&p.accuracy));
            assert_eq!(p.chance, 0.5);
        }
    }
}
