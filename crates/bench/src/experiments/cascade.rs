//! The mix-cascade evaluation: utility equivalence, per-hop cost, and the
//! colluding-adversary sweep.
//!
//! For each hop count the experiment drives one full onion round through a
//! linear cascade and
//!
//! 1. **asserts** the server-side aggregate is bit-identical to a
//!    single-proxy `MixnnProxy` round over the same updates (the cascade
//!    must not cost any utility),
//! 2. **asserts** the audit's [`CascadeAudit::unmix`] restores the
//!    original updates bit-exactly (the composed permutation is invertible
//!    by an honest auditor),
//! 3. measures wall-clock round latency and the per-hop §6.5-style cost
//!    breakdown,
//! 4. runs [`analyze_collusion`] for **every** subset of hops, recording
//!    linkability and residual anonymity — and **asserts** the threat
//!    model: proper subsets link nothing, full collusion links all;
//! 5. sweeps the **parallel execution engine** (hop ingest workers, route
//!    group workers, cross-hop pipeline depth) over a multi-round batch,
//!    **asserting** every configuration reproduces the sequential outputs
//!    bit-for-bit and recording per-worker-count throughput/latency rows.
//!
//! Results land in `BENCH_cascade.json`.
//!
//! [`CascadeAudit::unmix`]: mixnn_cascade::CascadeAudit::unmix

use crate::report::Percentiles;
use crate::{ExperimentScale, ExperimentSetup};
use mixnn_attacks::{analyze_collusion, AttackError};
use mixnn_cascade::{CascadeCoordinator, CascadeTopology, FailurePolicy, FreeRoute};
use mixnn_core::{MixPlan, MixingStrategy, MixnnProxy, MixnnProxyConfig, Parallelism};
use mixnn_enclave::AttestationService;
use mixnn_nn::{LayerParams, ModelParams};
use mixnn_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// The hop counts swept by default (1 is the single-proxy chain).
pub const DEFAULT_HOPS: [usize; 4] = [1, 2, 3, 4];

/// The `(workers, pipeline_depth)` cells of the default parallel sweep:
/// `workers` feeds both the hop ingest fan-out and the route-group pool.
pub const DEFAULT_PARALLEL: [(usize, usize); 3] = [(1, 1), (2, 2), (4, 4)];

/// The extended sweep behind `eval cascade --parallel`.
pub const EXTENDED_PARALLEL: [(usize, usize); 7] =
    [(1, 1), (2, 1), (4, 1), (1, 2), (2, 2), (4, 4), (8, 8)];

/// Per-hop cost of one measured round.
#[derive(Debug, Clone, PartialEq)]
pub struct HopCost {
    /// Hop index in the chain.
    pub hop: usize,
    /// Seconds this hop spent unwrapping envelopes.
    pub decrypt_seconds: f64,
    /// Seconds spent decoding/validating framing.
    pub store_seconds: f64,
    /// Seconds spent drawing and applying the mixing plan.
    pub mix_seconds: f64,
    /// Onion ciphertext bytes this hop received.
    pub bytes_received: u64,
}

/// One measured hop-count cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadePerfRow {
    /// Chain length.
    pub hops: usize,
    /// Clients in the round.
    pub clients: usize,
    /// Wall-clock seconds for the whole round (sealing included).
    pub round_seconds: f64,
    /// Updates per second of round wall-clock.
    pub updates_per_sec: f64,
    /// The per-hop cost breakdown.
    pub per_hop: Vec<HopCost>,
}

/// One colluding-subset cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CollusionRow {
    /// Chain length.
    pub hops: usize,
    /// The colluding hop indices.
    pub subset: Vec<usize>,
    /// Fraction of (output, layer) pairs linked to a unique client.
    pub linkable_fraction: f64,
    /// Mean residual anonymity-set size.
    pub mean_anonymity_set: f64,
}

/// One parallel-execution cell: a multi-round batch driven at one
/// `(workers, pipeline_depth)` configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeParallelRow {
    /// Hop ingest + route-group worker count.
    pub workers: usize,
    /// Rounds kept in flight across hops.
    pub pipeline_depth: usize,
    /// Chain length of the swept cascade.
    pub hops: usize,
    /// Clients per round.
    pub clients: usize,
    /// Rounds in the batch.
    pub rounds: usize,
    /// Wall-clock seconds for the whole batch (sealing included).
    pub batch_seconds: f64,
    /// Updates per second of batch wall-clock.
    pub updates_per_sec: f64,
    /// Speedup against this sweep's `(1, 1)` row.
    pub speedup: f64,
}

/// Everything the cascade sweep produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeSweep {
    /// Per-hop-count performance rows.
    pub perf: Vec<CascadePerfRow>,
    /// Per-(hop count, subset) adversary rows.
    pub collusion: Vec<CollusionRow>,
    /// Per-worker-count parallel-engine rows (outputs verified
    /// bit-identical to the sequential drive before recording).
    pub parallel: Vec<CascadeParallelRow>,
}

fn synth_update(signature: &[usize], seed: u64) -> ModelParams {
    let mut rng = StdRng::seed_from_u64(seed);
    ModelParams::from_layers(
        signature
            .iter()
            .map(|&len| {
                LayerParams::from_values((0..len).map(|_| rng.gen_range(-1.0..1.0)).collect())
            })
            .collect(),
    )
}

/// The model signature the sweep routes: §6.5-shaped at paper scale, tiny
/// for smoke runs.
fn sweep_signature(scale: ExperimentScale) -> Vec<usize> {
    match scale {
        ExperimentScale::Paper => vec![2048, 2048, 1024, 512, 130],
        ExperimentScale::Quick => vec![64, 32, 16],
    }
}

/// Runs the cascade sweep.
///
/// `parallel_configs` names the `(workers, pipeline_depth)` cells of the
/// parallel-engine sweep (e.g. [`DEFAULT_PARALLEL`]); the sequential
/// `(1, 1)` drive always runs first — it is both the bit-identity
/// reference and the speedup anchor row — so listing it in the configs is
/// optional and never runs it twice. The per-hop-count round duration is
/// the median of `repeats` identical re-runs
/// ([`Percentiles::from_samples`]).
///
/// # Errors
///
/// Propagates cascade/proxy failures as [`AttackError`]-wrapped transport
/// errors.
///
/// # Panics
///
/// Panics (deliberately — these are the experiment's assertions) if the
/// cascade's aggregate diverges from the single-proxy baseline, the
/// audit fails to restore the original updates bit-exactly, any
/// colluding-subset report violates the threat model (a proper subset
/// linking anything, or full collusion failing to link everything), or a
/// parallel configuration fails to reproduce the sequential outputs
/// bit-for-bit.
pub fn run(
    setup: &ExperimentSetup,
    scale: ExperimentScale,
    clients: usize,
    hop_counts: &[usize],
    parallel_configs: &[(usize, usize)],
    repeats: usize,
) -> Result<CascadeSweep, AttackError> {
    run_with(
        setup,
        scale,
        clients,
        hop_counts,
        parallel_configs,
        repeats,
        &mixnn_telemetry::noop(),
    )
}

/// [`run`] with a telemetry registry attached to every coordinator the
/// sweep drives, so round/group/hop counters and span timings accumulate
/// into the shared registry `eval` exports.
///
/// # Errors
///
/// Same conditions as [`run`].
#[allow(clippy::too_many_arguments)]
pub fn run_with(
    setup: &ExperimentSetup,
    scale: ExperimentScale,
    clients: usize,
    hop_counts: &[usize],
    parallel_configs: &[(usize, usize)],
    repeats: usize,
    telemetry: &Telemetry,
) -> Result<CascadeSweep, AttackError> {
    if clients < 2 {
        // One client has an anonymity set of one no matter the chain; the
        // collusion invariants below would be vacuous lies at C = 1.
        return Err(mixnn_fl::FlError::Transport {
            message: "cascade sweep needs at least 2 clients".to_string(),
        }
        .into());
    }
    let signature = sweep_signature(scale);
    let seed = setup.fl.seed;
    let originals: Vec<ModelParams> = (0..clients)
        .map(|i| synth_update(&signature, seed ^ ((i as u64) << 8)))
        .collect();

    // The single-proxy baseline aggregate every chain must reproduce.
    let baseline_aggregate = {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51);
        let service = AttestationService::new(&mut rng);
        let mut proxy = MixnnProxy::launch(
            MixnnProxyConfig {
                strategy: MixingStrategy::Batch,
                expected_signature: signature.clone(),
                seed,
                parallelism: Parallelism::sequential(),
                ..MixnnProxyConfig::default()
            },
            &service,
            &mut rng,
        );
        let mixed = proxy
            .mix_plaintext_round(originals.clone())
            .map_err(mixnn_fl::FlError::from)?;
        ModelParams::mean(&mixed).expect("non-empty round")
    };

    let mut perf = Vec::with_capacity(hop_counts.len());
    let mut collusion = Vec::new();
    for &hops in hop_counts {
        // Each repetition rebuilds the cascade from the same seeds, so
        // every rep runs the identical round (bit for bit) and the hop
        // stats below describe exactly one round; the reported duration
        // is the median of the repetitions, not a lucky or unlucky one.
        let mut round_samples = Vec::with_capacity(repeats.max(1));
        let mut last = None;
        for _ in 0..repeats.max(1) {
            let mut rng = StdRng::seed_from_u64(seed ^ ((hops as u64) << 16));
            let service = AttestationService::new(&mut rng);
            let mut cascade = CascadeCoordinator::linear(
                signature.clone(),
                hops,
                seed,
                FailurePolicy::Abort,
                &service,
                &mut rng,
            )
            .map_err(mixnn_fl::FlError::from)?;
            cascade.attach_telemetry(telemetry.clone());

            let t0 = Instant::now();
            let round = cascade
                .run_round(&originals, &mut rng)
                .map_err(mixnn_fl::FlError::from)?;
            round_samples.push(t0.elapsed().as_secs_f64());
            last = Some((cascade, round));
        }
        let (cascade, round) = last.expect("at least one repetition ran");
        let round_seconds = Percentiles::from_samples(&round_samples).p50;

        // Assertion 1: utility equivalence against the single-proxy
        // baseline, bit for bit, at every hop count.
        let aggregate = ModelParams::mean(&round.mixed).expect("non-empty round");
        assert_eq!(
            baseline_aggregate, aggregate,
            "cascade aggregate diverged from the single-proxy baseline at {hops} hops"
        );
        // Assertion 2: the composed permutation inverts cleanly.
        let restored = round
            .audit
            .unmix(&round.mixed)
            .map_err(mixnn_fl::FlError::from)?;
        assert_eq!(
            originals, restored,
            "unmix failed to restore the originals at {hops} hops"
        );

        perf.push(CascadePerfRow {
            hops,
            clients,
            round_seconds,
            updates_per_sec: if round_seconds > 0.0 {
                clients as f64 / round_seconds
            } else {
                0.0
            },
            per_hop: cascade
                .hop_stats()
                .iter()
                .enumerate()
                .map(|(hop, s)| HopCost {
                    hop,
                    decrypt_seconds: s.decrypt_seconds,
                    store_seconds: s.store_seconds,
                    mix_seconds: s.mix_seconds,
                    bytes_received: s.bytes_received,
                })
                .collect(),
        });

        // Every colluding subset of this chain, adversary-evaluated on the
        // round's actual plans.
        let plans = round.audit.plans().map_err(mixnn_fl::FlError::from)?;
        for mask in 0u32..(1 << hops) {
            let views: Vec<Option<&MixPlan>> = (0..hops)
                .map(|h| (mask & (1 << h) != 0).then_some(&plans[h]))
                .collect();
            let report = analyze_collusion(&views, clients, signature.len());
            // Assertion 3: the cascade's threat-model claim, on this
            // round's actual plans — only full collusion links anything.
            if report.colluding_hops.len() == hops {
                assert_eq!(
                    report.linkable_fraction, 1.0,
                    "all {hops} hops colluding must deanonymize the round"
                );
            } else {
                assert_eq!(
                    report.linkable_fraction, 0.0,
                    "proper subset {:?} of {hops} hops linked something",
                    report.colluding_hops
                );
            }
            collusion.push(CollusionRow {
                hops,
                subset: report.colluding_hops,
                linkable_fraction: report.linkable_fraction,
                mean_anonymity_set: report.mean_anonymity_set,
            });
        }
    }

    let parallel = parallel_sweep(
        &signature,
        seed,
        &originals,
        &baseline_aggregate,
        hop_counts.iter().copied().max().unwrap_or(1).max(2),
        parallel_configs,
        telemetry,
    )?;
    Ok(CascadeSweep {
        perf,
        collusion,
        parallel,
    })
}

/// The number of rounds the parallel sweep pipelines per configuration.
const PARALLEL_SWEEP_ROUNDS: usize = 3;

/// Drives the same multi-round batch through a free-route cascade (with
/// the minimum-group-size codebook, so the route-group pool has several
/// groups to work on) at every `(workers, pipeline_depth)` configuration,
/// asserting the outputs bit-identical to the `(1, 1)` drive and the
/// aggregate bit-identical to the single-proxy baseline, then recording
/// throughput/latency per configuration.
fn parallel_sweep(
    signature: &[usize],
    seed: u64,
    originals: &[ModelParams],
    baseline_aggregate: &ModelParams,
    hops: usize,
    configs: &[(usize, usize)],
    telemetry: &Telemetry,
) -> Result<Vec<CascadeParallelRow>, AttackError> {
    let clients = originals.len();
    let rounds: Vec<Vec<ModelParams>> = (0..PARALLEL_SWEEP_ROUNDS)
        .map(|_| originals.to_vec())
        .collect();

    let drive = |workers: usize, depth: usize| -> Result<_, AttackError> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9a11);
        let service = AttestationService::new(&mut rng);
        let topology =
            FreeRoute::new(hops, 1, hops, seed).with_min_group_size(2.min(clients), clients);
        let mut cascade = CascadeCoordinator::with_topology(
            signature.to_vec(),
            Box::new(topology) as Box<dyn CascadeTopology>,
            seed,
            FailurePolicy::Abort,
            &service,
            &mut rng,
        )
        .map_err(mixnn_fl::FlError::from)?;
        cascade.set_parallelism(Parallelism {
            ingest_workers: workers,
            group_workers: workers,
            pipeline_depth: depth,
            ..Parallelism::sequential()
        });
        cascade.attach_telemetry(telemetry.clone());
        let t0 = Instant::now();
        let out = cascade
            .run_rounds(&rounds, &mut rng)
            .map_err(mixnn_fl::FlError::from)?;
        let batch_seconds = t0.elapsed().as_secs_f64();
        Ok((out, batch_seconds))
    };

    // The sequential drive doubles as the sweep's (1, 1) anchor row —
    // the bit-identity reference and the speedup denominator come from
    // one run, not two.
    let (reference, sequential_seconds) = drive(1, 1)?;
    for round in &reference {
        let aggregate = ModelParams::mean(&round.mixed).expect("non-empty round");
        assert_eq!(
            baseline_aggregate, &aggregate,
            "parallel-sweep aggregate diverged from the single-proxy baseline"
        );
    }

    let total_updates = (clients * PARALLEL_SWEEP_ROUNDS) as f64;
    let row = |workers: usize, depth: usize, batch_seconds: f64| CascadeParallelRow {
        workers,
        pipeline_depth: depth,
        hops,
        clients,
        rounds: PARALLEL_SWEEP_ROUNDS,
        batch_seconds,
        updates_per_sec: if batch_seconds > 0.0 {
            total_updates / batch_seconds
        } else {
            0.0
        },
        speedup: if batch_seconds > 0.0 {
            sequential_seconds / batch_seconds
        } else {
            0.0
        },
    };
    let mut rows = Vec::with_capacity(configs.len() + 1);
    rows.push(row(1, 1, sequential_seconds));
    for &(workers, depth) in configs.iter().filter(|&&c| c != (1, 1)) {
        let (out, batch_seconds) = drive(workers, depth)?;
        assert_eq!(
            reference, out,
            "workers={workers} depth={depth} diverged from the sequential drive"
        );
        rows.push(row(workers, depth, batch_seconds));
    }
    Ok(rows)
}

/// Formats the performance rows for the report table.
pub fn perf_rows(sweep: &CascadeSweep) -> Vec<Vec<String>> {
    sweep
        .perf
        .iter()
        .flat_map(|r| {
            r.per_hop.iter().map(move |h| {
                vec![
                    r.hops.to_string(),
                    h.hop.to_string(),
                    crate::report::fmt_ms(h.decrypt_seconds),
                    crate::report::fmt_ms(h.store_seconds),
                    crate::report::fmt_ms(h.mix_seconds),
                    format!("{:.1}", h.bytes_received as f64 / (1024.0 * 1024.0)),
                    crate::report::fmt_ms(r.round_seconds),
                    format!("{:.1}", r.updates_per_sec),
                ]
            })
        })
        .collect()
}

/// Formats the parallel-engine rows for the report table.
pub fn parallel_rows(sweep: &CascadeSweep) -> Vec<Vec<String>> {
    sweep
        .parallel
        .iter()
        .map(|r| {
            vec![
                r.workers.to_string(),
                r.pipeline_depth.to_string(),
                r.hops.to_string(),
                format!("{}x{}", r.rounds, r.clients),
                crate::report::fmt_ms(r.batch_seconds),
                format!("{:.1}", r.updates_per_sec),
                format!("{:.2}x", r.speedup),
            ]
        })
        .collect()
}

/// Formats the collusion rows for the report table.
pub fn collusion_rows(sweep: &CascadeSweep) -> Vec<Vec<String>> {
    sweep
        .collusion
        .iter()
        .map(|r| {
            vec![
                r.hops.to_string(),
                if r.subset.is_empty() {
                    "∅".to_string()
                } else {
                    format!(
                        "{{{}}}",
                        r.subset
                            .iter()
                            .map(usize::to_string)
                            .collect::<Vec<_>>()
                            .join(",")
                    )
                },
                format!("{:.2}", r.linkable_fraction),
                format!("{:.1}", r.mean_anonymity_set),
            ]
        })
        .collect()
}

/// Serializes the sweep as the `BENCH_cascade.json` artifact — hand-rolled
/// because the offline serde shim does not serialize.
pub fn to_json(sweep: &CascadeSweep, clients: usize) -> String {
    let mut out =
        format!("{{\n  \"experiment\": \"cascade\",\n  \"clients\": {clients},\n  \"rows\": [\n");
    for (i, r) in sweep.perf.iter().enumerate() {
        let per_hop: Vec<String> = r
            .per_hop
            .iter()
            .map(|h| {
                format!(
                    "{{\"hop\": {}, \"decrypt_seconds\": {:.6}, \"store_seconds\": {:.6}, \
                     \"mix_seconds\": {:.6}, \"bytes_received\": {}}}",
                    h.hop, h.decrypt_seconds, h.store_seconds, h.mix_seconds, h.bytes_received
                )
            })
            .collect();
        let subsets: Vec<String> = sweep
            .collusion
            .iter()
            .filter(|c| c.hops == r.hops)
            .map(|c| {
                format!(
                    "{{\"subset\": [{}], \"linkable_fraction\": {:.4}, \
                     \"mean_anonymity_set\": {:.4}}}",
                    c.subset
                        .iter()
                        .map(usize::to_string)
                        .collect::<Vec<_>>()
                        .join(", "),
                    c.linkable_fraction,
                    c.mean_anonymity_set
                )
            })
            .collect();
        out.push_str(&format!(
            "    {{\"hops\": {}, \"round_seconds\": {:.6}, \"updates_per_sec\": {:.2}, \
             \"aggregate_bit_identical\": true, \"unmix_bit_identical\": true,\n     \
             \"per_hop\": [{}],\n     \"collusion\": [{}]}}{}\n",
            r.hops,
            r.round_seconds,
            r.updates_per_sec,
            per_hop.join(", "),
            subsets.join(", "),
            if i + 1 == sweep.perf.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"parallel\": [\n");
    for (i, r) in sweep.parallel.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"pipeline_depth\": {}, \"hops\": {}, \"clients\": {}, \
             \"rounds\": {}, \"batch_seconds\": {:.6}, \"updates_per_sec\": {:.2}, \
             \"speedup\": {:.4}, \"bit_identical_to_sequential\": true}}{}\n",
            r.workers,
            r.pipeline_depth,
            r.hops,
            r.clients,
            r.rounds,
            r.batch_seconds,
            r.updates_per_sec,
            r.speedup,
            if i + 1 == sweep.parallel.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetKind;

    fn sweep() -> CascadeSweep {
        let setup = ExperimentSetup::at_scale(DatasetKind::Cifar10, ExperimentScale::Quick, 3);
        run(
            &setup,
            ExperimentScale::Quick,
            6,
            &[1, 2, 3],
            &DEFAULT_PARALLEL,
            2,
        )
        .unwrap()
    }

    #[test]
    fn sweep_covers_every_hop_count_and_subset() {
        let sweep = sweep();
        assert_eq!(sweep.perf.len(), 3);
        // 2^1 + 2^2 + 2^3 subsets.
        assert_eq!(sweep.collusion.len(), 2 + 4 + 8);
        for r in &sweep.perf {
            assert_eq!(r.per_hop.len(), r.hops);
            assert!(r.round_seconds > 0.0);
        }
    }

    #[test]
    fn only_full_collusion_links_anything() {
        let sweep = sweep();
        for c in &sweep.collusion {
            if c.subset.len() == c.hops {
                assert_eq!(
                    c.linkable_fraction, 1.0,
                    "full collusion at {} hops",
                    c.hops
                );
                assert_eq!(c.mean_anonymity_set, 1.0);
            } else {
                assert_eq!(
                    c.linkable_fraction, 0.0,
                    "proper subset {:?} of {} hops linked something",
                    c.subset, c.hops
                );
                assert_eq!(c.mean_anonymity_set, 6.0);
            }
        }
    }

    #[test]
    fn json_artifact_is_well_formed_enough() {
        let sweep = sweep();
        let json = to_json(&sweep, 6);
        assert!(json.contains("\"cascade\""));
        // 3 perf rows + 1 "hops" key per parallel row.
        assert_eq!(json.matches("\"hops\"").count(), 3 + sweep.parallel.len());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"aggregate_bit_identical\": true"));
        assert!(json.contains("\"bit_identical_to_sequential\": true"));
        assert!(json.contains("\"parallel\""));
    }

    #[test]
    fn parallel_sweep_covers_every_requested_cell_with_a_sequential_anchor() {
        let sweep = sweep();
        // DEFAULT_PARALLEL already anchors at (1, 1); every cell present.
        let cells: Vec<(usize, usize)> = sweep
            .parallel
            .iter()
            .map(|r| (r.workers, r.pipeline_depth))
            .collect();
        assert_eq!(cells, DEFAULT_PARALLEL.to_vec());
        assert!((sweep.parallel[0].speedup - 1.0).abs() < 1e-9);
        for r in &sweep.parallel {
            assert!(r.batch_seconds > 0.0);
            assert!(r.updates_per_sec > 0.0);
            assert_eq!(r.rounds, 3);
            assert_eq!(r.clients, 6);
        }
    }
}
