//! The cascade-layout evaluation: linear vs stratified vs free-route
//! mixing, with per-client anonymity-set distributions.
//!
//! For each hop count and each of the three shipped layouts the
//! experiment drives one full onion round and
//!
//! 1. **asserts** the server-side aggregate is bit-identical to a
//!    single-proxy `MixnnProxy` round over the same updates (no layout
//!    may cost any utility),
//! 2. **asserts** the audit's `CascadeAudit::unmix` restores the original
//!    updates bit-exactly (the per-route-group permutations compose into
//!    an invertible assignment),
//! 3. measures wall-clock round latency and the round's route-group
//!    structure (group count and sizes),
//! 4. runs [`analyze_routed_collusion`] for **every** subset of hops and
//!    **asserts** the routed threat model: a client is linked exactly
//!    when the colluding subset covers its whole route *or* its route
//!    group is a singleton; otherwise its anonymity set is its route
//!    group, whole and intact.
//!
//! Results — including the per-client anonymity-set distribution of every
//! (layout, hops, subset) cell — land in `BENCH_topology.json`. The
//! distributions are the experiment's point: the linear cascade holds the
//! full round as everyone's anonymity set until total collusion, while
//! stratified and free-route layouts trade exactly that set size for
//! shorter routes.

use crate::{ExperimentScale, ExperimentSetup};
use mixnn_attacks::{analyze_routed_collusion, AttackError, RouteGroupView};
use mixnn_cascade::{
    CascadeCoordinator, CascadeTopology, FailurePolicy, FreeRoute, LinearChain, StratifiedLayout,
};
use mixnn_core::{MixingStrategy, MixnnProxy, MixnnProxyConfig, Parallelism};
use mixnn_enclave::AttestationService;
use mixnn_nn::{LayerParams, ModelParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// The hop counts swept by default (2 is the shortest chain where layouts
/// can differ).
pub const DEFAULT_HOPS: [usize; 3] = [2, 3, 4];

/// One colluding-subset cell of one (layout, hops) round.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyCollusionRow {
    /// The colluding hop indices.
    pub subset: Vec<usize>,
    /// Fraction of (output, layer) pairs linked to a unique client.
    pub linkable_fraction: f64,
    /// Mean per-client residual anonymity-set size.
    pub mean_anonymity_set: f64,
    /// Clients whose residual anonymity set is a singleton.
    pub linked_clients: usize,
    /// Ascending `(anonymity-set size, client count)` pairs — the
    /// per-client distribution.
    pub distribution: Vec<(usize, usize)>,
}

/// One measured (layout, hop count) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyRow {
    /// Layout name (`linear`, `stratified`, `free-route`).
    pub layout: String,
    /// Total hops the layout spans.
    pub hops: usize,
    /// Clients in the round.
    pub clients: usize,
    /// Number of route groups the round split into.
    pub route_groups: usize,
    /// Group sizes, in route order.
    pub group_sizes: Vec<usize>,
    /// Mean route length over clients (the latency proxy: hops an update
    /// actually pays).
    pub mean_route_len: f64,
    /// Wall-clock seconds for the whole round (sealing included).
    pub round_seconds: f64,
    /// One row per colluding subset of the hops.
    pub collusion: Vec<TopologyCollusionRow>,
}

/// Everything the topology sweep produced.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySweep {
    /// One row per (layout, hop count).
    pub rows: Vec<TopologyRow>,
}

fn synth_update(signature: &[usize], seed: u64) -> ModelParams {
    let mut rng = StdRng::seed_from_u64(seed);
    ModelParams::from_layers(
        signature
            .iter()
            .map(|&len| {
                LayerParams::from_values((0..len).map(|_| rng.gen_range(-1.0..1.0)).collect())
            })
            .collect(),
    )
}

/// The model signature the sweep routes: §6.5-shaped at paper scale, tiny
/// for smoke runs.
fn sweep_signature(scale: ExperimentScale) -> Vec<usize> {
    match scale {
        ExperimentScale::Paper => vec![2048, 2048, 1024, 512, 130],
        ExperimentScale::Quick => vec![64, 32, 16],
    }
}

/// The three layouts compared at `hops` hops: the full chain, a 2-stratum
/// stratified layout (1 stratum at 2 hops collapses to per-hop choice),
/// and free routes of 1..=hops hops.
fn layouts(hops: usize, seed: u64) -> Vec<Box<dyn CascadeTopology>> {
    vec![
        Box::new(LinearChain::new(hops)),
        Box::new(StratifiedLayout::evenly(
            hops,
            hops.div_ceil(2),
            seed ^ 0x57,
        )),
        Box::new(FreeRoute::new(hops, 1, hops, seed ^ 0xf4)),
    ]
}

/// Runs the topology sweep.
///
/// # Errors
///
/// Propagates cascade/proxy failures as [`AttackError`]-wrapped transport
/// errors.
///
/// # Panics
///
/// Panics (deliberately — these are the experiment's assertions) if any
/// layout's aggregate diverges from the single-proxy baseline, the audit
/// fails to restore the original updates bit-exactly, or any
/// colluding-subset report violates the routed threat model (a client
/// linked without its route covered and its group non-singleton, or an
/// uncovered client's anonymity set smaller than its route group).
pub fn run(
    setup: &ExperimentSetup,
    scale: ExperimentScale,
    clients: usize,
    hop_counts: &[usize],
) -> Result<TopologySweep, AttackError> {
    if clients < 2 {
        return Err(mixnn_fl::FlError::Transport {
            message: "topology sweep needs at least 2 clients".to_string(),
        }
        .into());
    }
    let signature = sweep_signature(scale);
    let seed = setup.fl.seed;
    let originals: Vec<ModelParams> = (0..clients)
        .map(|i| synth_update(&signature, seed ^ ((i as u64) << 8)))
        .collect();

    // The single-proxy baseline aggregate every layout must reproduce.
    let baseline_aggregate = {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x70);
        let service = AttestationService::new(&mut rng);
        let mut proxy = MixnnProxy::launch(
            MixnnProxyConfig {
                strategy: MixingStrategy::Batch,
                expected_signature: signature.clone(),
                seed,
                parallelism: Parallelism::sequential(),
                ..MixnnProxyConfig::default()
            },
            &service,
            &mut rng,
        );
        let mixed = proxy
            .mix_plaintext_round(originals.clone())
            .map_err(mixnn_fl::FlError::from)?;
        ModelParams::mean(&mixed).expect("non-empty round")
    };

    let mut rows = Vec::new();
    for &hops in hop_counts {
        for topology in layouts(hops, seed) {
            let layout = topology.name().to_string();
            let mut rng = StdRng::seed_from_u64(seed ^ ((hops as u64) << 16));
            let service = AttestationService::new(&mut rng);
            let mut cascade = CascadeCoordinator::with_topology(
                signature.clone(),
                topology,
                seed,
                FailurePolicy::Abort,
                &service,
                &mut rng,
            )
            .map_err(mixnn_fl::FlError::from)?;

            let t0 = Instant::now();
            let round = cascade
                .run_round(&originals, &mut rng)
                .map_err(mixnn_fl::FlError::from)?;
            let round_seconds = t0.elapsed().as_secs_f64();

            // Assertion 1: utility equivalence against the single-proxy
            // baseline, bit for bit, for every layout.
            let aggregate = ModelParams::mean(&round.mixed).expect("non-empty round");
            assert_eq!(
                baseline_aggregate, aggregate,
                "{layout} aggregate diverged from the single-proxy baseline at {hops} hops"
            );
            // Assertion 2: the per-group permutations invert cleanly.
            let restored = round
                .audit
                .unmix(&round.mixed)
                .map_err(mixnn_fl::FlError::from)?;
            assert_eq!(
                originals, restored,
                "unmix failed to restore the originals ({layout}, {hops} hops)"
            );

            let groups = round.audit.groups();
            let group_sizes: Vec<usize> = groups.iter().map(|g| g.members()).collect();
            let mean_route_len = groups
                .iter()
                .map(|g| (g.route().len() * g.members()) as f64)
                .sum::<f64>()
                / clients as f64;

            // Every colluding subset, adversary-evaluated per route group
            // on the round's actual plans.
            let mut collusion = Vec::with_capacity(1 << hops);
            for mask in 0u32..(1 << hops) {
                let colluding: Vec<usize> = (0..hops).filter(|h| mask & (1 << h) != 0).collect();
                let views: Vec<RouteGroupView> = groups
                    .iter()
                    .map(|g| RouteGroupView::for_group(g.slots(), g.route(), g.plans(), &colluding))
                    .collect();
                let report = analyze_routed_collusion(&views, clients, signature.len());

                // Assertion 3: the routed threat model, client by client —
                // linked exactly when the subset covers the whole route or
                // the route group is a singleton; otherwise the anonymity
                // set is the whole route group.
                for group in groups {
                    let covered = group.route().iter().all(|h| colluding.contains(h));
                    let expected = if covered { 1 } else { group.members() };
                    for &slot in group.slots() {
                        assert_eq!(
                            report.per_client_anonymity[slot],
                            expected,
                            "{layout} at {hops} hops, subset {colluding:?}: client {slot} \
                             (route {:?}, group of {}) has the wrong anonymity set",
                            group.route(),
                            group.members()
                        );
                    }
                }

                collusion.push(TopologyCollusionRow {
                    subset: colluding,
                    linkable_fraction: report.linkable_fraction,
                    mean_anonymity_set: report.mean_anonymity_set,
                    linked_clients: report.linked_clients(),
                    distribution: report.anonymity_distribution(),
                });
            }

            rows.push(TopologyRow {
                layout,
                hops,
                clients,
                route_groups: groups.len(),
                group_sizes,
                mean_route_len,
                round_seconds,
                collusion,
            });
        }
    }
    Ok(TopologySweep { rows })
}

/// Formats the per-(layout, hops) structure rows for the report table.
pub fn structure_rows(sweep: &TopologySweep) -> Vec<Vec<String>> {
    sweep
        .rows
        .iter()
        .map(|r| {
            vec![
                r.layout.clone(),
                r.hops.to_string(),
                r.route_groups.to_string(),
                format!("{:?}", r.group_sizes),
                format!("{:.2}", r.mean_route_len),
                crate::report::fmt_ms(r.round_seconds),
            ]
        })
        .collect()
}

/// Formats the collusion rows for the report table.
pub fn collusion_rows(sweep: &TopologySweep) -> Vec<Vec<String>> {
    sweep
        .rows
        .iter()
        .flat_map(|r| {
            r.collusion.iter().map(move |c| {
                vec![
                    r.layout.clone(),
                    r.hops.to_string(),
                    if c.subset.is_empty() {
                        "∅".to_string()
                    } else {
                        format!(
                            "{{{}}}",
                            c.subset
                                .iter()
                                .map(usize::to_string)
                                .collect::<Vec<_>>()
                                .join(",")
                        )
                    },
                    format!("{:.2}", c.linkable_fraction),
                    c.linked_clients.to_string(),
                    format!("{:.1}", c.mean_anonymity_set),
                    c.distribution
                        .iter()
                        .map(|(size, count)| format!("{count}×{size}"))
                        .collect::<Vec<_>>()
                        .join(" "),
                ]
            })
        })
        .collect()
}

/// Serializes the sweep as the `BENCH_topology.json` artifact — hand-rolled
/// because the offline serde shim does not serialize.
pub fn to_json(sweep: &TopologySweep, clients: usize) -> String {
    let mut out =
        format!("{{\n  \"experiment\": \"topology\",\n  \"clients\": {clients},\n  \"rows\": [\n");
    for (i, r) in sweep.rows.iter().enumerate() {
        let sizes: Vec<String> = r.group_sizes.iter().map(usize::to_string).collect();
        let subsets: Vec<String> = r
            .collusion
            .iter()
            .map(|c| {
                let dist: Vec<String> = c
                    .distribution
                    .iter()
                    .map(|(size, count)| format!("[{size}, {count}]"))
                    .collect();
                format!(
                    "{{\"subset\": [{}], \"linkable_fraction\": {:.4}, \
                     \"linked_clients\": {}, \"mean_anonymity_set\": {:.4}, \
                     \"anonymity_distribution\": [{}]}}",
                    c.subset
                        .iter()
                        .map(usize::to_string)
                        .collect::<Vec<_>>()
                        .join(", "),
                    c.linkable_fraction,
                    c.linked_clients,
                    c.mean_anonymity_set,
                    dist.join(", ")
                )
            })
            .collect();
        out.push_str(&format!(
            "    {{\"layout\": \"{}\", \"hops\": {}, \"route_groups\": {}, \
             \"group_sizes\": [{}], \"mean_route_len\": {:.4}, \"round_seconds\": {:.6}, \
             \"aggregate_bit_identical\": true, \"unmix_bit_identical\": true,\n     \
             \"collusion\": [{}]}}{}\n",
            r.layout,
            r.hops,
            r.route_groups,
            sizes.join(", "),
            r.mean_route_len,
            r.round_seconds,
            subsets.join(", "),
            if i + 1 == sweep.rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetKind;

    fn sweep() -> TopologySweep {
        let setup = ExperimentSetup::at_scale(DatasetKind::Cifar10, ExperimentScale::Quick, 3);
        run(&setup, ExperimentScale::Quick, 8, &[2, 3]).unwrap()
    }

    #[test]
    fn sweep_covers_every_layout_hop_count_and_subset() {
        let sweep = sweep();
        assert_eq!(sweep.rows.len(), 6, "3 layouts x 2 hop counts");
        for r in &sweep.rows {
            assert_eq!(r.collusion.len(), 1 << r.hops);
            assert_eq!(r.group_sizes.iter().sum::<usize>(), 8);
            assert!(r.round_seconds > 0.0);
            assert!(r.mean_route_len >= 1.0 && r.mean_route_len <= r.hops as f64);
        }
        let linear = sweep.rows.iter().find(|r| r.layout == "linear").unwrap();
        assert_eq!(linear.route_groups, 1, "the chain is one route group");
        assert_eq!(linear.mean_route_len, linear.hops as f64);
    }

    #[test]
    fn linear_rows_reproduce_the_cascade_threat_model() {
        let sweep = sweep();
        for r in sweep.rows.iter().filter(|r| r.layout == "linear") {
            for c in &r.collusion {
                if c.subset.len() == r.hops {
                    assert_eq!(c.linked_clients, 8);
                    assert_eq!(c.mean_anonymity_set, 1.0);
                } else {
                    assert_eq!(c.linked_clients, 0, "proper subset {:?}", c.subset);
                    assert_eq!(c.mean_anonymity_set, 8.0);
                }
            }
        }
    }

    #[test]
    fn non_uniform_rows_expose_the_route_group_ceiling() {
        let sweep = sweep();
        // With nobody colluding, a client's anonymity set is exactly its
        // route group — so the no-collusion distribution must mirror the
        // group sizes.
        for r in &sweep.rows {
            let none = &r.collusion[0];
            assert!(none.subset.is_empty());
            let mut from_groups: Vec<usize> = r
                .group_sizes
                .iter()
                .flat_map(|&s| std::iter::repeat_n(s, s))
                .collect();
            from_groups.sort_unstable();
            let mut from_dist: Vec<usize> = none
                .distribution
                .iter()
                .flat_map(|&(size, count)| std::iter::repeat_n(size, count))
                .collect();
            from_dist.sort_unstable();
            assert_eq!(from_groups, from_dist, "{} at {} hops", r.layout, r.hops);
        }
    }

    #[test]
    fn json_artifact_is_well_formed_enough() {
        let sweep = sweep();
        let json = to_json(&sweep, 8);
        assert!(json.contains("\"topology\""));
        assert_eq!(json.matches("\"layout\"").count(), 6);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"anonymity_distribution\""));
        assert!(json.contains("\"aggregate_bit_identical\": true"));
    }
}
