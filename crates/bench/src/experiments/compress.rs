//! `eval compress` — the MIXN v2 quantized + sparsified update codec.
//!
//! Sweeps the three wire modes — lossless `f32`, dense `int8`
//! quantization, and `int8+topk` sparsification — and reports, per mode:
//! wire bytes per client per round and framing-amortized sustained
//! updates/s (both from the simulated-network load generator), and the
//! aggregate error a *real* padded cascade round accumulates against the
//! lossless baseline, taken as the worst case over the three layouts
//! (linear, stratified, free-route).
//!
//! The run fails rather than reporting nonsense. Size uniformity is
//! asserted on every layout: all sealed onions of a route — real clients
//! *and* hop-generated cover — must encode to the same length, because
//! per-layer envelope sizes are adversary-visible and a content-dependent
//! codec would fingerprint clients through the mix. The compressed gate
//! is the ISSUE budget: `int8+topk` must cut ingress bytes at least
//! [`MIN_REDUCTION`]x below `f32` and land under
//! [`MAX_COMPRESSED_BYTES`] at the reference model. Aggregate RMSE must
//! stay under the per-mode tolerance. All figures are virtual-time or
//! arithmetic derived, so `BENCH_compress.json` reproduces byte for byte
//! per seed and scale.

use crate::ExperimentScale;
use mixnn_cascade::{CascadeCoordinator, FailurePolicy, FreeRoute, LinearChain, StratifiedLayout};
use mixnn_core::codec::CompressionConfig;
use mixnn_core::InProcessLink;
use mixnn_enclave::AttestationService;
use mixnn_net::{run_load, FlushPolicy, LoadConfig};
use mixnn_nn::{LayerParams, ModelParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Minimum factor by which `int8+topk` must cut per-client wire bytes.
pub const MIN_REDUCTION: f64 = 4.0;

/// Ceiling on `int8+topk` wire bytes per client per round at the
/// reference model (the ISSUE budget; f32 is ~24 KB there).
pub const MAX_COMPRESSED_BYTES: f64 = 6_100.0;

/// Aggregate-RMSE tolerance for dense int8 on uniform[-1,1] updates:
/// one quantization step is 2/255 ≈ 0.008, and averaging over clients
/// only shrinks the error.
pub const DENSE_RMSE_TOLERANCE: f64 = 0.01;

/// Aggregate-RMSE tolerance for `int8+topk` (keep 256/1024): the codec
/// zeroes ~3/4 of each update's coordinates, so the aggregate of
/// uniform[-1,1] updates loses mass bounded by the dropped quartiles'
/// magnitude (|v| ≲ 0.75 · 1/√3 RMS on the dropped share).
pub const TOPK_RMSE_TOLERANCE: f64 = 0.2;

/// One wire mode's metrics. Everything derives from virtual time or
/// codec arithmetic, so rows are byte-identical across reruns of one
/// seed and scale.
#[derive(Debug, Clone)]
pub struct CompressRow {
    /// Codec mode name (`f32` / `int8` / `int8+topk`).
    pub mode: &'static str,
    /// Clients the load generator drove.
    pub clients: usize,
    /// Access-link wire bytes per client per round (framing included).
    pub bytes_on_wire_per_client: f64,
    /// `f32` bytes over this mode's bytes.
    pub reduction_vs_f32: f64,
    /// Updates sustained per virtual second under batched flushing.
    pub sustained_updates_per_sec: f64,
    /// Worst stripped-aggregate RMSE vs the lossless baseline over the
    /// layouts swept.
    pub rmse_vs_f32: f64,
    /// Worst per-coordinate absolute aggregate error over the layouts.
    pub max_abs_err_vs_f32: f64,
    /// The tolerance `rmse_vs_f32` was gated against.
    pub rmse_tolerance: f64,
    /// Layouts the accuracy + uniformity checks covered.
    pub layouts_checked: usize,
    /// Sealed onion length on the linear chain — one number because
    /// every client's (and every dummy's) onion must encode to it.
    pub uniform_onion_bytes: usize,
}

/// The three wire modes in report order (lossless baseline first).
pub fn modes() -> [CompressionConfig; 3] {
    [
        CompressionConfig::F32,
        CompressionConfig::Int8,
        CompressionConfig::int8_top_k(),
    ]
}

fn synthetic_updates(signature: &[usize], clients: usize, seed: u64) -> Vec<ModelParams> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..clients)
        .map(|_| {
            ModelParams::from_layers(
                signature
                    .iter()
                    .map(|&len| {
                        LayerParams::from_values(
                            (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect(),
                        )
                    })
                    .collect(),
            )
        })
        .collect()
}

/// RMSE and max-|err| between two aggregates of the same signature.
fn aggregate_error(a: &ModelParams, b: &ModelParams) -> (f64, f64) {
    let (xs, ys) = (a.flatten(), b.flatten());
    debug_assert_eq!(xs.len(), ys.len());
    let mut sum_sq = 0.0f64;
    let mut max_abs = 0.0f64;
    for (x, y) in xs.iter().zip(&ys) {
        let d = (*x as f64) - (*y as f64);
        sum_sq += d * d;
        max_abs = max_abs.max(d.abs());
    }
    ((sum_sq / xs.len() as f64).sqrt(), max_abs)
}

/// Drives one padded round per layout under `compression`, returning the
/// worst (RMSE, max-|err|) of the stripped aggregates vs `baseline` and
/// the uniform onion length measured on the linear chain.
///
/// Asserts on every layout that all sealed onions of the first route —
/// the real clients' and fresh hop-generated cover updates' alike —
/// encode to one length.
fn layouts_accuracy_and_uniformity(
    signature: &[usize],
    updates: &[ModelParams],
    baseline: &ModelParams,
    compression: CompressionConfig,
    seed: u64,
) -> Result<(f64, f64, usize, usize), String> {
    let mut worst_rmse = 0.0f64;
    let mut worst_abs = 0.0f64;
    let mut linear_onion = 0usize;
    let clients = updates.len();
    // Three layouts: the classic chain, two strata of two hops, and
    // per-client free routes of 2–3 hops out of four.
    type LayoutFactory = Box<dyn Fn() -> Box<dyn mixnn_cascade::CascadeTopology>>;
    let layouts: Vec<(&str, LayoutFactory)> = vec![
        ("linear", Box::new(|| Box::new(LinearChain::new(3)))),
        (
            "stratified",
            Box::new(move || Box::new(StratifiedLayout::evenly(4, 2, seed))),
        ),
        (
            "free-route",
            Box::new(move || Box::new(FreeRoute::new(4, 2, 3, seed))),
        ),
    ];
    let layout_count = layouts.len();
    for (name, make) in layouts {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let service = AttestationService::new(&mut rng);
        let mut cascade = CascadeCoordinator::with_topology(
            signature.to_vec(),
            make(),
            seed,
            FailurePolicy::Abort,
            &service,
            &mut rng,
        )
        .map_err(|e| format!("{name}: {e}"))?;
        cascade.set_compression(compression);

        // Pad past the client count so hop-generated cover actually
        // rides the round, then strip it at the server boundary.
        let floor = clients + 2;
        let padded = cascade
            .run_padded_round_over(updates, floor, &mut rng, &mut InProcessLink)
            .map_err(|e| format!("{name}: {e}"))?;
        if padded.dummies() == 0 {
            return Err(format!("{name}: floor {floor} injected no cover updates"));
        }
        let stripped = padded
            .server_outputs()
            .map_err(|e| format!("{name}: {e}"))?;
        if stripped.len() != clients {
            return Err(format!(
                "{name}: stripped {} outputs, expected {clients}",
                stripped.len()
            ));
        }
        let aggregate =
            ModelParams::mean(&stripped).ok_or_else(|| format!("{name}: empty round aggregate"))?;
        let (rmse, max_abs) = aggregate_error(baseline, &aggregate);
        worst_rmse = worst_rmse.max(rmse);
        worst_abs = worst_abs.max(max_abs);

        // Size uniformity on the first route: every real onion and every
        // hop-generated dummy must seal to one length, or envelope sizes
        // link clients through the mix.
        let client = cascade
            .client_for_slot(0, &service)
            .map_err(|e| format!("{name}: {e}"))?;
        debug_assert_eq!(client.compression(), compression);
        let mut lens = std::collections::BTreeSet::new();
        for (i, update) in updates.iter().enumerate() {
            let onion = client
                .seal_update(update, &mut rng)
                .map_err(|e| format!("{name}: sealing client {i}: {e}"))?;
            lens.insert(onion.len());
        }
        for nonce in 0..3u64 {
            let dummy = cascade.hops()[0].generate_dummy(signature, nonce);
            let onion = client
                .seal_update(&dummy, &mut rng)
                .map_err(|e| format!("{name}: sealing dummy {nonce}: {e}"))?;
            lens.insert(onion.len());
        }
        if lens.len() != 1 {
            return Err(format!(
                "{name}: onion sizes leak content under {}: {lens:?}",
                compression.name()
            ));
        }
        if name == "linear" {
            linear_onion = lens.into_iter().next().unwrap_or(0);
        }
    }
    Ok((worst_rmse, worst_abs, layout_count, linear_onion))
}

/// Runs the compression experiment at `scale`, returning one row per
/// wire mode (lossless baseline first).
///
/// # Errors
///
/// Fails when a round errors, the stripped aggregate strays past the
/// mode's RMSE tolerance, onion sizes differ within a route (real or
/// dummy), or `int8+topk` misses the [`MIN_REDUCTION`]x /
/// [`MAX_COMPRESSED_BYTES`] budget.
pub fn run(scale: ExperimentScale, seed: u64) -> Result<Vec<CompressRow>, String> {
    // Accuracy rounds use the reference signature at both scales — the
    // tolerances are stated for it — and fewer clients under --quick.
    let signature = vec![2048usize, 2048, 1024, 512, 130];
    let clients = match scale {
        ExperimentScale::Paper => 24,
        ExperimentScale::Quick => 8,
    };
    let updates = synthetic_updates(&signature, clients, seed);
    let baseline = ModelParams::mean(&updates).ok_or_else(|| "empty update batch".to_string())?;

    let mut rows = Vec::with_capacity(3);
    let mut f32_bytes = 0.0f64;
    for compression in modes() {
        // Wire cost: the simulated-network load generator, batched
        // flushing (the deployment configuration).
        let mut cfg = match scale {
            ExperimentScale::Paper => LoadConfig::paper(10_000, FlushPolicy::Batched),
            ExperimentScale::Quick => LoadConfig::quick(FlushPolicy::Batched),
        };
        cfg.seed = seed;
        cfg.compression = compression;
        let load = run_load(&cfg).map_err(|e| e.to_string())?;
        if rows.is_empty() {
            f32_bytes = load.bytes_on_wire_per_client;
        }

        let tolerance = match compression {
            CompressionConfig::F32 => 0.0,
            CompressionConfig::Int8 => DENSE_RMSE_TOLERANCE,
            CompressionConfig::Int8TopK { .. } => TOPK_RMSE_TOLERANCE,
        };
        let (rmse, max_abs, layouts_checked, uniform_onion_bytes) =
            layouts_accuracy_and_uniformity(&signature, &updates, &baseline, compression, seed)?;
        if rmse > tolerance {
            return Err(format!(
                "{} aggregate RMSE {rmse:.6} exceeds the {tolerance} tolerance",
                compression.name()
            ));
        }
        rows.push(CompressRow {
            mode: compression.name(),
            clients: load.clients,
            bytes_on_wire_per_client: load.bytes_on_wire_per_client,
            reduction_vs_f32: f32_bytes / load.bytes_on_wire_per_client,
            sustained_updates_per_sec: load.sustained_updates_per_sec,
            rmse_vs_f32: rmse,
            max_abs_err_vs_f32: max_abs,
            rmse_tolerance: tolerance,
            layouts_checked,
            uniform_onion_bytes,
        });
    }

    let topk = &rows[2];
    if topk.reduction_vs_f32 < MIN_REDUCTION {
        return Err(format!(
            "int8+topk cut wire bytes only {:.2}x (budget: ≥{MIN_REDUCTION}x)",
            topk.reduction_vs_f32
        ));
    }
    if topk.bytes_on_wire_per_client > MAX_COMPRESSED_BYTES {
        return Err(format!(
            "int8+topk spends {:.0} B/client/round (budget: ≤{MAX_COMPRESSED_BYTES:.0} B)",
            topk.bytes_on_wire_per_client
        ));
    }
    Ok(rows)
}

/// Formats compress rows for the report table.
pub fn rows(results: &[CompressRow]) -> Vec<Vec<String>> {
    results
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                format!("{:.0}", r.bytes_on_wire_per_client),
                format!("{:.2}x", r.reduction_vs_f32),
                format!("{:.1}", r.sustained_updates_per_sec),
                format!("{:.6}", r.rmse_vs_f32),
                format!("{:.6}", r.max_abs_err_vs_f32),
                format!("{}", r.rmse_tolerance),
                r.uniform_onion_bytes.to_string(),
            ]
        })
        .collect()
}

/// Serializes the rows as the `BENCH_compress.json` artifact. Only
/// virtual-time and arithmetic metrics appear, so the artifact is
/// reproducible byte for byte from one seed and scale.
pub fn to_json(results: &[CompressRow]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"compress\",\n");
    out.push_str(&format!(
        "  \"min_reduction\": {MIN_REDUCTION:.1},\n  \"max_compressed_bytes\": {MAX_COMPRESSED_BYTES:.0},\n  \"rows\": [\n"
    ));
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"clients\": {}, \
             \"bytes_on_wire_per_client\": {:.2}, \"reduction_vs_f32\": {:.4}, \
             \"sustained_updates_per_sec\": {:.2}, \"rmse_vs_f32\": {:.8}, \
             \"max_abs_err_vs_f32\": {:.8}, \"rmse_tolerance\": {}, \
             \"layouts_checked\": {}, \"uniform_onion_bytes\": {}}}{}\n",
            r.mode,
            r.clients,
            r.bytes_on_wire_per_client,
            r.reduction_vs_f32,
            r.sustained_updates_per_sec,
            r.rmse_vs_f32,
            r.max_abs_err_vs_f32,
            r.rmse_tolerance,
            r.layouts_checked,
            r.uniform_onion_bytes,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_every_gate_and_orders_modes() {
        let rows = run(ExperimentScale::Quick, 42).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].mode, "f32");
        assert_eq!(rows[1].mode, "int8");
        assert_eq!(rows[2].mode, "int8+topk");
        // Lossless baseline: exactly zero aggregate error.
        assert_eq!(rows[0].rmse_vs_f32, 0.0);
        assert_eq!(rows[0].reduction_vs_f32, 1.0);
        // Monotone byte reduction, topk past the ISSUE budget.
        assert!(rows[1].bytes_on_wire_per_client < rows[0].bytes_on_wire_per_client);
        assert!(rows[2].bytes_on_wire_per_client < rows[1].bytes_on_wire_per_client);
        assert!(rows[2].reduction_vs_f32 >= MIN_REDUCTION);
        assert!(rows[2].bytes_on_wire_per_client <= MAX_COMPRESSED_BYTES);
        // Lossy modes stay within their stated tolerances but are not
        // bit-exact.
        assert!(rows[1].rmse_vs_f32 > 0.0 && rows[1].rmse_vs_f32 <= DENSE_RMSE_TOLERANCE);
        assert!(rows[2].rmse_vs_f32 > 0.0 && rows[2].rmse_vs_f32 <= TOPK_RMSE_TOLERANCE);
        for r in &rows {
            assert_eq!(r.layouts_checked, 3);
            assert!(r.uniform_onion_bytes > 0);
        }
        // Compressed onions are smaller on the wire too (seals included).
        assert!(rows[2].uniform_onion_bytes < rows[0].uniform_onion_bytes);
    }

    #[test]
    fn artifact_is_deterministic_per_seed() {
        let a = run(ExperimentScale::Quick, 7).unwrap();
        let b = run(ExperimentScale::Quick, 7).unwrap();
        assert_eq!(to_json(&a), to_json(&b));
    }

    #[test]
    fn json_carries_the_budget_and_every_mode() {
        let rows = run(ExperimentScale::Quick, 42).unwrap();
        let json = to_json(&rows);
        for key in [
            "min_reduction",
            "max_compressed_bytes",
            "bytes_on_wire_per_client",
            "reduction_vs_f32",
            "rmse_vs_f32",
            "max_abs_err_vs_f32",
            "uniform_onion_bytes",
            "\"f32\"",
            "\"int8\"",
            "\"int8+topk\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }
}
