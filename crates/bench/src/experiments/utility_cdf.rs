//! **Figure 6** — cumulative distribution over participants of the global
//! model's accuracy on each participant's own held-out data, at a fixed
//! round (the paper uses round 6).
//!
//! Expected shape (§6.2): the noisy-gradient CDF sits to the left of
//! MixNN's for every dataset (most participants lose accuracy to the
//! noise; the paper reports population means of 0.56 vs 0.68).

use crate::{Defense, ExperimentSetup};
use mixnn_attacks::AttackError;
use mixnn_fl::FlSimulation;

/// One CDF point: fraction of participants with accuracy ≤ `accuracy`.
#[derive(Debug, Clone, PartialEq)]
pub struct CdfPoint {
    /// Dataset name.
    pub dataset: String,
    /// Defense label.
    pub defense: String,
    /// Per-participant accuracy value.
    pub accuracy: f32,
    /// Fraction of participants at or below this accuracy.
    pub fraction: f32,
}

/// Per-defense population mean accuracy (the summary §6.2 quotes).
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationMean {
    /// Defense label.
    pub defense: String,
    /// Mean per-participant accuracy.
    pub mean_accuracy: f32,
}

/// Runs the Fig. 6 experiment: train `at_round` rounds under each defense,
/// then evaluate the global model on every participant's local test set.
///
/// # Errors
///
/// Propagates data-generation and FL failures.
pub fn run(
    setup: &ExperimentSetup,
    at_round: usize,
) -> Result<(Vec<CdfPoint>, Vec<PopulationMean>), AttackError> {
    let rounds = at_round.clamp(1, setup.fl.rounds);
    let mut points = Vec::new();
    let mut means = Vec::new();

    for defense in Defense::lineup(setup.noise_sigma) {
        let population = setup.spec.generate()?;
        let mut sim = FlSimulation::new(setup.template(), setup.fl, &population);
        let mut transport = defense.make_transport(setup.fl.seed);
        for _ in 0..rounds {
            sim.run_round(transport.as_mut())?;
        }
        let mut accuracies: Vec<f32> = sim
            .evaluate_per_participant(&population)?
            .into_iter()
            .map(|(_, e)| e.accuracy)
            .collect();
        means.push(PopulationMean {
            defense: defense.label().to_string(),
            mean_accuracy: crate::report::mean(&accuracies),
        });
        accuracies.sort_by(f32::total_cmp);
        let n = accuracies.len() as f32;
        for (i, acc) in accuracies.iter().enumerate() {
            points.push(CdfPoint {
                dataset: setup.kind.name().to_string(),
                defense: defense.label().to_string(),
                accuracy: *acc,
                fraction: (i + 1) as f32 / n,
            });
        }
    }
    Ok((points, means))
}

/// Formats CDF points as table rows.
pub fn rows(points: &[CdfPoint]) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|p| {
            vec![
                p.dataset.clone(),
                p.defense.clone(),
                crate::report::fmt3(p.accuracy),
                crate::report::fmt3(p.fraction),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetKind, ExperimentScale};

    #[test]
    fn cdf_is_monotone_per_defense() {
        let setup = ExperimentSetup::at_scale(DatasetKind::MotionSense, ExperimentScale::Quick, 5);
        let (points, means) = run(&setup, 2).unwrap();
        assert_eq!(means.len(), 3);
        for defense in ["classic-fl", "noisy-gradient", "mixnn"] {
            let series: Vec<&CdfPoint> = points.iter().filter(|p| p.defense == defense).collect();
            assert_eq!(series.len(), setup.spec.num_participants());
            assert!(series
                .windows(2)
                .all(|w| { w[0].accuracy <= w[1].accuracy && w[0].fraction <= w[1].fraction }));
            assert!((series.last().unwrap().fraction - 1.0).abs() < 1e-6);
        }
    }
}
