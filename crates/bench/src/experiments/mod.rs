//! One module per paper artifact. See the crate docs for the mapping.

pub mod background;
pub mod cascade;
pub mod compress;
pub mod inference;
pub mod load;
pub mod pooled;
pub mod robustness;
pub mod sysperf;
pub mod throughput;
pub mod topology;
pub mod utility;
pub mod utility_cdf;
