//! **Figure 5** — model accuracy per learning round, for classic FL,
//! MixNN and the noisy-gradient baseline.
//!
//! Expected shape (paper §6.2): classic FL and MixNN trace **the same
//! curve** (aggregation equivalence), while noisy gradient sits ~10 points
//! lower and converges more slowly.

use crate::{Defense, ExperimentSetup};
use mixnn_attacks::AttackError;
use mixnn_fl::FlSimulation;

/// One (defense, round) point of the Fig. 5 curves, averaged over repeats.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilityPoint {
    /// Dataset name.
    pub dataset: String,
    /// Defense label.
    pub defense: String,
    /// Learning round (1-based, matching the paper's x-axis).
    pub round: usize,
    /// Mean global-model accuracy on the balanced test set.
    pub accuracy: f32,
    /// Mean test loss.
    pub loss: f32,
}

/// Runs the Fig. 5 experiment for one dataset: every defense, `repeats`
/// seeds, accuracy measured after every round.
///
/// # Errors
///
/// Propagates data-generation and FL failures.
pub fn run(setup: &ExperimentSetup, repeats: usize) -> Result<Vec<UtilityPoint>, AttackError> {
    let defenses = Defense::lineup(setup.noise_sigma);
    let rounds = setup.fl.rounds;
    let mut points = Vec::new();

    for defense in defenses {
        // accumulate per-round sums over repeats
        let mut acc_sum = vec![0.0f32; rounds];
        let mut loss_sum = vec![0.0f32; rounds];
        for rep in 0..repeats.max(1) {
            let seed = setup.fl.seed.wrapping_add(1000 * rep as u64);
            let mut spec = setup.spec.clone();
            spec.seed = seed;
            let population = spec.generate()?;
            let mut fl_cfg = setup.fl;
            fl_cfg.seed = seed;
            let mut setup_seeded = setup.clone();
            setup_seeded.fl = fl_cfg;
            let template = setup_seeded.template();
            let mut sim = FlSimulation::new(template, fl_cfg, &population);
            let mut transport = defense.make_transport(seed);
            for round in 0..rounds {
                sim.run_round(transport.as_mut())?;
                let eval = sim.evaluate_global(population.global_test())?;
                acc_sum[round] += eval.accuracy;
                loss_sum[round] += eval.loss;
            }
        }
        let n = repeats.max(1) as f32;
        for round in 0..rounds {
            points.push(UtilityPoint {
                dataset: setup.kind.name().to_string(),
                defense: defense.label().to_string(),
                round: round + 1,
                accuracy: acc_sum[round] / n,
                loss: loss_sum[round] / n,
            });
        }
    }
    Ok(points)
}

/// Formats Fig. 5 points as table rows.
pub fn rows(points: &[UtilityPoint]) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|p| {
            vec![
                p.dataset.clone(),
                p.defense.clone(),
                p.round.to_string(),
                crate::report::fmt3(p.accuracy),
                crate::report::fmt3(p.loss),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetKind, ExperimentScale};

    #[test]
    fn quick_run_produces_full_grid() {
        let setup = ExperimentSetup::at_scale(DatasetKind::Lfw, ExperimentScale::Quick, 3);
        let points = run(&setup, 1).unwrap();
        // 3 defenses × rounds points.
        assert_eq!(points.len(), 3 * setup.fl.rounds);
        for p in &points {
            assert!((0.0..=1.0).contains(&p.accuracy), "{p:?}");
            assert!(p.loss.is_finite());
        }
        // Classic FL and MixNN must produce identical curves (equivalence).
        let classic: Vec<f32> = points
            .iter()
            .filter(|p| p.defense == "classic-fl")
            .map(|p| p.accuracy)
            .collect();
        let mixnn: Vec<f32> = points
            .iter()
            .filter(|p| p.defense == "mixnn")
            .map(|p| p.accuracy)
            .collect();
        assert_eq!(classic, mixnn, "MixNN must not change utility");
    }
}
