//! **§6.5** — system performance of the proxy: per-update processing cost
//! (decrypt + store), mixing cost and enclave memory consumption, for the
//! 2-conv and 3-conv models.
//!
//! Expected shape: decryption dominates the per-update cost, mixing is an
//! order of magnitude cheaper, and both cost and memory grow with model
//! size (the paper measures 0.19 s / 26.9 MB for the 2-conv model vs
//! 0.22 s / 51.3 MB for the 3-conv one on its TensorFlow-scale networks).

use crate::ExperimentSetup;
use mixnn_attacks::AttackError;
use mixnn_core::{codec, MixingStrategy, MixnnProxy, MixnnProxyConfig};
use mixnn_crypto::SealedBox;
use mixnn_enclave::AttestationService;
use mixnn_nn::{zoo, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Cost breakdown for one model, §6.5 style.
#[derive(Debug, Clone, PartialEq)]
pub struct SysperfRow {
    /// Model description.
    pub model: String,
    /// Trainable parameters.
    pub parameters: usize,
    /// Serialized update size in bytes.
    pub update_bytes: usize,
    /// Mean per-update decryption time (seconds).
    pub decrypt_seconds: f64,
    /// Mean per-update decode+store time (seconds).
    pub store_seconds: f64,
    /// Mean per-update total processing time (seconds) — the paper's
    /// "0.19 s" metric.
    pub process_seconds: f64,
    /// Mean per-update mixing time (seconds).
    pub mix_seconds: f64,
    /// Enclave memory high-water mark in bytes while the round was
    /// buffered.
    pub epc_high_water: usize,
}

/// Larger model widths so the sysperf numbers exercise meaningful data
/// volumes (the experiment's point is the *scaling*, not the tiny training
/// models used by the accuracy figures).
fn models(setup: &ExperimentSetup) -> Vec<(String, Sequential)> {
    let mut rng = StdRng::seed_from_u64(setup.fl.seed ^ 0x5f5f);
    let input = zoo::InputSpec::new(
        setup.spec.dims.channels,
        setup.spec.dims.height,
        setup.spec.dims.width,
    );
    let classes = setup.spec.num_classes;
    vec![
        (
            "conv2+fc3".to_string(),
            zoo::conv2_fc3(input, classes, 16, 256, &mut rng),
        ),
        (
            "conv3+fc3".to_string(),
            zoo::conv3_fc3(input, classes, 16, 256, &mut rng),
        ),
    ]
}

/// Runs the §6.5 measurement: `clients` sealed updates through the full
/// encrypted pipeline (decrypt → store → batch mix) for each model.
///
/// # Errors
///
/// Propagates proxy failures as [`AttackError::Fl`]-wrapped transport
/// errors.
pub fn run(setup: &ExperimentSetup, clients: usize) -> Result<Vec<SysperfRow>, AttackError> {
    let mut rows = Vec::new();
    for (name, template) in models(setup) {
        let mut rng = StdRng::seed_from_u64(setup.fl.seed ^ 0xbe9c);
        let service = AttestationService::new(&mut rng);
        let mut proxy = MixnnProxy::launch(
            MixnnProxyConfig {
                strategy: MixingStrategy::Batch,
                expected_signature: template.signature(),
                seed: setup.fl.seed,
                ..MixnnProxyConfig::default()
            },
            &service,
            &mut rng,
        );

        // Synthesize per-client updates: same architecture, perturbed
        // weights (content does not affect cost; size does).
        let base = template.params();
        let updates: Vec<Vec<u8>> = (0..clients)
            .map(|_| {
                let params = base.perturbed(0.01, &mut rng);
                let bytes = codec::encode_params(&params);
                SealedBox::seal(&bytes, proxy.public_key(), &mut rng).unwrap()
            })
            .collect();
        let update_bytes = codec::encoded_len(&template.signature());

        for sealed in &updates {
            proxy
                .submit_encrypted(sealed)
                .map_err(mixnn_fl::FlError::from)?;
        }
        let high_water = proxy.memory_stats().high_water;
        let mixed = proxy.mix_batch().map_err(mixnn_fl::FlError::from)?;
        assert_eq!(mixed.len(), clients);

        let stats = proxy.stats();
        rows.push(SysperfRow {
            model: name,
            parameters: template.num_parameters(),
            update_bytes,
            decrypt_seconds: stats.mean_decrypt_seconds(),
            store_seconds: stats.mean_store_seconds(),
            process_seconds: stats.mean_process_seconds(),
            mix_seconds: stats.mix_seconds / clients as f64,
            epc_high_water: high_water,
        });
    }
    Ok(rows)
}

/// Formats §6.5 rows for the report table.
pub fn rows(results: &[SysperfRow]) -> Vec<Vec<String>> {
    results
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.parameters.to_string(),
                crate::report::fmt_mb(r.update_bytes),
                crate::report::fmt_ms(r.decrypt_seconds),
                crate::report::fmt_ms(r.store_seconds),
                crate::report::fmt_ms(r.process_seconds),
                crate::report::fmt_ms(r.mix_seconds),
                crate::report::fmt_mb(r.epc_high_water),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetKind, ExperimentScale};

    #[test]
    fn pipeline_measures_both_models() {
        let setup = ExperimentSetup::at_scale(DatasetKind::Cifar10, ExperimentScale::Quick, 1);
        let results = run(&setup, 4).unwrap();
        assert_eq!(results.len(), 2);
        // The 3-conv model must be larger and cost at least as much memory.
        assert!(results[1].parameters > results[0].parameters);
        assert!(results[1].epc_high_water >= results[0].epc_high_water);
        for r in &results {
            assert!(r.process_seconds >= r.decrypt_seconds);
            assert!(r.decrypt_seconds > 0.0);
            assert!(r.update_bytes > 0);
        }
    }
}
