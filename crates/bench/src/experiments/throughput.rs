//! Ingest throughput of the parallel proxy pipeline.
//!
//! §6.5 shows decryption dominating the proxy's per-update budget; the
//! parallel ingest front-end exists to buy that time back with worker
//! threads. This experiment measures it: `C` pre-sealed updates pushed
//! through the full encrypted pipeline (decrypt → store → batch mix) at
//! several ingest worker counts, reporting updates/second and the speedup
//! over the sequential front-end. Every configuration is verified to
//! produce **bit-identical** mixed outputs — parallelism is a throughput
//! knob, never a semantics knob.
//!
//! Results are also dumped to `BENCH_throughput.json` so speedups land in
//! a machine-readable artifact alongside the criterion benches.

use crate::report::Percentiles;
use crate::ExperimentSetup;
use mixnn_attacks::AttackError;
use mixnn_core::{
    codec, MixingStrategy, MixnnProxy, MixnnProxyConfig, ParallelIngest, Parallelism,
};
use mixnn_crypto::SealedBox;
use mixnn_enclave::AttestationService;
use mixnn_nn::{LayerParams, ModelParams};
use mixnn_telemetry::{Registry, Telemetry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// One measured (clients, workers) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRow {
    /// Updates ingested in the round (the paper's `C`).
    pub clients: usize,
    /// Ingest worker threads used.
    pub workers: usize,
    /// Per-layer mix shard tasks used.
    pub mix_shards: usize,
    /// Wall-clock seconds for the whole ingest (decrypt + store).
    pub ingest_seconds: f64,
    /// Wall-clock seconds for the batch mix.
    pub mix_seconds: f64,
    /// Accepted updates per second of ingest wall-clock.
    pub updates_per_sec: f64,
    /// Ingest speedup over the 1-worker row of the same client count.
    pub speedup_vs_sequential: f64,
}

/// The worker counts swept by default (1 is the sequential baseline).
pub const DEFAULT_WORKERS: [usize; 4] = [1, 2, 4, 8];

/// Ceiling on acceptable telemetry hook cost, as a fraction of the
/// no-op-registry wall-clock — `eval throughput` fails when
/// [`measure_overhead`] reports more.
pub const MAX_TELEMETRY_OVERHEAD: f64 = 0.02;

/// The round sizes swept by default.
pub const DEFAULT_CLIENTS: [usize; 3] = [32, 128, 512];

/// A synthetic multi-layer update sized so decryption does §6.5-realistic
/// work without making the sweep take minutes.
fn synth_update(signature: &[usize], seed: u64) -> ModelParams {
    let mut rng = StdRng::seed_from_u64(seed);
    ModelParams::from_layers(
        signature
            .iter()
            .map(|&len| {
                LayerParams::from_values((0..len).map(|_| rng.gen_range(-1.0..1.0)).collect())
            })
            .collect(),
    )
}

fn launch(signature: Vec<usize>, seed: u64, parallelism: Parallelism) -> MixnnProxy {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7a31);
    let service = AttestationService::new(&mut rng);
    MixnnProxy::launch(
        MixnnProxyConfig {
            strategy: MixingStrategy::Batch,
            expected_signature: signature,
            seed,
            parallelism,
            ..MixnnProxyConfig::default()
        },
        &service,
        &mut rng,
    )
}

/// Runs the ingest-throughput sweep.
///
/// For each client count, the same `C` sealed updates go through a fresh
/// proxy at each worker count; the mixed outputs of every configuration
/// are asserted identical to the sequential ones (fixed seeds), so the
/// reported speedups are for provably equivalent work. Each cell is
/// measured `repeats` times (fresh proxy per repetition) and the
/// reported seconds are the median ([`Percentiles::from_samples`]), so
/// `--repeats` suppresses scheduler noise instead of averaging it in.
///
/// # Errors
///
/// Propagates proxy failures as [`AttackError::Fl`]-wrapped transport
/// errors.
pub fn run(
    setup: &ExperimentSetup,
    client_counts: &[usize],
    worker_counts: &[usize],
    repeats: usize,
) -> Result<Vec<ThroughputRow>, AttackError> {
    run_with(
        setup,
        client_counts,
        worker_counts,
        repeats,
        &mixnn_telemetry::noop(),
    )
}

/// [`run`] with a telemetry registry attached to every timed proxy, so
/// the sweep's ingest/mix counters, batch-size distribution and span
/// timings accumulate into the shared registry `eval` exports.
///
/// # Errors
///
/// Same conditions as [`run`].
pub fn run_with(
    setup: &ExperimentSetup,
    client_counts: &[usize],
    worker_counts: &[usize],
    repeats: usize,
    telemetry: &Telemetry,
) -> Result<Vec<ThroughputRow>, AttackError> {
    // Five layers, ~8k parameters: the §6.5 cost shape (decrypt-dominated)
    // at a size where C=512 stays a smoke-runnable sweep.
    let signature: Vec<usize> = vec![2048, 2048, 2048, 1024, 512];
    let seed = setup.fl.seed;
    let mut rows = Vec::new();
    if worker_counts.is_empty() {
        return Ok(rows);
    }

    for &clients in client_counts {
        // Seal once per client count; every worker configuration ingests
        // the same ciphertexts.
        let reference = launch(signature.clone(), seed, Parallelism::sequential());
        let mut seal_rng = StdRng::seed_from_u64(seed ^ 0x11);
        let sealed: Vec<Vec<u8>> = (0..clients)
            .map(|i| {
                let p = synth_update(&signature, seed ^ (i as u64) << 8);
                SealedBox::seal(
                    &codec::encode_params(&p),
                    reference.public_key(),
                    &mut seal_rng,
                )
                .expect("enclave keys are never low-order")
            })
            .collect();

        // One untimed warm-up pass so the first timed configuration is not
        // penalized with cold caches and first-touch page faults. It runs
        // fully sequentially, so its mixed outputs double as the
        // sequential reference every configuration must reproduce.
        let sequential_mixed = {
            let mut warm = launch(signature.clone(), seed, Parallelism::sequential());
            for r in ParallelIngest::new(1).submit_all(&mut warm, &sealed) {
                r.map_err(mixnn_fl::FlError::from)?;
            }
            warm.mix_batch().map_err(mixnn_fl::FlError::from)?
        };

        let mut client_rows = Vec::with_capacity(worker_counts.len());
        for &workers in worker_counts {
            let parallelism = Parallelism {
                ingest_workers: workers,
                mix_shards: workers,
                ..Parallelism::sequential()
            };
            let mut ingest_samples = Vec::with_capacity(repeats.max(1));
            let mut mix_samples = Vec::with_capacity(repeats.max(1));
            let mut stats = None;
            for _ in 0..repeats.max(1) {
                let mut proxy = launch(signature.clone(), seed, parallelism);
                proxy.attach_telemetry(telemetry.clone());
                let ingest = ParallelIngest::new(workers);

                let t0 = Instant::now();
                let results = ingest.submit_all(&mut proxy, &sealed);
                ingest_samples.push(t0.elapsed().as_secs_f64());
                for r in results {
                    r.map_err(mixnn_fl::FlError::from)?;
                }

                let t1 = Instant::now();
                let mixed = proxy.mix_batch().map_err(mixnn_fl::FlError::from)?;
                mix_samples.push(t1.elapsed().as_secs_f64());

                assert_eq!(
                    sequential_mixed, mixed,
                    "parallel pipeline diverged at {workers} workers"
                );
                stats = Some(proxy.stats());
            }
            let ingest_seconds = Percentiles::from_samples(&ingest_samples).p50;
            let mix_seconds = Percentiles::from_samples(&mix_samples).p50;
            let stats = stats.expect("at least one repetition ran");
            client_rows.push(ThroughputRow {
                clients,
                workers,
                mix_shards: workers,
                ingest_seconds,
                mix_seconds,
                updates_per_sec: stats.throughput_updates_per_sec(ingest_seconds),
                speedup_vs_sequential: 1.0, // filled in below
            });
        }
        // The speedup baseline is the workers == 1 row when the sweep has
        // one; a sweep without it falls back to its first row (and the
        // column then reads "vs the slowest swept config", not "vs
        // sequential").
        let baseline = client_rows
            .iter()
            .find(|r| r.workers == 1)
            .unwrap_or(&client_rows[0])
            .ingest_seconds;
        for row in &mut client_rows {
            row.speedup_vs_sequential = if row.ingest_seconds > 0.0 {
                baseline / row.ingest_seconds
            } else {
                1.0
            };
        }
        rows.extend(client_rows);
    }
    Ok(rows)
}

/// Telemetry hook cost on the proxy hot path, measured honestly: the
/// same sealed batch driven through a proxy with a live registry
/// attached and through one left on the disabled no-op registry,
/// reporting the **minimum** over the repeats of each (min-of-repeats
/// compares best-case against best-case, which is the fair comparison
/// for a fixed workload under scheduler noise).
#[derive(Debug, Clone, Copy)]
pub struct OverheadReport {
    /// Updates per timed pass.
    pub clients: usize,
    /// Repetitions per arm.
    pub repeats: usize,
    /// Best ingest+mix wall-clock with a live registry, seconds.
    pub enabled_seconds: f64,
    /// Best ingest+mix wall-clock with the no-op registry, seconds.
    pub noop_seconds: f64,
    /// `(enabled - noop) / noop`; may be slightly negative under noise.
    pub overhead_fraction: f64,
}

/// Measures the cost of leaving telemetry hooks enabled on the encrypted
/// ingest + mix pipeline (sequential, so nothing but the hooks differs
/// between the arms). The two arms alternate repetition by repetition so
/// they share cache and thermal conditions.
///
/// # Errors
///
/// Propagates proxy failures as [`AttackError::Fl`]-wrapped transport
/// errors.
pub fn measure_overhead(
    seed: u64,
    clients: usize,
    repeats: usize,
) -> Result<OverheadReport, AttackError> {
    let signature: Vec<usize> = vec![2048, 2048, 2048, 1024, 512];
    let reference = launch(signature.clone(), seed, Parallelism::sequential());
    let mut seal_rng = StdRng::seed_from_u64(seed ^ 0x11);
    let sealed: Vec<Vec<u8>> = (0..clients)
        .map(|i| {
            let p = synth_update(&signature, seed ^ (i as u64) << 8);
            SealedBox::seal(
                &codec::encode_params(&p),
                reference.public_key(),
                &mut seal_rng,
            )
            .expect("enclave keys are never low-order")
        })
        .collect();

    let pass = |telemetry: Option<Telemetry>| -> Result<f64, AttackError> {
        let mut proxy = launch(signature.clone(), seed, Parallelism::sequential());
        if let Some(t) = telemetry {
            proxy.attach_telemetry(t);
        }
        let t0 = Instant::now();
        for r in ParallelIngest::new(1).submit_all(&mut proxy, &sealed) {
            r.map_err(mixnn_fl::FlError::from)?;
        }
        proxy.mix_batch().map_err(mixnn_fl::FlError::from)?;
        Ok(t0.elapsed().as_secs_f64())
    };

    let repeats = repeats.max(1);
    let mut noop_seconds = f64::INFINITY;
    let mut enabled_seconds = f64::INFINITY;
    for _ in 0..repeats {
        noop_seconds = noop_seconds.min(pass(None)?);
        enabled_seconds = enabled_seconds.min(pass(Some(Registry::new().shared()))?);
    }
    Ok(OverheadReport {
        clients,
        repeats,
        enabled_seconds,
        noop_seconds,
        overhead_fraction: (enabled_seconds - noop_seconds) / noop_seconds.max(f64::MIN_POSITIVE),
    })
}

/// Formats throughput rows for the report table.
pub fn rows(results: &[ThroughputRow]) -> Vec<Vec<String>> {
    results
        .iter()
        .map(|r| {
            vec![
                r.clients.to_string(),
                r.workers.to_string(),
                crate::report::fmt_ms(r.ingest_seconds),
                crate::report::fmt_ms(r.mix_seconds),
                format!("{:.1}", r.updates_per_sec),
                format!("{:.2}x", r.speedup_vs_sequential),
            ]
        })
        .collect()
}

/// Hardware threads available to the sweep. Worker counts beyond this are
/// still *correct* (determinism is verified) but cannot speed anything up;
/// the JSON artifact records it so speedups are interpreted against the
/// right ceiling.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Serializes throughput rows as a JSON artifact (`BENCH_throughput.json`
/// by convention) — hand-rolled because the offline serde shim does not
/// serialize.
pub fn to_json(results: &[ThroughputRow]) -> String {
    let mut out = format!(
        "{{\n  \"experiment\": \"ingest_throughput\",\n  \"hardware_threads\": {},\n  \"rows\": [\n",
        hardware_threads()
    );
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"clients\": {}, \"workers\": {}, \"mix_shards\": {}, \
             \"ingest_seconds\": {:.6}, \"mix_seconds\": {:.6}, \
             \"updates_per_sec\": {:.2}, \"speedup_vs_sequential\": {:.3}}}{}\n",
            r.clients,
            r.workers,
            r.mix_shards,
            r.ingest_seconds,
            r.mix_seconds,
            r.updates_per_sec,
            r.speedup_vs_sequential,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetKind, ExperimentScale};

    #[test]
    fn sweep_measures_and_verifies_determinism() {
        let setup = ExperimentSetup::at_scale(DatasetKind::Cifar10, ExperimentScale::Quick, 1);
        // Small cells: determinism is asserted inside run().
        let rows = run(&setup, &[8], &[1, 2, 4], 2).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].workers, 1);
        assert!((rows[0].speedup_vs_sequential - 1.0).abs() < 1e-9);
        for r in &rows {
            assert!(r.updates_per_sec > 0.0);
            assert!(r.ingest_seconds > 0.0);
        }
    }

    #[test]
    fn overhead_measurement_produces_sane_figures() {
        let report = measure_overhead(9, 8, 2).unwrap();
        assert_eq!(report.clients, 8);
        assert_eq!(report.repeats, 2);
        assert!(report.enabled_seconds > 0.0);
        assert!(report.noop_seconds > 0.0);
        assert!(report.overhead_fraction.is_finite());
    }

    #[test]
    fn json_artifact_is_well_formed_enough() {
        let setup = ExperimentSetup::at_scale(DatasetKind::Cifar10, ExperimentScale::Quick, 1);
        let rows = run(&setup, &[4], &[1, 2], 1).unwrap();
        let json = to_json(&rows);
        assert!(json.contains("\"ingest_throughput\""));
        assert_eq!(json.matches("\"workers\"").count(), 2);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
