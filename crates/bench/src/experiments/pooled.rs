//! Continuous pooled mixing under trickle arrivals: the k × deadline
//! sweep behind `eval pooled` and `BENCH_pooled.json`.
//!
//! Round-synchronous experiments feed the cascade a complete client
//! roster; production traffic trickles. This sweep spreads each point's
//! clients over a fixed arrival window on the telemetry registry's
//! virtual clock (the same `(i × spread) / n` schedule `mixnn-net`'s
//! load generator uses — see [`mixnn_net::arrival_offset`]), pools them
//! in a [`PooledCoordinator`], and lets every firing — threshold or
//! deadline — drive a k-floor-padded partial round over a [`SimLink`]
//! wire. Per `(k, deadline)` point it records how the pool traded
//! latency for anonymity: firings by trigger, cover updates injected,
//! p50/p99 added latency, and the residual anonymity-set sizes of the
//! *real* clients.
//!
//! Three properties are **asserted**, not just measured, at every point:
//!
//! 1. every fired pool holds `real + dummies ≥ k`, and every route group
//!    inside it was padded to at least `k` members (the k-floor),
//! 2. the dummy-stripped server aggregate of every fired round is
//!    bit-identical to a dummy-free reference round over the same real
//!    updates (cover costs zero utility),
//! 3. every client's update is committed by exactly one fired pool.
//!
//! Everything is virtual-time derived, so the JSON artifact is
//! byte-identical across reruns with the same seed and scale.

use crate::report::Percentiles;
use crate::ExperimentScale;
use mixnn_attacks::{analyze_routed_collusion, RouteGroupView};
use mixnn_cascade::{
    CascadeCoordinator, FailurePolicy, FreeRoute, PoolConfig, PoolTrigger, PooledCoordinator,
    PooledRound,
};
use mixnn_enclave::AttestationService;
use mixnn_net::{arrival_offset, FlushPolicy, LinkConfig, SimLink};
use mixnn_nn::{LayerParams, ModelParams};
use mixnn_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mixing hops every point routes through (free-route layout, so the
/// partition produces groups the padder must top up).
pub const HOPS: usize = 3;

/// Wire timeout for each segment delivery, in virtual nanoseconds.
const WIRE_TIMEOUT_NS: u64 = 200_000_000;

/// One measured `(k, deadline)` cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PooledRow {
    /// The pool threshold / padding floor.
    pub k: usize,
    /// The pool deadline in milliseconds.
    pub deadline_ms: f64,
    /// Real clients trickled through the point.
    pub clients: usize,
    /// Pools fired (= partial rounds committed).
    pub rounds: usize,
    /// Firings that reached `k` real updates.
    pub threshold_rounds: usize,
    /// Firings forced by the deadline, under-full.
    pub deadline_rounds: usize,
    /// Firings forced by the end-of-run flush.
    pub flush_rounds: usize,
    /// Cover updates injected across all firings.
    pub dummies: usize,
    /// `dummies / (clients + dummies)` — the bandwidth price of the
    /// k-floor at this point.
    pub dummy_fraction: f64,
    /// Mean real updates per fired pool.
    pub mean_pool_depth: f64,
    /// Added latency per real update (arrival → pool firing), in
    /// milliseconds of virtual time.
    pub wait_ms: Percentiles,
    /// Mean residual anonymity-set size over real clients (no colluding
    /// hops; the route-group ceiling the padder enforces).
    pub mean_anonymity_set: f64,
    /// Smallest residual anonymity set any real client got.
    pub min_anonymity_set: usize,
}

/// The per-scale sweep shape: clients, thresholds, deadlines (ms), and
/// the arrival window (ms) the clients are spread over.
fn sweep_shape(scale: ExperimentScale) -> (usize, &'static [usize], &'static [u64], u64) {
    match scale {
        ExperimentScale::Paper => (60, &[4, 8, 16], &[5, 20, 80], 50),
        ExperimentScale::Quick => (18, &[3, 6], &[5, 40], 20),
    }
}

/// The model signature the sweep seals and routes.
fn sweep_signature(scale: ExperimentScale) -> Vec<usize> {
    match scale {
        ExperimentScale::Paper => vec![64, 32, 16],
        ExperimentScale::Quick => vec![12, 6],
    }
}

fn synth_update(signature: &[usize], seed: u64) -> ModelParams {
    let mut rng = StdRng::seed_from_u64(seed);
    ModelParams::from_layers(
        signature
            .iter()
            .map(|&len| {
                LayerParams::from_values((0..len).map(|_| rng.gen_range(-1.0..1.0)).collect())
            })
            .collect(),
    )
}

/// A free-route cascade for one sweep point, built from `point_seed`.
fn point_cascade(signature: Vec<usize>, point_seed: u64) -> Result<CascadeCoordinator, String> {
    let mut rng = StdRng::seed_from_u64(point_seed);
    let service = AttestationService::new(&mut rng);
    CascadeCoordinator::with_topology(
        signature,
        Box::new(FreeRoute::new(HOPS, 1, HOPS, point_seed ^ 0xf4)),
        point_seed,
        FailurePolicy::Abort,
        &service,
        &mut rng,
    )
    .map_err(|e| e.to_string())
}

/// Runs the pooled-mixing sweep on `telemetry`'s virtual clock.
///
/// # Errors
///
/// Fails when `telemetry` has no virtual clock (deadline firing would
/// not be reproducible) or a cascade/wire error surfaces.
///
/// # Panics
///
/// Panics (deliberately — these are the experiment's assertions) if any
/// fired pool misses the k-floor, any dummy-stripped aggregate diverges
/// from its dummy-free reference round, or any client's update is not
/// committed by exactly one fired pool.
pub fn run_with(
    scale: ExperimentScale,
    seed: u64,
    telemetry: &Telemetry,
) -> Result<Vec<PooledRow>, String> {
    let clock = telemetry
        .virtual_clock()
        .ok_or("the pooled sweep needs a virtual-clock telemetry registry")?;
    let (clients, ks, deadlines_ms, spread_ms) = sweep_shape(scale);
    let spread_ns = spread_ms * 1_000_000;
    let signature = sweep_signature(scale);
    let originals: Vec<ModelParams> = (0..clients)
        .map(|i| synth_update(&signature, seed ^ ((i as u64) << 8)))
        .collect();

    let mut rows = Vec::new();
    for &k in ks {
        for &deadline_ms in deadlines_ms {
            let deadline_ns = deadline_ms * 1_000_000;
            let point_seed = seed ^ ((k as u64) << 24) ^ deadline_ns;

            let mut pooled = PooledCoordinator::new(
                point_cascade(signature.clone(), point_seed)?,
                PoolConfig { k, deadline_ns },
                point_seed ^ 0x5ea1,
            )
            .map_err(|e| e.to_string())?;
            pooled.attach_telemetry(telemetry.clone());
            // The dummy-free reference: an identically-seeded cascade that
            // re-runs every fired pool's real updates without padding.
            let mut reference = point_cascade(signature.clone(), point_seed)?;
            let mut reference_rng = StdRng::seed_from_u64(point_seed ^ 0x0ff);
            let mut link = SimLink::new(
                HOPS,
                point_seed ^ 0x11,
                LinkConfig::default(),
                FlushPolicy::Batched,
                WIRE_TIMEOUT_NS,
            );

            // Trickle the roster through the pool on the virtual clock.
            let base = telemetry.now_ns();
            let mut fired: Vec<PooledRound> = Vec::new();
            for (i, update) in originals.iter().enumerate() {
                let at = base + arrival_offset(i, clients, spread_ns);
                while let Some(deadline) = pooled.next_deadline_ns() {
                    if deadline > at {
                        break;
                    }
                    clock.set_ns(deadline);
                    if let Some(round) = pooled.tick(&mut link).map_err(|e| e.to_string())? {
                        fired.push(round);
                    }
                }
                clock.set_ns(at);
                fired.extend(
                    pooled
                        .submit(i, update.clone(), &mut link)
                        .map_err(|e| e.to_string())?,
                );
            }
            if let Some(deadline) = pooled.next_deadline_ns() {
                clock.set_ns(deadline);
                if let Some(round) = pooled.tick(&mut link).map_err(|e| e.to_string())? {
                    fired.push(round);
                }
            }
            if let Some(round) = pooled.flush(&mut link).map_err(|e| e.to_string())? {
                fired.push(round);
            }

            // Audit every firing: k-floor, utility, anonymity, coverage.
            let mut committed = vec![0usize; clients];
            let mut wait_samples = Vec::new();
            let mut anonymity: Vec<usize> = Vec::new();
            let (mut threshold_rounds, mut deadline_rounds, mut flush_rounds) = (0, 0, 0);
            let mut dummies = 0;
            for round in &fired {
                match round.trigger {
                    PoolTrigger::Threshold => threshold_rounds += 1,
                    PoolTrigger::Deadline => deadline_rounds += 1,
                    PoolTrigger::Flush => flush_rounds += 1,
                }
                assert!(
                    round.real() + round.dummies() >= k,
                    "fired pool below the k-floor at k={k}, deadline={deadline_ms}ms: \
                     {} real + {} cover",
                    round.real(),
                    round.dummies()
                );
                let groups = round.audit().groups();
                for group in groups {
                    assert!(
                        group.members() >= k,
                        "route group of {} below the k-floor {k} (deadline {deadline_ms}ms)",
                        group.members()
                    );
                }

                let stripped = round.server_outputs().map_err(|e| e.to_string())?;
                let real_updates: Vec<ModelParams> =
                    round.slots.iter().map(|&s| originals[s].clone()).collect();
                let reference_round = reference
                    .run_round(&real_updates, &mut reference_rng)
                    .map_err(|e| e.to_string())?;
                assert_eq!(
                    ModelParams::mean(&reference_round.mixed),
                    ModelParams::mean(&stripped),
                    "dummy-stripped aggregate diverged from the dummy-free reference \
                     (k={k}, deadline={deadline_ms}ms)"
                );

                let driven = round.real() + round.dummies();
                let views: Vec<RouteGroupView> = groups
                    .iter()
                    .map(|g| RouteGroupView::for_group(g.slots(), g.route(), g.plans(), &[]))
                    .collect();
                let report = analyze_routed_collusion(&views, driven, signature.len());
                anonymity.extend_from_slice(report.real_client_anonymity(round.real()));

                wait_samples.extend(round.waits_ns.iter().map(|&w| w as f64 / 1e6));
                dummies += round.dummies();
                for &slot in &round.slots {
                    committed[slot] += 1;
                }
            }
            assert!(
                committed.iter().all(|&c| c == 1),
                "every client must be committed by exactly one fired pool \
                 (k={k}, deadline={deadline_ms}ms): {committed:?}"
            );

            rows.push(PooledRow {
                k,
                deadline_ms: deadline_ms as f64,
                clients,
                rounds: fired.len(),
                threshold_rounds,
                deadline_rounds,
                flush_rounds,
                dummies,
                dummy_fraction: dummies as f64 / (clients + dummies) as f64,
                mean_pool_depth: clients as f64 / fired.len() as f64,
                wait_ms: Percentiles::from_samples(&wait_samples),
                mean_anonymity_set: anonymity.iter().sum::<usize>() as f64 / anonymity.len() as f64,
                min_anonymity_set: anonymity.iter().copied().min().unwrap_or(0),
            });
        }
    }
    Ok(rows)
}

/// Formats the sweep for the report table.
pub fn rows(sweep: &[PooledRow]) -> Vec<Vec<String>> {
    sweep
        .iter()
        .map(|r| {
            vec![
                r.k.to_string(),
                format!("{:.0}", r.deadline_ms),
                r.rounds.to_string(),
                format!(
                    "{}/{}/{}",
                    r.threshold_rounds, r.deadline_rounds, r.flush_rounds
                ),
                format!("{:.2}", r.mean_pool_depth),
                format!("{} ({:.0}%)", r.dummies, r.dummy_fraction * 100.0),
                format!("{:.2}", r.wait_ms.p50),
                format!("{:.2}", r.wait_ms.p99),
                format!("{:.1}", r.mean_anonymity_set),
                r.min_anonymity_set.to_string(),
            ]
        })
        .collect()
}

/// Serializes the sweep as the `BENCH_pooled.json` artifact — hand-rolled
/// because the offline serde shim does not serialize.
pub fn to_json(sweep: &[PooledRow]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"pooled\",\n  \"rows\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"k\": {}, \"deadline_ms\": {:.1}, \"clients\": {}, \"rounds\": {}, \
             \"threshold_rounds\": {}, \"deadline_rounds\": {}, \"flush_rounds\": {}, \
             \"dummies\": {}, \"dummy_fraction\": {:.4}, \"mean_pool_depth\": {:.4}, \
             \"wait_ms_p50\": {:.6}, \"wait_ms_p99\": {:.6}, \"wait_ms_p999\": {:.6}, \
             \"mean_anonymity_set\": {:.4}, \"min_anonymity_set\": {}, \
             \"k_floor_held\": true, \"aggregate_bit_identical\": true}}{}\n",
            r.k,
            r.deadline_ms,
            r.clients,
            r.rounds,
            r.threshold_rounds,
            r.deadline_rounds,
            r.flush_rounds,
            r.dummies,
            r.dummy_fraction,
            r.mean_pool_depth,
            r.wait_ms.p50,
            r.wait_ms.p99,
            r.wait_ms.p999,
            r.mean_anonymity_set,
            r.min_anonymity_set,
            if i + 1 == sweep.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixnn_telemetry::{Registry, VirtualClock};

    fn sweep() -> Vec<PooledRow> {
        let telemetry = Registry::with_virtual_clock(VirtualClock::new()).shared();
        run_with(ExperimentScale::Quick, 3, &telemetry).unwrap()
    }

    #[test]
    fn sweep_covers_every_point_and_commits_every_client() {
        let rows = sweep();
        assert_eq!(rows.len(), 4, "2 thresholds x 2 deadlines");
        for r in &rows {
            assert_eq!(r.clients, 18);
            assert!(r.rounds >= 1);
            assert_eq!(
                r.threshold_rounds + r.deadline_rounds + r.flush_rounds,
                r.rounds
            );
            // The k-floor guarantees nobody's set drops below k.
            assert!(
                r.min_anonymity_set >= r.k,
                "k={} min={}",
                r.k,
                r.min_anonymity_set
            );
            assert!(r.mean_anonymity_set >= r.k as f64);
            assert!(r.dummy_fraction >= 0.0 && r.dummy_fraction < 1.0);
        }
        // Free-route grouping splits pools below k, so cover must appear
        // somewhere in the sweep.
        assert!(rows.iter().any(|r| r.dummies > 0));
        // A short deadline with a high threshold forces under-full fires.
        assert!(rows.iter().any(|r| r.deadline_rounds > 0));
    }

    #[test]
    fn tight_deadlines_trade_latency_for_cover() {
        let rows = sweep();
        // Within one threshold, the tighter deadline can only lower (or
        // hold) the observed p99 added latency.
        for k in [3usize, 6] {
            let mut of_k: Vec<&PooledRow> = rows.iter().filter(|r| r.k == k).collect();
            of_k.sort_by(|a, b| a.deadline_ms.total_cmp(&b.deadline_ms));
            for pair in of_k.windows(2) {
                assert!(
                    pair[0].wait_ms.p99 <= pair[1].wait_ms.p99 + 1e-9,
                    "k={k}: deadline {}ms p99 {} > {}ms p99 {}",
                    pair[0].deadline_ms,
                    pair[0].wait_ms.p99,
                    pair[1].deadline_ms,
                    pair[1].wait_ms.p99
                );
            }
        }
    }

    #[test]
    fn sweep_is_deterministic_across_reruns() {
        assert_eq!(sweep(), sweep());
    }

    #[test]
    fn json_artifact_is_well_formed_enough() {
        let rows = sweep();
        let json = to_json(&rows);
        assert!(json.contains("\"pooled\""));
        assert_eq!(json.matches("\"k\":").count(), 4);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"k_floor_held\": true"));
        assert!(json.contains("\"aggregate_bit_identical\": true"));
        assert_eq!(to_json(&rows), to_json(&sweep()), "artifact is byte-stable");
    }
}
