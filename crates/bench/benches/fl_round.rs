//! Fig 5-adjacent bench: one full federated round under each defense.
//!
//! The headline number here is the *overhead of MixNN relative to classic
//! FL*, which the paper argues is negligible next to the round's training
//! cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mixnn_bench::{DatasetKind, Defense, ExperimentScale, ExperimentSetup};
use mixnn_fl::FlSimulation;
use std::time::Duration;

fn bench_round(c: &mut Criterion) {
    let setup = ExperimentSetup::at_scale(DatasetKind::MotionSense, ExperimentScale::Quick, 5);
    let population = setup.spec.generate().unwrap();

    let mut group = c.benchmark_group("fl/round");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for defense in Defense::lineup(setup.noise_sigma) {
        group.bench_with_input(
            BenchmarkId::from_parameter(defense.label()),
            &defense,
            |b, defense| {
                b.iter(|| {
                    let mut sim = FlSimulation::new(setup.template(), setup.fl, &population);
                    let mut transport = defense.make_transport(setup.fl.seed);
                    sim.run_round(transport.as_mut()).unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_round);
criterion_main!(benches);
