//! Ablation bench: mixing strategies and plan constructions.
//!
//! Quantifies the design choices DESIGN.md calls out — Latin-rectangle vs
//! independent permutations, batch vs streaming, and streaming list size k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mixnn_core::{BatchMixer, MixPlan, StreamingMixer};
use mixnn_nn::{LayerParams, ModelParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn updates(c: usize, layers: usize, scalars: usize) -> Vec<ModelParams> {
    (0..c)
        .map(|i| {
            ModelParams::from_layers(
                (0..layers)
                    .map(|l| LayerParams::from_values(vec![(i * layers + l) as f32; scalars]))
                    .collect(),
            )
        })
        .collect()
}

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
}

fn bench_plan_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("mixing/plan");
    configure(&mut group);
    for &participants in &[20usize, 58] {
        group.bench_with_input(
            BenchmarkId::new("latin", participants),
            &participants,
            |b, &p| {
                let mut rng = StdRng::seed_from_u64(0);
                b.iter(|| MixPlan::latin(p, 5, &mut rng).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("independent", participants),
            &participants,
            |b, &p| {
                let mut rng = StdRng::seed_from_u64(0);
                b.iter(|| MixPlan::independent(p, 5, &mut rng));
            },
        );
    }
    group.finish();
}

fn bench_batch_vs_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("mixing/strategy");
    configure(&mut group);
    let ups = updates(20, 5, 2_000);

    group.bench_function("batch/20x5x2000", |b| {
        let mut mixer = BatchMixer::new(7);
        b.iter(|| mixer.mix(&ups).unwrap());
    });

    for &k in &[4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("streaming", k), &k, |b, &k| {
            b.iter(|| {
                let mut mixer = StreamingMixer::new(ups[0].signature(), k, 9);
                let mut out = Vec::new();
                for u in ups.clone() {
                    if let Some(m) = mixer.push(u).unwrap() {
                        out.push(m);
                    }
                }
                out.extend(mixer.flush());
                out
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plan_construction, bench_batch_vs_streaming);
criterion_main!(benches);
