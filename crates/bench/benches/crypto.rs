//! Crypto primitive costs backing the §6.5 "decryption dominates" claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mixnn_crypto::chacha20;
use mixnn_crypto::hmac::hmac_sha256;
use mixnn_crypto::sha256;
use mixnn_crypto::x25519;
use mixnn_crypto::{KeyPair, SealedBox};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto/primitives");
    configure(&mut group);
    let data = vec![0xa5u8; 64 * 1024];
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("sha256/64KiB", |b| b.iter(|| sha256::digest(&data)));
    group.bench_function("hmac_sha256/64KiB", |b| {
        b.iter(|| hmac_sha256(b"key", &data))
    });
    group.bench_function("chacha20/64KiB", |b| {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let mut buf = data.clone();
        b.iter(|| chacha20::xor_keystream(&key, &nonce, 0, &mut buf));
    });
    group.finish();

    let mut group = c.benchmark_group("crypto/x25519");
    configure(&mut group);
    group.bench_function("scalarmult", |b| {
        let scalar = [0x42u8; 32];
        b.iter(|| x25519::x25519(&scalar, &x25519::BASEPOINT));
    });
    group.finish();
}

fn bench_sealed_box(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto/sealed_box");
    configure(&mut group);
    let mut rng = StdRng::seed_from_u64(0);
    let recipient = KeyPair::generate(&mut rng);
    for &size in &[1024usize, 128 * 1024, 1024 * 1024] {
        let message = vec![0x5au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("seal", size), &size, |b, _| {
            b.iter(|| SealedBox::seal(&message, recipient.public(), &mut rng).unwrap());
        });
        let sealed = SealedBox::seal(&message, recipient.public(), &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::new("open", size), &size, |b, _| {
            b.iter(|| SealedBox::open(&sealed, &recipient).unwrap());
        });
    }
    group.finish();
}

/// The hot path the proxies actually run: a round's worth of envelopes
/// opened together, amortizing the X25519 schedule and field inversion
/// across the batch. Throughput counts are per *envelope* so the per-item
/// gain over `sealed_box/open` is read straight off the report.
fn bench_open_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto/open_batch");
    configure(&mut group);
    let mut rng = StdRng::seed_from_u64(1);
    let recipient = KeyPair::generate(&mut rng);
    let message = vec![0xa5u8; 1024];
    for &batch in &[4usize, 16, 64] {
        let sealed: Vec<Vec<u8>> = (0..batch)
            .map(|_| SealedBox::seal(&message, recipient.public(), &mut rng).unwrap())
            .collect();
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::new("1024B", batch), &batch, |b, _| {
            b.iter(|| {
                SealedBox::open_batch(&sealed, &recipient)
                    .into_iter()
                    .map(|r| r.unwrap().len())
                    .sum::<usize>()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_primitives,
    bench_sealed_box,
    bench_open_batch
);
criterion_main!(benches);
