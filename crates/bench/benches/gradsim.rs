//! ∇Sim cost bench: fitting attack models and scoring observed updates
//! (fig7/fig8-adjacent micro benchmarks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mixnn_attacks::{GradSim, GradSimConfig};
use mixnn_bench::{DatasetKind, ExperimentScale, ExperimentSetup};
use mixnn_fl::FlConfig;
use std::time::Duration;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
}

fn bench_fit_and_score(c: &mut Criterion) {
    let setup = ExperimentSetup::at_scale(DatasetKind::MotionSense, ExperimentScale::Quick, 3);
    let population = setup.spec.generate().unwrap();
    let template = setup.template();
    let base = template.params();
    let background: Vec<(usize, mixnn_data::Dataset)> = (0..2)
        .map(|attr| {
            let ids: Vec<usize> = population
                .participants()
                .iter()
                .filter(|p| p.attribute() == attr)
                .map(|p| p.id())
                .collect();
            (attr, population.pooled_train_data(&ids).unwrap())
        })
        .collect();
    let fl_cfg = FlConfig {
        batch_size: 32,
        ..FlConfig::default()
    };

    let mut group = c.benchmark_group("gradsim");
    configure(&mut group);
    for &epochs in &[1usize, 5] {
        group.bench_with_input(BenchmarkId::new("fit", epochs), &epochs, |b, &epochs| {
            let cfg = GradSimConfig {
                attack_epochs: epochs,
                ..GradSimConfig::default()
            };
            b.iter(|| GradSim::fit(&template, &base, &background, &fl_cfg, &cfg).unwrap());
        });
    }

    let cfg = GradSimConfig {
        attack_epochs: 1,
        ..GradSimConfig::default()
    };
    let attack = GradSim::fit(&template, &base, &background, &fl_cfg, &cfg).unwrap();
    let observed = base.perturbed(0.01, &mut rand::rngs::StdRng::seed_from_u64(1));
    group.bench_function("score", |b| {
        b.iter(|| attack.score(&observed).unwrap());
    });
    group.bench_function("equidistant_model", |b| {
        b.iter(|| attack.equidistant_model());
    });
    group.finish();
}

use rand::SeedableRng;

criterion_group!(benches, bench_fit_and_score);
criterion_main!(benches);
