//! Fig 7/8-adjacent bench: one complete (quick-scale) ∇Sim inference
//! experiment per defense, end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mixnn_attacks::{AttackMode, InferenceExperiment};
use mixnn_bench::{DatasetKind, Defense, ExperimentScale, ExperimentSetup};
use std::time::Duration;

fn bench_inference(c: &mut Criterion) {
    let mut setup = ExperimentSetup::at_scale(DatasetKind::Lfw, ExperimentScale::Quick, 7);
    setup.fl.rounds = 2;
    let population = setup.spec.generate().unwrap();

    let mut group = c.benchmark_group("inference/experiment");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    for defense in Defense::lineup(setup.noise_sigma) {
        group.bench_with_input(
            BenchmarkId::from_parameter(defense.label()),
            &defense,
            |b, defense| {
                b.iter(|| {
                    let experiment = InferenceExperiment::new(
                        &population,
                        setup.template(),
                        setup.fl,
                        setup.attack.clone(),
                        AttackMode::Active,
                        0.8,
                    );
                    let mut transport = defense.make_transport(setup.fl.seed);
                    experiment.run(transport.as_mut()).unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
