//! Parallel vs sequential onion unwrapping at one cascade hop.
//!
//! A hop's round ingest decrypts C×L sealed envelopes — the §6.5
//! bottleneck, multiplied by the chain length. This bench measures what
//! the staged ingest fan-out buys back at one hop: each iteration runs
//! `CascadeHop::mix_round` over `C` pre-sealed onions at 1, 2, 4 and 8
//! ingest workers. Outputs are bit-identical across worker counts
//! (enforced by the cascade determinism tests), so the ratio between the
//! 1-worker and N-worker lines is pure pipeline speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mixnn_cascade::{CascadeHop, CascadeHopConfig, OnionUpdate};
use mixnn_core::Parallelism;
use mixnn_enclave::AttestationService;
use mixnn_nn::{LayerParams, ModelParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const SIGNATURE: [usize; 4] = [1024, 1024, 512, 256];

fn launch_hop(workers: usize, rng: &mut StdRng) -> CascadeHop {
    let service = AttestationService::new(rng);
    CascadeHop::launch(
        0,
        CascadeHopConfig {
            seed: 7,
            parallelism: Parallelism {
                ingest_workers: workers,
                ..Parallelism::sequential()
            },
            ..CascadeHopConfig::default()
        },
        &SIGNATURE,
        &service,
        rng,
    )
}

fn sealed_onions(hop: &CascadeHop, clients: usize, rng: &mut StdRng) -> Vec<Vec<u8>> {
    let keys = [*hop.public_key()];
    (0..clients)
        .map(|_| {
            let params = ModelParams::from_layers(
                SIGNATURE
                    .iter()
                    .map(|&len| {
                        LayerParams::from_values(
                            (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect(),
                        )
                    })
                    .collect(),
            );
            OnionUpdate::build(&params, &keys, rng).unwrap().encode()
        })
        .collect()
}

fn bench_hop_ingest_workers(c: &mut Criterion) {
    for &clients in &[16usize, 64] {
        let mut group = c.benchmark_group(format!("cascade_hop/C{clients}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_secs(2))
            .throughput(Throughput::Elements(clients as u64));
        for &workers in &[1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new("workers", workers),
                &workers,
                |b, &workers| {
                    let mut rng = StdRng::seed_from_u64(3);
                    let reference = launch_hop(workers, &mut rng);
                    let sealed = sealed_onions(&reference, clients, &mut rng);
                    b.iter(|| {
                        // A fresh hop per iteration (same launch seed, so
                        // the enclave holds the keypair the onions were
                        // sealed to) keeps every round's plan draw and EPC
                        // charge pattern identical.
                        let mut rng = StdRng::seed_from_u64(3);
                        let mut hop = launch_hop(workers, &mut rng);
                        hop.mix_round(&sealed).unwrap()
                    });
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_hop_ingest_workers);
criterion_main!(benches);
