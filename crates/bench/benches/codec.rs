//! Wire-codec bench: bulk little-endian conversion and the v2 modes.
//!
//! The v1 encoder used to walk values one `put_f32_le`/`get_f32_le` at a
//! time; it now converts whole slices through `chunks_exact(4)` with an
//! exact-capacity pre-reserve. `encode/f32` and `decode/f32` measure
//! that bulk path directly (the per-value loop it replaced is the
//! baseline recorded in the PR). The `int8` and `int8+topk` rows show
//! what the v2 quantized frames cost to produce and parse at the
//! reference layer sizes, and `validate` prices the structural v2 check
//! hops run per envelope without decompressing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mixnn_core::codec::{
    self, encode_layer_with, encode_params_with, validate_layer_frame, CompressionConfig,
};
use mixnn_nn::{LayerParams, ModelParams};
use std::time::Duration;

/// The paper's reference model signature.
const SIGNATURE: [usize; 5] = [2048, 2048, 1024, 512, 130];

fn reference_params() -> ModelParams {
    ModelParams::from_layers(
        SIGNATURE
            .iter()
            .map(|&len| {
                LayerParams::from_values((0..len).map(|i| (i as f32).sin() * 0.7).collect())
            })
            .collect(),
    )
}

fn modes() -> [CompressionConfig; 3] {
    [
        CompressionConfig::F32,
        CompressionConfig::Int8,
        CompressionConfig::int8_top_k(),
    ]
}

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec/encode");
    configure(&mut group);
    let params = reference_params();
    for mode in modes() {
        group.bench_with_input(BenchmarkId::from_parameter(mode.name()), &mode, |b, &m| {
            b.iter(|| encode_params_with(&params, m));
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec/decode");
    configure(&mut group);
    let params = reference_params();
    for mode in modes() {
        let bytes = encode_params_with(&params, mode);
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.name()),
            &bytes,
            |b, bytes| {
                b.iter(|| codec::decode_params(bytes).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_validate(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec/validate");
    configure(&mut group);
    let layer = LayerParams::from_values((0..2048).map(|i| (i as f32).cos()).collect());
    for mode in modes() {
        let frame = encode_layer_with(&layer, mode);
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.name()),
            &frame,
            |b, frame| {
                b.iter(|| validate_layer_frame(frame).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_validate);
criterion_main!(benches);
