//! Parallel vs sequential ingest of a full encrypted round.
//!
//! The §6.5 breakdown makes decryption the proxy bottleneck; this bench
//! measures how much of it worker threads buy back. Each iteration ingests
//! `C` pre-sealed updates (decrypt → decode → ordered store) and batch-mixes
//! them, for C ∈ {32, 128, 512} at 1, 2, 4 and 8 ingest workers. The
//! outputs are bit-identical across worker counts (enforced by the
//! determinism tests in `mixnn-core`), so the ratio between the 1-worker
//! and N-worker lines is pure pipeline speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mixnn_core::{
    codec, MixingStrategy, MixnnProxy, MixnnProxyConfig, ParallelIngest, Parallelism,
};
use mixnn_crypto::SealedBox;
use mixnn_enclave::AttestationService;
use mixnn_nn::{LayerParams, ModelParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const SIGNATURE: [usize; 4] = [1024, 1024, 512, 256];

fn launch_proxy(workers: usize, rng: &mut StdRng) -> MixnnProxy {
    let service = AttestationService::new(rng);
    MixnnProxy::launch(
        MixnnProxyConfig {
            strategy: MixingStrategy::Batch,
            expected_signature: SIGNATURE.to_vec(),
            seed: 7,
            parallelism: Parallelism {
                ingest_workers: workers,
                mix_shards: workers,
                ..Parallelism::sequential()
            },
            ..MixnnProxyConfig::default()
        },
        &service,
        rng,
    )
}

fn sealed_round(proxy: &MixnnProxy, clients: usize, rng: &mut StdRng) -> Vec<Vec<u8>> {
    (0..clients)
        .map(|_| {
            let params = ModelParams::from_layers(
                SIGNATURE
                    .iter()
                    .map(|&len| {
                        LayerParams::from_values(
                            (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect(),
                        )
                    })
                    .collect(),
            );
            SealedBox::seal(&codec::encode_params(&params), proxy.public_key(), rng).unwrap()
        })
        .collect()
}

fn bench_ingest_workers(c: &mut Criterion) {
    for &clients in &[32usize, 128, 512] {
        let mut group = c.benchmark_group(format!("ingest/C{clients}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_secs(2))
            .throughput(Throughput::Elements(clients as u64));
        for &workers in &[1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new("workers", workers),
                &workers,
                |b, &workers| {
                    let mut rng = StdRng::seed_from_u64(3);
                    let reference = launch_proxy(workers, &mut rng);
                    let sealed = sealed_round(&reference, clients, &mut rng);
                    let ingest = ParallelIngest::new(workers);
                    b.iter(|| {
                        // A fresh proxy per iteration: ingest must include
                        // the store stage into empty lists, as §6.5 does.
                        // Re-seeding with the same value replays the launch
                        // RNG draws, so this proxy holds the same enclave
                        // keypair the round was sealed to.
                        let mut rng = StdRng::seed_from_u64(3);
                        let mut proxy = launch_proxy(workers, &mut rng);
                        let results = ingest.submit_all(&mut proxy, &sealed);
                        assert!(results.iter().all(Result::is_ok));
                        proxy.mix_batch().unwrap()
                    });
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_ingest_workers);
criterion_main!(benches);
