//! §6.5 bench: the proxy pipeline stage costs (decrypt → store → mix) as a
//! function of model size. The paper's claims to reproduce in shape:
//! decryption dominates, mixing is cheap, cost grows with the model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mixnn_core::{codec, MixingStrategy, MixnnProxy, MixnnProxyConfig};
use mixnn_crypto::SealedBox;
use mixnn_enclave::AttestationService;
use mixnn_nn::{LayerParams, ModelParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// A synthetic model update with `layers` layers of `scalars_per_layer`
/// parameters each.
fn update(layers: usize, scalars_per_layer: usize, seed: u64) -> ModelParams {
    let mut rng = StdRng::seed_from_u64(seed);
    ModelParams::from_layers(
        (0..layers)
            .map(|_| {
                LayerParams::from_values(
                    (0..scalars_per_layer)
                        .map(|_| rand::Rng::gen_range(&mut rng, -1.0..1.0))
                        .collect(),
                )
            })
            .collect(),
    )
}

fn launch_proxy(signature: Vec<usize>, rng: &mut StdRng) -> MixnnProxy {
    let service = AttestationService::new(rng);
    MixnnProxy::launch(
        MixnnProxyConfig {
            strategy: MixingStrategy::Batch,
            expected_signature: signature,
            ..MixnnProxyConfig::default()
        },
        &service,
        rng,
    )
}

fn bench_decrypt_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("proxy/decrypt_store");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    // Model sizes spanning the paper's 2conv vs 3conv growth story.
    for &scalars in &[2_000usize, 20_000, 200_000] {
        let layers = 5;
        let params = update(layers, scalars / layers, 1);
        let bytes = codec::encode_params(&params);
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(scalars), &scalars, |b, _| {
            let mut rng = StdRng::seed_from_u64(2);
            let mut proxy = launch_proxy(params.signature(), &mut rng);
            let sealed = SealedBox::seal(&bytes, proxy.public_key(), &mut rng).unwrap();
            b.iter(|| {
                proxy.submit_encrypted(&sealed).unwrap();
                // Drain so the buffer (and EPC accounting) stays flat.
                proxy.mix_batch().unwrap()
            });
        });
    }
    group.finish();
}

fn bench_mix_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("proxy/mix_batch");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for &clients in &[8usize, 20, 40] {
        let updates: Vec<ModelParams> = (0..clients).map(|i| update(5, 4_000, i as u64)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(clients), &clients, |b, _| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut proxy = launch_proxy(updates[0].signature(), &mut rng);
            b.iter(|| proxy.mix_plaintext_round(updates.clone()).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decrypt_store, bench_mix_only);
criterion_main!(benches);
