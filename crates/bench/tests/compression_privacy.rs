//! Compression must not buy bytes with linkability.
//!
//! Two properties pin that down. **Size uniformity**: per-layer envelope
//! sizes are adversary-visible on every link, so within a route group
//! every sealed onion — real clients' and hop-generated cover alike —
//! must encode to one length under every codec mode, keep-rate and
//! layout; a content-dependent length would fingerprint clients through
//! the mix. **Anonymity invariance**: the routed colluding-subset
//! adversary must reconstruct *exactly* the same per-client anonymity
//! sets whether the round ran lossless or compressed — compression
//! changes what the wire carries, not what the adversary learns.

use mixnn_attacks::{analyze_routed_collusion, RouteGroupView};
use mixnn_cascade::{
    CascadeCoordinator, FailurePolicy, FreeRoute, LinearChain, PaddedRound, StratifiedLayout,
};
use mixnn_core::codec::CompressionConfig;
use mixnn_core::InProcessLink;
use mixnn_enclave::AttestationService;
use mixnn_nn::{LayerParams, ModelParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIGNATURE: [usize; 3] = [9, 5, 3];
const CLIENTS: usize = 10;
const SEED: u64 = 41;

/// Every mode the wire speaks, including off-default keep rates.
fn all_modes() -> Vec<CompressionConfig> {
    vec![
        CompressionConfig::F32,
        CompressionConfig::Int8,
        CompressionConfig::Int8TopK { keep_per_1024: 64 },
        CompressionConfig::int8_top_k(),
        CompressionConfig::Int8TopK {
            keep_per_1024: 1024,
        },
    ]
}

type LayoutFactory = Box<dyn Fn() -> Box<dyn mixnn_cascade::CascadeTopology>>;

fn layouts() -> Vec<(&'static str, LayoutFactory)> {
    vec![
        ("linear", Box::new(|| Box::new(LinearChain::new(3)))),
        (
            "stratified",
            Box::new(|| Box::new(StratifiedLayout::evenly(4, 2, SEED))),
        ),
        (
            "free-route",
            Box::new(|| Box::new(FreeRoute::new(4, 2, 3, SEED))),
        ),
    ]
}

/// Updates with wildly different content — constants, spikes, NaN and
/// huge magnitudes — so any content-dependent length would show.
fn adversarial_updates() -> Vec<ModelParams> {
    (0..CLIENTS)
        .map(|i| {
            ModelParams::from_layers(
                SIGNATURE
                    .iter()
                    .map(|&len| {
                        LayerParams::from_values(
                            (0..len)
                                .map(|j| match (i + j) % 5 {
                                    0 => 0.0,
                                    1 => 1e30,
                                    2 => f32::NAN,
                                    3 => -3.5e-39, // subnormal
                                    _ => (i as f32) - (j as f32),
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            )
        })
        .collect()
}

fn padded_round(
    make: &dyn Fn() -> Box<dyn mixnn_cascade::CascadeTopology>,
    compression: CompressionConfig,
    updates: &[ModelParams],
) -> (CascadeCoordinator, AttestationService, PaddedRound) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let service = AttestationService::new(&mut rng);
    let mut cascade = CascadeCoordinator::with_topology(
        SIGNATURE.to_vec(),
        make(),
        SEED,
        FailurePolicy::Abort,
        &service,
        &mut rng,
    )
    .unwrap();
    cascade.set_compression(compression);
    let round = cascade
        .run_padded_round_over(updates, CLIENTS + 2, &mut rng, &mut InProcessLink)
        .unwrap();
    (cascade, service, round)
}

#[test]
fn every_route_group_is_size_uniform_under_every_mode_and_layout() {
    let updates = adversarial_updates();
    for (name, make) in layouts() {
        for compression in all_modes() {
            let (cascade, service, padded) = padded_round(&make, compression, &updates);
            assert!(padded.dummies() > 0, "{name}: no cover rode the round");
            // Per route group: seal that group's real updates and fresh
            // hop-generated cover with a group member's client; every
            // onion must land on one length.
            for group in padded.round.audit.groups() {
                let slot = group.slots()[0];
                let mut rng = StdRng::seed_from_u64(SEED ^ 0xbeef);
                let client = cascade.client_for_slot(slot, &service).unwrap();
                assert_eq!(client.compression(), compression);
                let mut lens = std::collections::BTreeSet::new();
                for &s in group.slots() {
                    // Trailing slots are the injected cover updates.
                    if s >= padded.real {
                        continue;
                    }
                    lens.insert(client.seal_update(&updates[s], &mut rng).unwrap().len());
                }
                for nonce in 0..2u64 {
                    let dummy = cascade.hops()[0].generate_dummy(&SIGNATURE, nonce);
                    lens.insert(client.seal_update(&dummy, &mut rng).unwrap().len());
                }
                assert_eq!(
                    lens.len(),
                    1,
                    "{name}/{}: onion sizes leak content: {lens:?}",
                    compression.name()
                );
            }
        }
    }
}

#[test]
fn collusion_analysis_is_identical_with_compression_on_and_off() {
    let updates = adversarial_updates();
    for (name, make) in layouts() {
        // The same seeded round, lossless vs compressed: routing, group
        // partition and mix plans must match, so the adversary's view is
        // unchanged and the anonymity sets are equal element for element.
        let (_, _, lossless) = padded_round(&make, CompressionConfig::F32, &updates);
        for compression in [CompressionConfig::Int8, CompressionConfig::int8_top_k()] {
            let (_, _, compressed) = padded_round(&make, compression, &updates);
            let slots = |r: &PaddedRound| {
                r.round
                    .audit
                    .groups()
                    .iter()
                    .map(|g| (g.slots().to_vec(), g.route().to_vec()))
                    .collect::<Vec<_>>()
            };
            assert_eq!(
                slots(&lossless),
                slots(&compressed),
                "{name}/{}: group structure changed under compression",
                compression.name()
            );
            // Sweep colluding subsets of up to two hops.
            let hops: Vec<usize> = (0..4).collect();
            let mut subsets: Vec<Vec<usize>> = vec![vec![]];
            for &h in &hops {
                subsets.push(vec![h]);
                for &g in &hops {
                    if g > h {
                        subsets.push(vec![h, g]);
                    }
                }
            }
            for colluding in subsets {
                let analyze = |r: &PaddedRound| {
                    let views: Vec<RouteGroupView> = r
                        .round
                        .audit
                        .groups()
                        .iter()
                        .map(|g| {
                            RouteGroupView::for_group(g.slots(), g.route(), g.plans(), &colluding)
                        })
                        .collect();
                    analyze_routed_collusion(&views, r.round.audit.clients(), SIGNATURE.len())
                };
                let a = analyze(&lossless);
                let b = analyze(&compressed);
                assert_eq!(
                    a.real_client_anonymity(lossless.real),
                    b.real_client_anonymity(compressed.real),
                    "{name}/{}/colluding {colluding:?}: anonymity sets differ",
                    compression.name()
                );
                assert_eq!(a.linked_clients(), b.linked_clients());
                assert_eq!(a.anonymity_distribution(), b.anonymity_distribution());
            }
        }
    }
}
