//! Cover traffic must be free: the three indistinguishability guarantees
//! of pooled mixing, checked end to end against the adversary and the
//! export surface.
//!
//! 1. **Anonymity.** Running `analyze_routed_collusion` over a
//!    dummy-padded pooled round gives every *real* client an anonymity
//!    set at least as large as the same updates get in a dummy-free
//!    round, for every colluding subset of hops — cover can only add
//!    candidates, never remove them.
//! 2. **Utility.** The dummy-stripped server aggregate of a pooled round
//!    is bit-identical to a dummy-free round over the same updates.
//! 3. **Export surface.** A pooled run's Prometheus export still passes
//!    [`validate_prometheus`] — the new pool metrics introduce no
//!    forbidden per-entity label axis (`client=`, `slot=`, `route=`, …),
//!    so the exporter leaks nothing the padder hid.

use mixnn_attacks::{analyze_routed_collusion, RouteGroupView};
use mixnn_cascade::{
    CascadeCoordinator, FailurePolicy, FreeRoute, PoolConfig, PoolTrigger, PooledCoordinator,
    PooledRound,
};
use mixnn_core::InProcessLink;
use mixnn_enclave::AttestationService;
use mixnn_nn::{LayerParams, ModelParams};
use mixnn_telemetry::{
    validate_prometheus, Registry, Telemetry, VirtualClock, FORBIDDEN_LABEL_AXES,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SIGNATURE: [usize; 3] = [5, 3, 2];
const HOPS: usize = 3;
const K: usize = 6;
const SEED: u64 = 77;

fn synth_update(seed: u64) -> ModelParams {
    let mut rng = StdRng::seed_from_u64(seed);
    ModelParams::from_layers(
        SIGNATURE
            .iter()
            .map(|&len| {
                LayerParams::from_values((0..len).map(|_| rng.gen_range(-1.0..1.0)).collect())
            })
            .collect(),
    )
}

fn free_route_cascade(seed: u64) -> CascadeCoordinator {
    let mut rng = StdRng::seed_from_u64(seed);
    let service = AttestationService::new(&mut rng);
    CascadeCoordinator::with_topology(
        SIGNATURE.to_vec(),
        Box::new(FreeRoute::new(HOPS, 1, HOPS, seed ^ 0xf4)),
        seed,
        FailurePolicy::Abort,
        &service,
        &mut rng,
    )
    .expect("cascade launches")
}

/// Fires one under-full pool (3 real members against a k-floor of 6) by
/// deadline and returns it with the telemetry handle that observed it.
fn fire_padded_round(
    telemetry: &Telemetry,
    clock: &VirtualClock,
) -> (PooledRound, Vec<ModelParams>) {
    let mut pooled = PooledCoordinator::new(
        free_route_cascade(SEED),
        PoolConfig {
            k: K,
            deadline_ns: 1_000_000,
        },
        SEED ^ 0x5ea1,
    )
    .expect("valid pool config");
    pooled.attach_telemetry(telemetry.clone());
    let mut link = InProcessLink;
    let reals: Vec<ModelParams> = (0..3)
        .map(|i| synth_update(SEED ^ (i as u64) << 8))
        .collect();
    for (i, update) in reals.iter().enumerate() {
        clock.advance_ns(10_000);
        assert!(pooled
            .submit(i, update.clone(), &mut link)
            .expect("submit")
            .is_empty());
    }
    clock.set_ns(pooled.next_deadline_ns().expect("pool is open"));
    let round = pooled
        .tick(&mut link)
        .expect("deadline firing")
        .expect("pool fires");
    assert_eq!(round.trigger, PoolTrigger::Deadline);
    assert_eq!(round.real(), 3);
    assert!(round.dummies() >= K - 3, "under-full pool must be padded");
    (round, reals)
}

/// The per-real-client anonymity sets a round's audit yields under one
/// colluding subset.
fn real_anonymity(
    round_groups: &[(Vec<usize>, Vec<usize>, Vec<mixnn_core::MixPlan>)],
    driven: usize,
    real: usize,
    colluding: &[usize],
) -> Vec<usize> {
    let views: Vec<RouteGroupView> = round_groups
        .iter()
        .map(|(slots, route, plans)| RouteGroupView::for_group(slots, route, plans, colluding))
        .collect();
    analyze_routed_collusion(&views, driven, SIGNATURE.len())
        .real_client_anonymity(real)
        .to_vec()
}

fn audit_groups(round: &PooledRound) -> Vec<(Vec<usize>, Vec<usize>, Vec<mixnn_core::MixPlan>)> {
    round
        .audit()
        .groups()
        .iter()
        .map(|g| (g.slots().to_vec(), g.route().to_vec(), g.plans().to_vec()))
        .collect()
}

#[test]
fn dummies_never_shrink_a_real_clients_anonymity_set() {
    let clock = VirtualClock::new();
    let telemetry = Registry::with_virtual_clock(clock.clone()).shared();
    let (round, reals) = fire_padded_round(&telemetry, &clock);
    let padded_groups = audit_groups(&round);
    let driven = round.real() + round.dummies();

    // The dummy-free baseline: the same three updates through an
    // identically-seeded cascade, no padding.
    let mut baseline = free_route_cascade(SEED);
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x5ea1);
    let bare = baseline.run_round(&reals, &mut rng).expect("bare round");
    let bare_groups: Vec<(Vec<usize>, Vec<usize>, Vec<mixnn_core::MixPlan>)> = bare
        .audit
        .groups()
        .iter()
        .map(|g| (g.slots().to_vec(), g.route().to_vec(), g.plans().to_vec()))
        .collect();

    // Every colluding subset of the hops: padding may only grow (or hold)
    // each real client's residual anonymity set.
    for mask in 0u32..(1 << HOPS) {
        let colluding: Vec<usize> = (0..HOPS).filter(|h| mask & (1 << h) != 0).collect();
        let padded = real_anonymity(&padded_groups, driven, round.real(), &colluding);
        let unpadded = real_anonymity(&bare_groups, reals.len(), reals.len(), &colluding);
        for (client, (with_cover, without)) in padded.iter().zip(&unpadded).enumerate() {
            assert!(
                with_cover >= without,
                "colluding {colluding:?}: cover shrank client {client}'s anonymity set \
                 ({without} -> {with_cover})"
            );
        }
    }
    // And under no collusion the k-floor is the anonymity floor.
    let padded = real_anonymity(&padded_groups, driven, round.real(), &[]);
    assert!(padded.iter().all(|&a| a >= K), "k-floor: {padded:?}");
}

#[test]
fn dummy_stripped_aggregate_is_bit_identical_to_a_no_dummy_round() {
    let clock = VirtualClock::new();
    let telemetry = Registry::with_virtual_clock(clock.clone()).shared();
    let (round, reals) = fire_padded_round(&telemetry, &clock);
    let stripped = round.server_outputs().expect("cover strips cleanly");
    assert_eq!(stripped.len(), reals.len());

    let mut baseline = free_route_cascade(SEED);
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x5ea1);
    let bare = baseline.run_round(&reals, &mut rng).expect("bare round");
    assert_eq!(
        ModelParams::mean(&stripped),
        ModelParams::mean(&bare.mixed),
        "the server aggregate must not feel the cover traffic"
    );
    assert_eq!(
        ModelParams::mean(&stripped),
        ModelParams::mean(&reals),
        "and both equal the plain mean of the real updates"
    );
}

#[test]
fn pooled_export_gains_no_forbidden_label_axis() {
    let clock = VirtualClock::new();
    let telemetry = Registry::with_virtual_clock(clock.clone()).shared();
    let (_round, _reals) = fire_padded_round(&telemetry, &clock);
    let text = telemetry.snapshot().to_prometheus();
    // The pool metrics made it into the export...
    assert!(text.contains("pools_fired"), "pool counters are exported");
    assert!(text.contains("dummies_injected"));
    // ...and the export still passes every gate: well-formed, bounded
    // cardinality, and no per-entity axis that could tag a dummy.
    let summary = validate_prometheus(&text).expect("export passes the privacy gates");
    assert!(summary.families > 0);
    // (The axes are bare words that may appear in metric *names*, e.g.
    // `route_groups`; what must never appear is a *label* on that axis.)
    for axis in FORBIDDEN_LABEL_AXES {
        assert!(
            !text.contains(&format!("{axis}=\"")),
            "export must not carry a label on the forbidden axis {axis:?}"
        );
    }
}
