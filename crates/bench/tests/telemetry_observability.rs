//! The telemetry layer's two headline guarantees, checked end to end:
//!
//! 1. **Determinism.** Metric snapshots are a pure function of the work,
//!    not of the schedule: the Prometheus text and the round-trace journal
//!    are bit-identical across every `Parallelism` knob (under a frozen
//!    virtual clock, which removes the one legitimately wall-clock-shaped
//!    output), and the load generator — which runs entirely in virtual
//!    time — reproduces its whole export byte for byte across reruns.
//!
//! 2. **Privacy.** Exporting telemetry hands the colluding adversary
//!    nothing: the round itself is unperturbed by attachment (same seeds ⇒
//!    same audit ⇒ the `mixnn_attacks` report with telemetry in hand
//!    equals the no-telemetry report, link for link), the exported text
//!    carries no per-client/per-route label axis, and the snapshot is
//!    invariant under permutation of the client→slot assignment — so
//!    conditioning on it cannot shrink any anonymity set.

use mixnn_attacks::{analyze_routed_collusion, RouteGroupView};
use mixnn_cascade::{CascadeCoordinator, CascadeRound, CascadeTopology, FailurePolicy, FreeRoute};
use mixnn_core::Parallelism;
use mixnn_enclave::AttestationService;
use mixnn_net::{run_load_with, FlushPolicy, LoadConfig};
use mixnn_nn::{LayerParams, ModelParams};
use mixnn_telemetry::{
    validate_prometheus, Registry, Telemetry, VirtualClock, FORBIDDEN_LABEL_AXES,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CLIENTS: usize = 6;
const SIGNATURE: [usize; 3] = [4, 2, 3];

fn synth_rounds(rng: &mut StdRng, rounds: usize) -> Vec<Vec<ModelParams>> {
    (0..rounds)
        .map(|_| {
            (0..CLIENTS)
                .map(|_| {
                    ModelParams::from_layers(
                        SIGNATURE
                            .iter()
                            .map(|&len| {
                                LayerParams::from_values(
                                    (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect(),
                                )
                            })
                            .collect(),
                    )
                })
                .collect()
        })
        .collect()
}

/// Drives `rounds` through a fresh linear cascade at the given knob
/// setting, with a frozen virtual clock so every span duration is zero,
/// and returns (prometheus text, trace text, round outputs).
fn drive_cascade(parallelism: Parallelism, seed: u64) -> (String, String, Vec<CascadeRound>) {
    let telemetry = Registry::with_virtual_clock(VirtualClock::new()).shared();
    let mut rng = StdRng::seed_from_u64(seed);
    let service = AttestationService::new(&mut rng);
    let mut cascade = CascadeCoordinator::linear(
        SIGNATURE.to_vec(),
        3,
        seed,
        FailurePolicy::Abort,
        &service,
        &mut rng,
    )
    .unwrap();
    cascade.set_parallelism(parallelism);
    cascade.attach_telemetry(telemetry.clone());
    let rounds = synth_rounds(&mut rng, 3);
    let outputs = cascade.run_rounds(&rounds, &mut rng).unwrap();
    (
        telemetry.snapshot().to_prometheus(),
        telemetry.trace_text(),
        outputs,
    )
}

#[test]
fn cascade_snapshots_are_bit_identical_across_every_parallelism_knob() {
    let (reference_prom, reference_trace, reference_rounds) =
        drive_cascade(Parallelism::sequential(), 404);
    validate_prometheus(&reference_prom).unwrap();
    assert!(
        reference_prom.contains("mixnn_cascade_rounds_completed_total 3"),
        "the reference run should have recorded its three rounds"
    );

    // One configuration per knob, plus everything turned up at once —
    // including pipeline_depth, whose commit path bypasses the ordinary
    // per-round accounting and reproduces it after the fact.
    let knobs = [
        Parallelism {
            ingest_workers: 4,
            ..Parallelism::sequential()
        },
        Parallelism {
            mix_shards: 3,
            ..Parallelism::sequential()
        },
        Parallelism {
            client_workers: 2,
            ..Parallelism::sequential()
        },
        Parallelism {
            group_workers: 3,
            ..Parallelism::sequential()
        },
        Parallelism {
            pipeline_depth: 3,
            ..Parallelism::sequential()
        },
        Parallelism {
            ingest_workers: 4,
            mix_shards: 2,
            client_workers: 2,
            group_workers: 2,
            pipeline_depth: 2,
        },
    ];
    for parallelism in knobs {
        let (prom, trace, rounds) = drive_cascade(parallelism, 404);
        assert_eq!(
            rounds.len(),
            reference_rounds.len(),
            "{parallelism:?} changed the round count"
        );
        for (round, reference) in rounds.iter().zip(&reference_rounds) {
            assert_eq!(
                round.mixed, reference.mixed,
                "{parallelism:?} changed a round's mixed output"
            );
        }
        assert_eq!(
            prom, reference_prom,
            "{parallelism:?} produced a different metrics snapshot"
        );
        assert_eq!(
            trace, reference_trace,
            "{parallelism:?} produced a different round trace"
        );
    }
}

#[test]
fn load_generator_telemetry_reproduces_byte_for_byte_across_reruns() {
    let run = || {
        let telemetry = Registry::with_virtual_clock(VirtualClock::new()).shared();
        let mut cfg = LoadConfig::quick(FlushPolicy::Batched);
        cfg.clients = 200;
        let outcome = run_load_with(&cfg, &telemetry).unwrap();
        (
            telemetry.snapshot().to_prometheus(),
            telemetry.trace_text(),
            telemetry.snapshot().to_json("  "),
            outcome,
        )
    };
    let (prom_a, trace_a, json_a, outcome_a) = run();
    let (prom_b, trace_b, json_b, outcome_b) = run();
    validate_prometheus(&prom_a).unwrap();
    assert_eq!(prom_a, prom_b, "metrics snapshot differed across reruns");
    assert_eq!(trace_a, trace_b, "round trace differed across reruns");
    assert_eq!(json_a, json_b, "JSON snapshot differed across reruns");
    assert_eq!(
        outcome_a.sustained_updates_per_sec,
        outcome_b.sustained_updates_per_sec
    );
    assert!(
        !trace_a.is_empty(),
        "the load generator should journal round completions"
    );
    // The trace runs on the simulator's clock: timestamps are virtual
    // nanoseconds, not wall-clock samples, which is what makes the
    // byte-for-byte comparison above meaningful rather than vacuous.
    assert!(outcome_a.packets_lost == 0 && outcome_a.packets_reordered == 0);
}

fn routed_views<'a>(round: &'a CascadeRound, colluding: &[usize]) -> Vec<RouteGroupView<'a>> {
    round
        .audit
        .groups()
        .iter()
        .map(|g| RouteGroupView::for_group(g.slots(), g.route(), g.plans(), colluding))
        .collect()
}

/// Runs a seeded free-route round, optionally with a live registry
/// attached, and returns the round plus the registry that observed it.
fn routed_round(seed: u64, telemetry: Option<&Telemetry>) -> CascadeRound {
    let mut rng = StdRng::seed_from_u64(seed);
    let service = AttestationService::new(&mut rng);
    let mut cascade = CascadeCoordinator::with_topology(
        SIGNATURE.to_vec(),
        Box::new(FreeRoute::new(3, 1, 3, seed)) as Box<dyn CascadeTopology>,
        seed,
        FailurePolicy::Abort,
        &service,
        &mut rng,
    )
    .unwrap();
    if let Some(t) = telemetry {
        cascade.attach_telemetry(t.clone());
    }
    let updates = synth_rounds(&mut rng, 1).pop().unwrap();
    cascade.run_round(&updates, &mut rng).unwrap()
}

#[test]
fn exported_telemetry_adds_zero_linkage_to_the_collusion_adversary() {
    const SEED: u64 = 2024;
    let telemetry = Registry::with_virtual_clock(VirtualClock::new()).shared();
    let observed = routed_round(SEED, Some(&telemetry));
    let baseline = routed_round(SEED, None);

    // The rounds are identical — attachment perturbs nothing the
    // adversary can see — so for every colluding subset the report
    // computed *with the telemetry-bearing round* equals the
    // no-telemetry one, link for link and set for set.
    for mask in 0u32..(1 << 3) {
        let colluding: Vec<usize> = (0..3).filter(|h| mask & (1 << h) != 0).collect();
        let with_telemetry = analyze_routed_collusion(
            &routed_views(&observed, &colluding),
            CLIENTS,
            SIGNATURE.len(),
        );
        let without = analyze_routed_collusion(
            &routed_views(&baseline, &colluding),
            CLIENTS,
            SIGNATURE.len(),
        );
        assert_eq!(
            with_telemetry, without,
            "telemetry attachment changed the adversary's report for subset {colluding:?}"
        );
    }

    // And the snapshot itself offers no new axis to condition on: the
    // format checker enforces the static cardinality bound, and no
    // per-entity label axis appears anywhere in the export.
    let text = telemetry.snapshot().to_prometheus();
    let summary = validate_prometheus(&text).unwrap();
    assert!(summary.families > 0, "the round should have left metrics");
    for axis in FORBIDDEN_LABEL_AXES {
        assert!(
            !text.contains(&format!("{axis}=")),
            "exported text contains forbidden label axis {axis:?}"
        );
    }
}

#[test]
fn snapshots_are_invariant_under_client_permutation() {
    // Two rounds over the same cascade seed whose client→slot assignment
    // is reversed: every aggregate the registry exports (counts, bytes,
    // group-size distribution) is identical, so an adversary holding the
    // snapshot learns nothing about which client sat in which slot.
    let drive = |reverse: bool| {
        let telemetry = Registry::with_virtual_clock(VirtualClock::new()).shared();
        let mut rng = StdRng::seed_from_u64(99);
        let service = AttestationService::new(&mut rng);
        let mut cascade = CascadeCoordinator::linear(
            SIGNATURE.to_vec(),
            3,
            99,
            FailurePolicy::Abort,
            &service,
            &mut rng,
        )
        .unwrap();
        cascade.attach_telemetry(telemetry.clone());
        let mut updates = synth_rounds(&mut rng, 1).pop().unwrap();
        if reverse {
            updates.reverse();
        }
        cascade.run_round(&updates, &mut rng).unwrap();
        telemetry.snapshot().to_prometheus()
    };
    assert_eq!(
        drive(false),
        drive(true),
        "permuting the client order changed the exported aggregates"
    );
}
