//! Known-answer tests pinning every hand-rolled primitive against published
//! vectors, exercised through the crate's *public* API (the per-module unit
//! tests cover internals; this suite guards the exported surface).
//!
//! Sources: FIPS 180-4 / NIST examples (SHA-256), RFC 4231 (HMAC-SHA256),
//! RFC 5869 (HKDF), RFC 7748 (X25519), RFC 8439 (ChaCha20).

use mixnn_crypto::hmac::{hkdf, hmac_sha256};
use mixnn_crypto::{chacha20, sha256, x25519};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Vec<u8> {
    let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    assert!(s.len().is_multiple_of(2), "odd-length hex string");
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
        .collect()
}

fn unhex32(s: &str) -> [u8; 32] {
    unhex(s).try_into().unwrap()
}

// ---------------------------------------------------------------------------
// SHA-256 — FIPS 180-4 examples
// ---------------------------------------------------------------------------

#[test]
fn sha256_fips_one_block_message() {
    assert_eq!(
        hex(&sha256::digest(b"abc")),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    );
}

#[test]
fn sha256_fips_empty_message() {
    assert_eq!(
        hex(&sha256::digest(b"")),
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    );
}

#[test]
fn sha256_fips_two_block_message() {
    assert_eq!(
        hex(&sha256::digest(
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        )),
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    );
}

#[test]
fn sha256_streaming_matches_oneshot_on_fips_input() {
    let message = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
                    hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
    let mut hasher = sha256::Sha256::new();
    for chunk in message.chunks(7) {
        hasher.update(chunk);
    }
    let streamed = hasher.finalize();
    assert_eq!(
        hex(&streamed),
        "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
    );
    assert_eq!(streamed, sha256::digest(message));
}

// ---------------------------------------------------------------------------
// HMAC-SHA256 — RFC 4231 (cases 4, 5 and 7 are not covered by the unit
// tests; 1–3 pin the public API against the same vectors the units use)
// ---------------------------------------------------------------------------

#[test]
fn hmac_rfc4231_case_1() {
    let tag = hmac_sha256(&[0x0b; 20], b"Hi There");
    assert_eq!(
        hex(&tag),
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    );
}

#[test]
fn hmac_rfc4231_case_2() {
    let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
    assert_eq!(
        hex(&tag),
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    );
}

#[test]
fn hmac_rfc4231_case_3() {
    let tag = hmac_sha256(&[0xaa; 20], &[0xdd; 50]);
    assert_eq!(
        hex(&tag),
        "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    );
}

#[test]
fn hmac_rfc4231_case_4() {
    let key: Vec<u8> = (0x01..=0x19).collect();
    let tag = hmac_sha256(&key, &[0xcd; 50]);
    assert_eq!(
        hex(&tag),
        "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
    );
}

#[test]
fn hmac_rfc4231_case_5_truncated() {
    // The RFC publishes only the first 128 bits of this tag.
    let tag = hmac_sha256(&[0x0c; 20], b"Test With Truncation");
    assert_eq!(hex(&tag[..16]), "a3b6167473100ee06e0c796c2955552b");
}

#[test]
fn hmac_rfc4231_case_6_long_key() {
    let tag = hmac_sha256(
        &[0xaa; 131],
        b"Test Using Larger Than Block-Size Key - Hash Key First",
    );
    assert_eq!(
        hex(&tag),
        "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    );
}

#[test]
fn hmac_rfc4231_case_7_long_key_and_data() {
    let tag = hmac_sha256(
        &[0xaa; 131],
        &b"This is a test using a larger than block-size key and a larger t\
           han block-size data. The key needs to be hashed before being use\
           d by the HMAC algorithm."[..],
    );
    assert_eq!(
        hex(&tag),
        "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
    );
}

// ---------------------------------------------------------------------------
// HKDF — RFC 5869 test case 1
// ---------------------------------------------------------------------------

#[test]
fn hkdf_rfc5869_case_1() {
    let ikm = [0x0b; 22];
    let salt = unhex("000102030405060708090a0b0c");
    let info = unhex("f0f1f2f3f4f5f6f7f8f9");
    let okm = hkdf(&salt, &ikm, &info, 42);
    assert_eq!(
        hex(&okm),
        "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf\
         34007208d5b887185865"
    );
}

// ---------------------------------------------------------------------------
// X25519 — RFC 7748
// ---------------------------------------------------------------------------

#[test]
fn x25519_rfc7748_vector_1() {
    let scalar = unhex32("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
    let point = unhex32("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
    assert_eq!(
        hex(&x25519::x25519(&scalar, &point)),
        "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
    );
}

#[test]
fn x25519_rfc7748_vector_2() {
    let scalar = unhex32("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
    let point = unhex32("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
    assert_eq!(
        hex(&x25519::x25519(&scalar, &point)),
        "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
    );
}

#[test]
fn x25519_rfc7748_diffie_hellman() {
    let alice_secret = unhex32("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
    let bob_secret = unhex32("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
    let alice_public = x25519::public_key(&alice_secret);
    let bob_public = x25519::public_key(&bob_secret);
    assert_eq!(
        hex(&alice_public),
        "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
    );
    assert_eq!(
        hex(&bob_public),
        "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
    );
    let shared_ab = x25519::x25519(&alice_secret, &bob_public);
    let shared_ba = x25519::x25519(&bob_secret, &alice_public);
    assert_eq!(shared_ab, shared_ba);
    assert_eq!(
        hex(&shared_ab),
        "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
    );
}

// ---------------------------------------------------------------------------
// ChaCha20 — RFC 8439
// ---------------------------------------------------------------------------

#[test]
fn chacha20_rfc8439_keystream_block() {
    // §2.3.2: encrypting all-zero bytes yields the raw keystream block.
    let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
    let nonce = unhex("000000090000004a00000000").try_into().unwrap();
    let mut block = [0u8; 64];
    chacha20::xor_keystream(&key, &nonce, 1, &mut block);
    assert_eq!(
        hex(&block),
        "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
         d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
    );
}

#[test]
fn chacha20_rfc8439_sunscreen_encryption() {
    // §2.4.2: the "Ladies and Gentlemen" plaintext under counter 1.
    let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
    let nonce = unhex("000000000000004a00000000").try_into().unwrap();
    let mut data = b"Ladies and Gentlemen of the class of '99: If I could \
                     offer you only one tip for the future, sunscreen would be it."
        .to_vec();
    chacha20::xor_keystream(&key, &nonce, 1, &mut data);
    assert_eq!(
        hex(&data),
        "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
         f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
         07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
         5af90bbf74a35be6b40b8eedf2785e42874d"
    );
    // Decryption is the same keystream XOR.
    chacha20::xor_keystream(&key, &nonce, 1, &mut data);
    assert!(data.starts_with(b"Ladies and Gentlemen"));
}
