//! Property tests pinning the batched kernels to their scalar
//! definitions through the public API:
//!
//! * [`SealedBox::open_batch`] must agree with per-envelope
//!   [`SealedBox::open`] element-wise — including when tampered,
//!   truncated and low-order envelopes are interleaved with good ones
//!   mid-batch;
//! * the multi-block ChaCha20 kernel must produce the same keystream as
//!   block-at-a-time application at every length around the 64 B block
//!   and 256 B quad-batch boundaries.

use mixnn_crypto::chacha20::{ChaCha20, KEY_LEN, NONCE_LEN};
use mixnn_crypto::sealed_box::OVERHEAD;
use mixnn_crypto::{KeyPair, SealedBox};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    /// Batched opening is element-wise identical to scalar opening, for
    /// any mix of intact, tampered, truncated and low-order envelopes at
    /// any positions in the batch.
    #[test]
    fn open_batch_matches_per_envelope_open(
        seed in 0u64..1000,
        count in 1usize..9,
        corruption in proptest::collection::vec(0u8..4, 9),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let recipient = KeyPair::generate(&mut rng);
        let sealed: Vec<Vec<u8>> = (0..count)
            .map(|i| {
                let len = (seed as usize + i * 37) % 200;
                let msg: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
                let mut blob = SealedBox::seal(&msg, recipient.public(), &mut rng).unwrap();
                match corruption[i] {
                    1 => {
                        // Tamper with one ciphertext/tag byte.
                        let idx = (seed as usize + i) % blob.len();
                        blob[idx] ^= 0x80;
                    }
                    2 => blob.truncate((seed as usize + i) % OVERHEAD), // undersized
                    3 => blob[..32].fill(0), // low-order ephemeral key
                    _ => {}
                }
                blob
            })
            .collect();

        let batched = SealedBox::open_batch(&sealed, &recipient);
        prop_assert_eq!(batched.len(), sealed.len());
        for (i, (got, blob)) in batched.iter().zip(&sealed).enumerate() {
            let scalar = SealedBox::open(blob, &recipient);
            prop_assert_eq!(got, &scalar, "envelope {} (corruption {})", i, corruption[i]);
            // Sanity: the intended corruption actually produced a failure.
            if corruption[i] != 0 {
                prop_assert!(got.is_err(), "envelope {} should have failed", i);
            }
        }
    }

    /// One whole-buffer `apply_keystream` call (which engages the
    /// four-block kernel at >= 256 B) equals block-at-a-time application
    /// of the same cipher state, at every length around the block and
    /// quad boundaries.
    #[test]
    fn chacha20_whole_buffer_matches_blockwise(
        seed in 0u64..1000,
        len in 0usize..1200,
        counter in 0u32..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc4ac);
        let mut key = [0u8; KEY_LEN];
        let mut nonce = [0u8; NONCE_LEN];
        rng.fill(&mut key);
        rng.fill(&mut nonce);
        // Exercise the exact boundary lengths on every run as well as the
        // drawn one.
        for len in [len, 63, 64, 65, 128, 255, 256, 257, 512] {
            let plain: Vec<u8> = (0..len).map(|_| rng.gen()).collect();

            let mut whole = plain.clone();
            ChaCha20::new(&key, &nonce, counter).apply_keystream(&mut whole);

            let mut blockwise = plain.clone();
            let mut cipher = ChaCha20::new(&key, &nonce, counter);
            for chunk in blockwise.chunks_mut(64) {
                // 64 B per call stays on the scalar single-block path.
                cipher.apply_keystream(chunk);
            }
            prop_assert_eq!(&whole, &blockwise, "len {}", len);
        }
    }
}
