//! X25519 Diffie–Hellman over Curve25519 (RFC 7748).
//!
//! Participants derive a shared secret with the enclave's public key; the
//! sealed box then encrypts model updates under keys derived from that
//! secret. The implementation follows the RFC 7748 Montgomery ladder with
//! branch-free conditional swaps and radix-2⁵¹ field arithmetic
//! (five 51-bit limbs, u128 intermediate products), validated against the
//! RFC test vectors including the iterated-scalar-multiplication test.
//!
//! The field layer carries the performance: a dedicated `Fe::square`
//! (10 wide multiplies instead of the generic 25) feeds both the ladder
//! — whose per-bit step is square-heavy — and the addition-chain
//! `Fe::invert` (254 squarings + 11 multiplications, down from the
//! naive Fermat loop's 255 + 128). [`x25519_batch`] amortizes further:
//! one fixed scalar against many points shares a single clamp and bit
//! schedule, and Montgomery's trick folds the per-point final inversion
//! into one inversion plus three multiplications per point. On AVX-512
//! IFMA hosts the shared bit schedule also unlocks an eight-lane
//! `vpmadd52` ladder kernel (the private `ifma` module), bit-identical
//! to the scalar path.

/// Length of scalars, points and shared secrets in bytes.
pub const KEY_LEN: usize = 32;

/// The Curve25519 base point (u = 9).
pub const BASEPOINT: [u8; KEY_LEN] = {
    let mut b = [0u8; KEY_LEN];
    b[0] = 9;
    b
};

const MASK51: u64 = (1u64 << 51) - 1;
const MASK51_128: u128 = (1u128 << 51) - 1;

/// Field element of GF(2²⁵⁵ − 19) in radix-2⁵¹ representation.
///
/// Invariants: after [`Fe::mul`]/[`Fe::square`]/[`Fe::mul_small`] limbs are
/// `< 2⁵²`; [`Fe::add`] outputs `< 2⁵³`; [`Fe::sub`] outputs `< 2⁵⁴`.
/// [`Fe::mul`] accepts limbs up to `2⁵⁴`, so any two levels of add/sub can
/// feed a multiplication, which the ladder respects.
#[derive(Debug, Clone, Copy)]
struct Fe([u64; 5]);

impl Fe {
    const ZERO: Fe = Fe([0; 5]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    /// Parses a little-endian 32-byte string, ignoring the top bit (RFC
    /// 7748 §5).
    fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load = |b: &[u8]| u64::from_le_bytes(b[..8].try_into().expect("8 bytes"));
        Fe([
            load(&bytes[0..8]) & MASK51,
            (load(&bytes[6..14]) >> 3) & MASK51,
            (load(&bytes[12..20]) >> 6) & MASK51,
            (load(&bytes[19..27]) >> 1) & MASK51,
            (load(&bytes[24..32]) >> 12) & MASK51,
        ])
    }

    /// Serializes with full canonical reduction modulo p.
    fn to_bytes(self) -> [u8; 32] {
        let mut h = self.0;
        // Two carry sweeps bring every limb below 2⁵² with the wraparound
        // folded in.
        for _ in 0..2 {
            let mut c;
            c = h[0] >> 51;
            h[0] &= MASK51;
            h[1] += c;
            c = h[1] >> 51;
            h[1] &= MASK51;
            h[2] += c;
            c = h[2] >> 51;
            h[2] &= MASK51;
            h[3] += c;
            c = h[3] >> 51;
            h[3] &= MASK51;
            h[4] += c;
            c = h[4] >> 51;
            h[4] &= MASK51;
            h[0] += 19 * c;
        }
        // Compute q = 1 iff h >= p, by checking whether h + 19 carries past
        // bit 255.
        let mut q = (h[0] + 19) >> 51;
        q = (h[1] + q) >> 51;
        q = (h[2] + q) >> 51;
        q = (h[3] + q) >> 51;
        q = (h[4] + q) >> 51;
        // h := h - q*p  ==  h + 19q, then drop bit 255.
        h[0] += 19 * q;
        let mut c;
        c = h[0] >> 51;
        h[0] &= MASK51;
        h[1] += c;
        c = h[1] >> 51;
        h[1] &= MASK51;
        h[2] += c;
        c = h[2] >> 51;
        h[2] &= MASK51;
        h[3] += c;
        c = h[3] >> 51;
        h[3] &= MASK51;
        h[4] += c;
        h[4] &= MASK51;

        let mut out = [0u8; 32];
        out[0..8].copy_from_slice(&(h[0] | (h[1] << 51)).to_le_bytes());
        out[8..16].copy_from_slice(&((h[1] >> 13) | (h[2] << 38)).to_le_bytes());
        out[16..24].copy_from_slice(&((h[2] >> 26) | (h[3] << 25)).to_le_bytes());
        out[24..32].copy_from_slice(&((h[3] >> 39) | (h[4] << 12)).to_le_bytes());
        out
    }

    fn add(&self, other: &Fe) -> Fe {
        let mut r = [0u64; 5];
        for (limb, (&a, &b)) in r.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            *limb = a + b;
        }
        Fe(r)
    }

    /// `self - other`, biased by 2p to stay non-negative.
    fn sub(&self, other: &Fe) -> Fe {
        // 2p in radix-2⁵¹: (2⁵² − 38, 2⁵² − 2, …).
        const TWO_P: [u64; 5] = [
            0x000f_ffff_ffff_ffda,
            0x000f_ffff_ffff_fffe,
            0x000f_ffff_ffff_fffe,
            0x000f_ffff_ffff_fffe,
            0x000f_ffff_ffff_fffe,
        ];
        let mut r = [0u64; 5];
        for i in 0..5 {
            r[i] = self.0[i] + TWO_P[i] - other.0[i];
        }
        Fe(r)
    }

    fn mul(&self, other: &Fe) -> Fe {
        let a: [u128; 5] = [
            u128::from(self.0[0]),
            u128::from(self.0[1]),
            u128::from(self.0[2]),
            u128::from(self.0[3]),
            u128::from(self.0[4]),
        ];
        let b: [u128; 5] = [
            u128::from(other.0[0]),
            u128::from(other.0[1]),
            u128::from(other.0[2]),
            u128::from(other.0[3]),
            u128::from(other.0[4]),
        ];
        let mut r = [0u128; 5];
        r[0] = a[0] * b[0] + 19 * (a[1] * b[4] + a[2] * b[3] + a[3] * b[2] + a[4] * b[1]);
        r[1] = a[0] * b[1] + a[1] * b[0] + 19 * (a[2] * b[4] + a[3] * b[3] + a[4] * b[2]);
        r[2] = a[0] * b[2] + a[1] * b[1] + a[2] * b[0] + 19 * (a[3] * b[4] + a[4] * b[3]);
        r[3] = a[0] * b[3] + a[1] * b[2] + a[2] * b[1] + a[3] * b[0] + 19 * (a[4] * b[4]);
        r[4] = a[0] * b[4] + a[1] * b[3] + a[2] * b[2] + a[3] * b[1] + a[4] * b[0];
        Fe::carry(r)
    }

    /// Dedicated squaring: the symmetric cross terms collapse 25 wide
    /// multiplies to 10. Accepts the same limb bounds as [`Fe::mul`]
    /// (up to 2⁵⁴): doubles stay below 2⁵⁵ and 19-folds below 2⁵⁹, so
    /// every product is a single 64×64→128 multiply.
    fn square(&self) -> Fe {
        let [a0, a1, a2, a3, a4] = self.0;
        let d0 = a0 << 1;
        let d1 = a1 << 1;
        let n3 = a3 * 19;
        let n4 = a4 * 19;
        let m = |x: u64, y: u64| u128::from(x) * u128::from(y);
        Fe::carry([
            m(a0, a0) + 2 * (m(a1, n4) + m(a2, n3)),
            m(d0, a1) + 2 * m(a2, n4) + m(a3, n3),
            m(d0, a2) + m(a1, a1) + 2 * m(a3, n4),
            m(d0, a3) + m(d1, a2) + m(a4, n4),
            m(d0, a4) + m(d1, a3) + m(a2, a2),
        ])
    }

    /// `self` squared `n` times.
    fn square_n(&self, n: u32) -> Fe {
        let mut r = *self;
        for _ in 0..n {
            r = r.square();
        }
        r
    }

    /// Whether this element is zero mod p.
    fn is_zero(&self) -> bool {
        self.to_bytes() == [0u8; 32]
    }

    fn mul_small(&self, s: u32) -> Fe {
        let mut r = [0u128; 5];
        for (limb, &a) in r.iter_mut().zip(self.0.iter()) {
            *limb = u128::from(a) * u128::from(s);
        }
        Fe::carry(r)
    }

    fn carry(mut r: [u128; 5]) -> Fe {
        let mut c: u128;
        c = r[0] >> 51;
        r[0] &= MASK51_128;
        r[1] += c;
        c = r[1] >> 51;
        r[1] &= MASK51_128;
        r[2] += c;
        c = r[2] >> 51;
        r[2] &= MASK51_128;
        r[3] += c;
        c = r[3] >> 51;
        r[3] &= MASK51_128;
        r[4] += c;
        c = r[4] >> 51;
        r[4] &= MASK51_128;
        r[0] += 19 * c;
        // One more sweep for the wraparound carry.
        c = r[0] >> 51;
        r[0] &= MASK51_128;
        r[1] += c;
        Fe([
            r[0] as u64,
            r[1] as u64,
            r[2] as u64,
            r[3] as u64,
            r[4] as u64,
        ])
    }

    /// Branch-free conditional swap: swaps `a` and `b` iff `swap == 1`.
    fn cswap(swap: u64, a: &mut Fe, b: &mut Fe) {
        let mask = 0u64.wrapping_sub(swap);
        for i in 0..5 {
            let t = mask & (a.0[i] ^ b.0[i]);
            a.0[i] ^= t;
            b.0[i] ^= t;
        }
    }

    /// Multiplicative inverse via Fermat: `self^(p−2)`, p−2 = 2²⁵⁵ − 21,
    /// computed with the standard Curve25519 addition chain (254
    /// squarings + 11 multiplications). `invert(0) = 0`, which the
    /// ladder relies on for low-order inputs.
    fn invert(&self) -> Fe {
        let z2 = self.square();
        let z9 = z2.square_n(2).mul(self);
        let z11 = z9.mul(&z2);
        // Exponents below name the all-ones run length: p5 = z^(2⁵ − 1).
        let p5 = z11.square().mul(&z9);
        let p10 = p5.square_n(5).mul(&p5);
        let p20 = p10.square_n(10).mul(&p10);
        let p40 = p20.square_n(20).mul(&p20);
        let p50 = p40.square_n(10).mul(&p10);
        let p100 = p50.square_n(50).mul(&p50);
        let p200 = p100.square_n(100).mul(&p100);
        let p250 = p200.square_n(50).mul(&p50);
        // 2²⁵⁵ − 32 + 11 = 2²⁵⁵ − 21.
        p250.square_n(5).mul(&z11)
    }
}

/// Montgomery's trick: inverts every nonzero element of `zs` in place
/// with a single field inversion plus three multiplications per element.
/// Zero entries stay zero, matching `invert(0) = 0` — so a low-order
/// point that collapses the ladder to `z = 0` serializes to the same
/// all-zero output on the batched path as on the scalar one.
fn batch_invert(zs: &mut [Fe]) {
    let mut acc = Fe::ONE;
    let mut prefix = Vec::with_capacity(zs.len());
    for z in zs.iter() {
        prefix.push(acc);
        if !z.is_zero() {
            acc = acc.mul(z);
        }
    }
    let mut inv = acc.invert();
    for (z, pre) in zs.iter_mut().zip(prefix).rev() {
        if z.is_zero() {
            continue;
        }
        let original = *z;
        *z = inv.mul(&pre);
        inv = inv.mul(&original);
    }
}

/// Clamps a 32-byte scalar per RFC 7748 §5.
fn clamp(scalar: &[u8; KEY_LEN]) -> [u8; KEY_LEN] {
    let mut k = *scalar;
    k[0] &= 248;
    k[31] &= 127;
    k[31] |= 64;
    k
}

/// The X25519 function: scalar multiplication on the Montgomery u-line.
///
/// `scalar` is clamped internally; `point` is a u-coordinate. Returns the
/// resulting u-coordinate.
///
/// # Example
///
/// ```
/// use mixnn_crypto::x25519::{x25519, BASEPOINT};
///
/// let alice_secret = [0x11u8; 32];
/// let bob_secret = [0x22u8; 32];
/// let alice_public = x25519(&alice_secret, &BASEPOINT);
/// let bob_public = x25519(&bob_secret, &BASEPOINT);
/// assert_eq!(
///     x25519(&alice_secret, &bob_public),
///     x25519(&bob_secret, &alice_public),
/// );
/// ```
pub fn x25519(scalar: &[u8; KEY_LEN], point: &[u8; KEY_LEN]) -> [u8; KEY_LEN] {
    let k = clamp(scalar);
    let (x2, z2) = ladder(&k, point);
    x2.mul(&z2.invert()).to_bytes()
}

/// Batched X25519: one (clamped-once) scalar against many points, as the
/// sealed box uses it to derive a round's shared secrets from one
/// recipient secret and many ephemeral points.
///
/// The per-point final inversion — the single most expensive field
/// operation — is shared across the batch with Montgomery's trick
/// (`batch_invert`). Outputs are bit-identical to calling [`x25519`]
/// per point: the batched inverses are the same field elements, and
/// serialization is canonical.
///
/// Note the batch inversion branches on which `z` coordinates are zero
/// (public information once the all-zero outputs are rejected by the
/// caller's contributory-behavior check); the per-point ladder itself
/// stays branch-free in the scalar bits.
pub fn x25519_batch(scalar: &[u8; KEY_LEN], points: &[[u8; KEY_LEN]]) -> Vec<[u8; KEY_LEN]> {
    let k = clamp(scalar);
    let mut xs = Vec::with_capacity(points.len());
    let mut zs = Vec::with_capacity(points.len());
    let mut rest = points;
    // On AVX-512 IFMA hosts, run the shared-scalar ladder eight points at
    // a time (padding a short final group with the base point — same pass
    // cost, surplus lanes discarded). Tails too small to pay for a padded
    // pass fall through to the scalar ladder below.
    #[cfg(target_arch = "x86_64")]
    if ifma::available() {
        while rest.len() >= ifma::MIN_POINTS {
            let n = rest.len().min(ifma::LANES);
            let mut lanes = [BASEPOINT; ifma::LANES];
            lanes[..n].copy_from_slice(&rest[..n]);
            let out = unsafe { ifma::ladder8(&k, &lanes) };
            for &(x2, z2) in out.iter().take(n) {
                xs.push(x2);
                zs.push(z2);
            }
            rest = &rest[n..];
        }
    }
    for point in rest {
        let (x2, z2) = ladder(&k, point);
        xs.push(x2);
        zs.push(z2);
    }
    batch_invert(&mut zs);
    xs.iter()
        .zip(&zs)
        .map(|(x2, z2_inv)| x2.mul(z2_inv).to_bytes())
        .collect()
}

/// The Montgomery ladder core: projective `(x, z)` of `k · point` for an
/// already-clamped scalar, leaving the final inversion to the caller
/// (immediate for [`x25519`], batched for [`x25519_batch`]).
fn ladder(k: &[u8; KEY_LEN], point: &[u8; KEY_LEN]) -> (Fe, Fe) {
    let x1 = Fe::from_bytes(point);
    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u64;

    for t in (0..255).rev() {
        let k_t = u64::from((k[t / 8] >> (t % 8)) & 1);
        swap ^= k_t;
        Fe::cswap(swap, &mut x2, &mut x3);
        Fe::cswap(swap, &mut z2, &mut z3);
        swap = k_t;

        let a = x2.add(&z2);
        let aa = a.square();
        let b = x2.sub(&z2);
        let bb = b.square();
        let e = aa.sub(&bb);
        let c = x3.add(&z3);
        let d = x3.sub(&z3);
        let da = d.mul(&a);
        let cb = c.mul(&b);
        x3 = da.add(&cb).square();
        z3 = x1.mul(&da.sub(&cb).square());
        x2 = aa.mul(&bb);
        // a24 = (486662 − 2) / 4 = 121665.
        z2 = e.mul(&aa.add(&e.mul_small(121_665)));
    }
    Fe::cswap(swap, &mut x2, &mut x3);
    Fe::cswap(swap, &mut z2, &mut z3);
    (x2, z2)
}

/// AVX-512 IFMA eight-point Montgomery ladder.
///
/// [`x25519_batch`] runs one clamped scalar against many points, so the
/// ladder's branch-free swap schedule is identical across points — eight
/// of them fit the 512-bit `vpmadd52` lanes in lockstep. Lane field
/// elements use radix-2⁴³ (six limbs): `vpmadd52` truncates operands to
/// 52 bits, and the nine bits of headroom above a carried 43-bit limb let
/// one add/sub level feed a multiplication directly — only multiply
/// outputs are carried, mirroring the scalar radix-2⁵¹ discipline.
///
/// A position-`k` product splits at bit 52 (`vpmadd52lo`/`hi`); its high
/// half lands at bit 9 of position `k + 1`. Positions ≥ 6 fold back by
/// 2²⁵⁸ ≡ 8·19 = 152 (mod p). Lane outputs convert to the scalar [`Fe`]
/// for the existing Montgomery-trick batched inversion, so serialization
/// stays canonical and the results are bit-identical to the scalar path.
#[cfg(target_arch = "x86_64")]
mod ifma {
    use super::{Fe, KEY_LEN};
    use core::arch::x86_64::*;
    use std::sync::OnceLock;

    /// Points processed per ladder pass.
    pub const LANES: usize = 8;
    /// Smallest batch worth a (padded) vector pass: one pass costs about
    /// two scalar ladders, so below four real points the scalar loop wins.
    pub const MIN_POINTS: usize = 4;

    const MASK43: u64 = (1 << 43) - 1;
    /// 2²⁵⁸ mod p = 8 · 19.
    const FOLD: u64 = 152;
    /// (486662 − 2) / 4, the ladder's `a24` constant.
    const A24: u64 = 121_665;
    /// 16p in radix-2⁴³: the subtraction bias. Every limb exceeds any
    /// carried subtrahend limb (`< 2⁴³ + 2²⁷`), so lanes never underflow.
    const SIXTEEN_P: [u64; 6] = [
        (1 << 44) - 304,
        (1 << 44) - 2,
        (1 << 44) - 2,
        (1 << 44) - 2,
        (1 << 44) - 2,
        (1 << 44) - 2,
    ];

    /// Whether the running CPU has the required AVX-512 subsets (cached).
    pub fn available() -> bool {
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx512ifma")
                && std::arch::is_x86_feature_detected!("avx512dq")
        })
    }

    /// Eight field elements in radix-2⁴³: register `i` holds limb `i` of
    /// every lane.
    #[derive(Clone, Copy)]
    struct FeV([__m512i; 6]);

    #[target_feature(enable = "avx512f,avx512dq,avx512ifma")]
    unsafe fn splat(v: u64) -> __m512i {
        _mm512_set1_epi64(v as i64)
    }

    #[target_feature(enable = "avx512f,avx512dq,avx512ifma")]
    unsafe fn fev_splat(v: u64) -> FeV {
        let mut r = FeV([_mm512_setzero_si512(); 6]);
        r.0[0] = splat(v);
        r
    }

    /// Limb-wise sum; inputs carried (`< 2⁴⁴`), output `< 2⁴⁵`.
    #[target_feature(enable = "avx512f,avx512dq,avx512ifma")]
    unsafe fn add(a: &FeV, b: &FeV) -> FeV {
        let mut r = *a;
        for (r, b) in r.0.iter_mut().zip(&b.0) {
            *r = _mm512_add_epi64(*r, *b);
        }
        r
    }

    /// `a − b`, biased by 16p to stay non-negative; output `< 2⁴⁶`.
    #[target_feature(enable = "avx512f,avx512dq,avx512ifma")]
    unsafe fn sub(a: &FeV, b: &FeV) -> FeV {
        let mut r = *a;
        for ((r, b), &p) in r.0.iter_mut().zip(&b.0).zip(&SIXTEEN_P) {
            *r = _mm512_sub_epi64(_mm512_add_epi64(*r, splat(p)), *b);
        }
        r
    }

    /// One radix-2⁴³ carry sweep with the 2²⁵⁸ ≡ 152 top fold. Accepts
    /// limbs `< 2⁶³`; leaves limbs 1–5 `< 2⁴³` and limb 0 `< 2⁴³ + 2²⁷`.
    #[target_feature(enable = "avx512f,avx512dq,avx512ifma")]
    unsafe fn carry(mut r: [__m512i; 6]) -> FeV {
        let mask = splat(MASK43);
        for k in 0..5 {
            let c = _mm512_srli_epi64::<43>(r[k]);
            r[k] = _mm512_and_si512(r[k], mask);
            r[k + 1] = _mm512_add_epi64(r[k + 1], c);
        }
        let c = _mm512_srli_epi64::<43>(r[5]);
        r[5] = _mm512_and_si512(r[5], mask);
        r[0] = _mm512_add_epi64(r[0], _mm512_mullo_epi64(c, splat(FOLD)));
        FeV(r)
    }

    /// Schoolbook product over `vpmadd52`. Operands up to 2⁴⁶ per limb:
    /// low sums stay below 6·2⁵², shifted high sums below 6·2⁴⁹, and the
    /// 152-fold keeps every accumulator below 2⁶³ for the carry sweep.
    #[target_feature(enable = "avx512f,avx512dq,avx512ifma")]
    unsafe fn mul(a: &FeV, b: &FeV) -> FeV {
        let zero = _mm512_setzero_si512();
        let mut lo = [zero; 12];
        let mut hi = [zero; 12];
        for i in 0..6 {
            for j in 0..6 {
                lo[i + j] = _mm512_madd52lo_epu64(lo[i + j], a.0[i], b.0[j]);
                hi[i + j + 1] = _mm512_madd52hi_epu64(hi[i + j + 1], a.0[i], b.0[j]);
            }
        }
        let fold = splat(FOLD);
        let mut r = [zero; 6];
        for (k, r) in r.iter_mut().enumerate() {
            let at = |p: usize| _mm512_add_epi64(lo[p], _mm512_slli_epi64::<9>(hi[p]));
            *r = _mm512_add_epi64(at(k), _mm512_mullo_epi64(at(k + 6), fold));
        }
        carry(r)
    }

    /// Scalar multiple via `vpmullq` (a 43+17-bit product fits 64 bits).
    #[target_feature(enable = "avx512f,avx512dq,avx512ifma")]
    unsafe fn mul_small(a: &FeV, s: u64) -> FeV {
        let mut r = a.0;
        for r in r.iter_mut() {
            *r = _mm512_mullo_epi64(*r, splat(s));
        }
        carry(r)
    }

    /// Branch-free swap of all lanes at once — the scalar bit, and so the
    /// mask, is shared by every lane.
    #[target_feature(enable = "avx512f,avx512dq,avx512ifma")]
    unsafe fn cswap(mask: __m512i, a: &mut FeV, b: &mut FeV) {
        for (a, b) in a.0.iter_mut().zip(b.0.iter_mut()) {
            let t = _mm512_and_si512(mask, _mm512_xor_si512(*a, *b));
            *a = _mm512_xor_si512(*a, t);
            *b = _mm512_xor_si512(*b, t);
        }
    }

    /// Parses a point into radix-2⁴³ limbs, dropping the top bit exactly
    /// as [`Fe::from_bytes`] does (RFC 7748 §5).
    fn point_limbs(p: &[u8; KEY_LEN]) -> [u64; 6] {
        let load = |b: &[u8]| u64::from_le_bytes(b[..8].try_into().expect("8 bytes"));
        [
            load(&p[0..8]) & MASK43,
            (load(&p[5..13]) >> 3) & MASK43,
            (load(&p[10..18]) >> 6) & MASK43,
            (load(&p[16..24]) >> 1) & MASK43,
            (load(&p[21..29]) >> 4) & MASK43,
            (load(&p[24..32]) >> 23) & ((1 << 40) - 1),
        ]
    }

    /// Reassembles one lane's radix-2⁴³ limbs as a scalar radix-2⁵¹
    /// [`Fe`]; `Fe::carry` absorbs the cross-radix spill.
    fn fe_from_limbs(l: [u64; 6]) -> Fe {
        let mut r = [0u128; 5];
        for (k, &limb) in l.iter().enumerate() {
            let bit = 43 * k;
            r[bit / 51] += u128::from(limb) << (bit % 51);
        }
        Fe::carry(r)
    }

    /// The Montgomery ladder over eight points sharing one pre-clamped
    /// scalar. Returns each lane's projective `(x, z)` for the caller's
    /// batched inversion; outputs equal the scalar [`super::ladder`]
    /// lane-for-lane.
    ///
    /// # Safety
    ///
    /// Requires AVX-512 F/DQ/IFMA, i.e. [`available`] returned `true`.
    #[target_feature(enable = "avx512f,avx512dq,avx512ifma")]
    pub unsafe fn ladder8(k: &[u8; KEY_LEN], points: &[[u8; KEY_LEN]; LANES]) -> [(Fe, Fe); LANES] {
        let mut lanes = [[0u64; LANES]; 6];
        for (lane, point) in points.iter().enumerate() {
            for (limbs, &limb) in lanes.iter_mut().zip(&point_limbs(point)) {
                limbs[lane] = limb;
            }
        }
        let x1 = FeV(core::array::from_fn(|i| {
            _mm512_loadu_si512(lanes[i].as_ptr().cast())
        }));

        let mut x2 = fev_splat(1);
        let mut z2 = fev_splat(0);
        let mut x3 = x1;
        let mut z3 = fev_splat(1);
        let mut swap = 0u64;

        for t in (0..255).rev() {
            let k_t = u64::from((k[t / 8] >> (t % 8)) & 1);
            swap ^= k_t;
            let mask = splat(0u64.wrapping_sub(swap));
            cswap(mask, &mut x2, &mut x3);
            cswap(mask, &mut z2, &mut z3);
            swap = k_t;

            let a = add(&x2, &z2);
            let aa = mul(&a, &a);
            let b = sub(&x2, &z2);
            let bb = mul(&b, &b);
            let e = sub(&aa, &bb);
            let c = add(&x3, &z3);
            let d = sub(&x3, &z3);
            let da = mul(&d, &a);
            let cb = mul(&c, &b);
            let s = add(&da, &cb);
            x3 = mul(&s, &s);
            let f = sub(&da, &cb);
            z3 = mul(&x1, &mul(&f, &f));
            x2 = mul(&aa, &bb);
            z2 = mul(&e, &add(&aa, &mul_small(&e, A24)));
        }
        let mask = splat(0u64.wrapping_sub(swap));
        cswap(mask, &mut x2, &mut x3);
        cswap(mask, &mut z2, &mut z3);

        let mut xs = [[0u64; LANES]; 6];
        let mut zs = [[0u64; LANES]; 6];
        for i in 0..6 {
            _mm512_storeu_si512(xs[i].as_mut_ptr().cast(), x2.0[i]);
            _mm512_storeu_si512(zs[i].as_mut_ptr().cast(), z2.0[i]);
        }
        core::array::from_fn(|lane| {
            (
                fe_from_limbs(core::array::from_fn(|i| xs[i][lane])),
                fe_from_limbs(core::array::from_fn(|i| zs[i][lane])),
            )
        })
    }
}

/// Derives the public key for a secret scalar: `x25519(secret, 9)`.
pub fn public_key(secret: &[u8; KEY_LEN]) -> [u8; KEY_LEN] {
    x25519(secret, &BASEPOINT)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex32(s: &str) -> [u8; 32] {
        let v: Vec<u8> = (0..64)
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect();
        v.try_into().unwrap()
    }

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 7748 §5.2, test vector 1.
    #[test]
    fn rfc7748_vector_1() {
        let scalar = unhex32("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let point = unhex32("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        let out = x25519(&scalar, &point);
        assert_eq!(
            hex(&out),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    /// RFC 7748 §5.2, test vector 2.
    #[test]
    fn rfc7748_vector_2() {
        let scalar = unhex32("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let point = unhex32("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        let out = x25519(&scalar, &point);
        assert_eq!(
            hex(&out),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
        );
    }

    /// RFC 7748 §6.1: the full Diffie–Hellman exchange.
    #[test]
    fn rfc7748_diffie_hellman() {
        let alice_priv =
            unhex32("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let bob_priv = unhex32("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let alice_pub = public_key(&alice_priv);
        assert_eq!(
            hex(&alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        let bob_pub = public_key(&bob_priv);
        assert_eq!(
            hex(&bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let shared_a = x25519(&alice_priv, &bob_pub);
        let shared_b = x25519(&bob_priv, &alice_pub);
        assert_eq!(shared_a, shared_b);
        assert_eq!(
            hex(&shared_a),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    /// RFC 7748 §5.2 iterated test, 1 iteration.
    #[test]
    fn rfc7748_iterated_once() {
        let mut k = BASEPOINT;
        let mut u = BASEPOINT;
        let r = x25519(&k, &u);
        u = k;
        k = r;
        let _ = u;
        assert_eq!(
            hex(&k),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
        );
    }

    /// RFC 7748 §5.2 iterated test, 1000 iterations. Slow in debug builds —
    /// run with `cargo test --release -- --ignored` to include it.
    #[test]
    #[ignore = "takes ~10s in debug builds; passes in release"]
    fn rfc7748_iterated_thousand() {
        let mut k = BASEPOINT;
        let mut u = BASEPOINT;
        for _ in 0..1000 {
            let r = x25519(&k, &u);
            u = k;
            k = r;
        }
        assert_eq!(
            hex(&k),
            "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51"
        );
    }

    #[test]
    fn field_round_trip() {
        let bytes = unhex32("0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f10");
        let fe = Fe::from_bytes(&bytes);
        assert_eq!(fe.to_bytes(), bytes);
    }

    #[test]
    fn field_inverse() {
        let bytes = unhex32("0900000000000000000000000000000000000000000000000000000000000000");
        let fe = Fe::from_bytes(&bytes);
        let prod = fe.mul(&fe.invert());
        assert_eq!(prod.to_bytes(), Fe::ONE.to_bytes());
    }

    #[test]
    fn canonical_reduction_of_p_plus_one() {
        // p + 1 must serialize as 1.
        let p_plus_1 = unhex32("eeffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f");
        let fe = Fe::from_bytes(&p_plus_1);
        // from_bytes drops the top bit only; p+1 < 2^255 so it is parsed
        // in full and must reduce to 1 on serialization.
        assert_eq!(fe.to_bytes(), Fe::ONE.to_bytes());
    }

    #[test]
    fn cswap_behaviour() {
        let mut a = Fe([1, 2, 3, 4, 5]);
        let mut b = Fe([9, 8, 7, 6, 5]);
        Fe::cswap(0, &mut a, &mut b);
        assert_eq!(a.0, [1, 2, 3, 4, 5]);
        Fe::cswap(1, &mut a, &mut b);
        assert_eq!(a.0, [9, 8, 7, 6, 5]);
        assert_eq!(b.0, [1, 2, 3, 4, 5]);
    }

    #[test]
    fn clamping_fixes_bits() {
        let k = clamp(&[0xffu8; 32]);
        assert_eq!(k[0] & 7, 0);
        assert_eq!(k[31] & 128, 0);
        assert_eq!(k[31] & 64, 64);
    }

    #[test]
    fn dedicated_square_matches_generic_mul() {
        // Exercise the full limb range the ladder can feed a squaring:
        // raw parses plus add/sub outputs (limbs up to 2⁵⁴).
        let samples = [
            Fe::ZERO,
            Fe::ONE,
            Fe::from_bytes(&[0xffu8; 32]),
            Fe::from_bytes(&unhex32(
                "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcd0f",
            )),
        ];
        for a in &samples {
            for b in &samples {
                let wide = a.add(b).sub(&b.sub(a));
                assert_eq!(wide.square().to_bytes(), wide.mul(&wide).to_bytes());
            }
        }
    }

    #[test]
    fn batch_matches_per_point_scalarmult() {
        let secret = [0x6bu8; 32];
        let points: Vec<[u8; 32]> = (0u8..7)
            .map(|i| public_key(&[i.wrapping_mul(53).wrapping_add(11); 32]))
            .collect();
        let batched = x25519_batch(&secret, &points);
        for (point, out) in points.iter().zip(&batched) {
            assert_eq!(*out, x25519(&secret, point));
        }
        assert!(x25519_batch(&secret, &[]).is_empty());
    }

    #[test]
    fn batch_preserves_low_order_zero_outputs() {
        // u = 0 and u = 1 are low-order points: clamped scalars are
        // multiples of 8, so the ladder collapses to the all-zero output.
        // Mixed into a batch they must neither change nor be changed by
        // their well-formed neighbours.
        let secret = [0x42u8; 32];
        let zero = [0u8; 32];
        let mut one = [0u8; 32];
        one[0] = 1;
        let good = public_key(&[9u8; 32]);
        let points = [good, zero, one, good];
        let batched = x25519_batch(&secret, &points);
        assert_eq!(batched[0], x25519(&secret, &good));
        assert_eq!(batched[1], [0u8; 32]);
        assert_eq!(batched[2], [0u8; 32]);
        assert_eq!(batched[3], batched[0]);
        assert_eq!(x25519(&secret, &zero), [0u8; 32]);
        assert_eq!(x25519(&secret, &one), [0u8; 32]);
    }

    #[test]
    fn batch_matches_per_point_at_every_group_split() {
        // Cover every vector/scalar split the batch driver can take on an
        // IFMA host: below MIN_POINTS (all scalar), exactly one padded
        // group, a full group, full group + scalar tail, full group +
        // padded group. On other hosts this degenerates to scalar-vs-
        // scalar, which must still agree.
        let secret = [0x2du8; 32];
        let points: Vec<[u8; 32]> = (0u8..21)
            .map(|i| public_key(&[i.wrapping_mul(29).wrapping_add(3); 32]))
            .collect();
        for len in [1, 2, 3, 4, 5, 7, 8, 9, 11, 12, 16, 17, 21] {
            let batched = x25519_batch(&secret, &points[..len]);
            for (point, out) in points[..len].iter().zip(&batched) {
                assert_eq!(*out, x25519(&secret, point), "batch len {len}");
            }
        }
    }

    #[test]
    fn batch_matches_per_point_on_edge_points() {
        // Non-canonical and boundary u-coordinates exercise the top-bit
        // masking and reduction of the wide ladder: p − 1, p, p + 1, the
        // all-ones string (top bit set), and 2²⁵⁵ − 1 − 19 ≡ p via the
        // dropped bit.
        let secret = [0x91u8; 32];
        let points = [
            unhex32("ecffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f"),
            unhex32("edffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f"),
            unhex32("eeffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f"),
            unhex32("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"),
            BASEPOINT,
            [0u8; 32],
        ];
        let batched = x25519_batch(&secret, &points);
        for (point, out) in points.iter().zip(&batched) {
            assert_eq!(*out, x25519(&secret, point));
        }
    }

    #[test]
    fn shared_secret_symmetry_random_keys() {
        // A couple of fixed "random" key pairs beyond the RFC vectors.
        for seed in 0u8..4 {
            let a = [seed.wrapping_mul(37).wrapping_add(1); 32];
            let b = [seed.wrapping_mul(91).wrapping_add(7); 32];
            let pa = public_key(&a);
            let pb = public_key(&b);
            assert_eq!(x25519(&a, &pb), x25519(&b, &pa));
        }
    }
}
