//! X25519 Diffie–Hellman over Curve25519 (RFC 7748).
//!
//! Participants derive a shared secret with the enclave's public key; the
//! sealed box then encrypts model updates under keys derived from that
//! secret. The implementation follows the RFC 7748 Montgomery ladder with
//! branch-free conditional swaps and radix-2⁵¹ field arithmetic
//! (five 51-bit limbs, u128 intermediate products), validated against the
//! RFC test vectors including the iterated-scalar-multiplication test.

/// Length of scalars, points and shared secrets in bytes.
pub const KEY_LEN: usize = 32;

/// The Curve25519 base point (u = 9).
pub const BASEPOINT: [u8; KEY_LEN] = {
    let mut b = [0u8; KEY_LEN];
    b[0] = 9;
    b
};

const MASK51: u64 = (1u64 << 51) - 1;
const MASK51_128: u128 = (1u128 << 51) - 1;

/// Field element of GF(2²⁵⁵ − 19) in radix-2⁵¹ representation.
///
/// Invariants: after [`Fe::mul`]/[`Fe::square`]/[`Fe::mul_small`] limbs are
/// `< 2⁵²`; [`Fe::add`] outputs `< 2⁵³`; [`Fe::sub`] outputs `< 2⁵⁴`.
/// [`Fe::mul`] accepts limbs up to `2⁵⁴`, so any two levels of add/sub can
/// feed a multiplication, which the ladder respects.
#[derive(Debug, Clone, Copy)]
struct Fe([u64; 5]);

impl Fe {
    const ZERO: Fe = Fe([0; 5]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    /// Parses a little-endian 32-byte string, ignoring the top bit (RFC
    /// 7748 §5).
    fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load = |b: &[u8]| u64::from_le_bytes(b[..8].try_into().expect("8 bytes"));
        Fe([
            load(&bytes[0..8]) & MASK51,
            (load(&bytes[6..14]) >> 3) & MASK51,
            (load(&bytes[12..20]) >> 6) & MASK51,
            (load(&bytes[19..27]) >> 1) & MASK51,
            (load(&bytes[24..32]) >> 12) & MASK51,
        ])
    }

    /// Serializes with full canonical reduction modulo p.
    fn to_bytes(self) -> [u8; 32] {
        let mut h = self.0;
        // Two carry sweeps bring every limb below 2⁵² with the wraparound
        // folded in.
        for _ in 0..2 {
            let mut c;
            c = h[0] >> 51;
            h[0] &= MASK51;
            h[1] += c;
            c = h[1] >> 51;
            h[1] &= MASK51;
            h[2] += c;
            c = h[2] >> 51;
            h[2] &= MASK51;
            h[3] += c;
            c = h[3] >> 51;
            h[3] &= MASK51;
            h[4] += c;
            c = h[4] >> 51;
            h[4] &= MASK51;
            h[0] += 19 * c;
        }
        // Compute q = 1 iff h >= p, by checking whether h + 19 carries past
        // bit 255.
        let mut q = (h[0] + 19) >> 51;
        q = (h[1] + q) >> 51;
        q = (h[2] + q) >> 51;
        q = (h[3] + q) >> 51;
        q = (h[4] + q) >> 51;
        // h := h - q*p  ==  h + 19q, then drop bit 255.
        h[0] += 19 * q;
        let mut c;
        c = h[0] >> 51;
        h[0] &= MASK51;
        h[1] += c;
        c = h[1] >> 51;
        h[1] &= MASK51;
        h[2] += c;
        c = h[2] >> 51;
        h[2] &= MASK51;
        h[3] += c;
        c = h[3] >> 51;
        h[3] &= MASK51;
        h[4] += c;
        h[4] &= MASK51;

        let mut out = [0u8; 32];
        out[0..8].copy_from_slice(&(h[0] | (h[1] << 51)).to_le_bytes());
        out[8..16].copy_from_slice(&((h[1] >> 13) | (h[2] << 38)).to_le_bytes());
        out[16..24].copy_from_slice(&((h[2] >> 26) | (h[3] << 25)).to_le_bytes());
        out[24..32].copy_from_slice(&((h[3] >> 39) | (h[4] << 12)).to_le_bytes());
        out
    }

    fn add(&self, other: &Fe) -> Fe {
        let mut r = [0u64; 5];
        for (limb, (&a, &b)) in r.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            *limb = a + b;
        }
        Fe(r)
    }

    /// `self - other`, biased by 2p to stay non-negative.
    fn sub(&self, other: &Fe) -> Fe {
        // 2p in radix-2⁵¹: (2⁵² − 38, 2⁵² − 2, …).
        const TWO_P: [u64; 5] = [
            0x000f_ffff_ffff_ffda,
            0x000f_ffff_ffff_fffe,
            0x000f_ffff_ffff_fffe,
            0x000f_ffff_ffff_fffe,
            0x000f_ffff_ffff_fffe,
        ];
        let mut r = [0u64; 5];
        for i in 0..5 {
            r[i] = self.0[i] + TWO_P[i] - other.0[i];
        }
        Fe(r)
    }

    fn mul(&self, other: &Fe) -> Fe {
        let a: [u128; 5] = [
            u128::from(self.0[0]),
            u128::from(self.0[1]),
            u128::from(self.0[2]),
            u128::from(self.0[3]),
            u128::from(self.0[4]),
        ];
        let b: [u128; 5] = [
            u128::from(other.0[0]),
            u128::from(other.0[1]),
            u128::from(other.0[2]),
            u128::from(other.0[3]),
            u128::from(other.0[4]),
        ];
        let mut r = [0u128; 5];
        r[0] = a[0] * b[0] + 19 * (a[1] * b[4] + a[2] * b[3] + a[3] * b[2] + a[4] * b[1]);
        r[1] = a[0] * b[1] + a[1] * b[0] + 19 * (a[2] * b[4] + a[3] * b[3] + a[4] * b[2]);
        r[2] = a[0] * b[2] + a[1] * b[1] + a[2] * b[0] + 19 * (a[3] * b[4] + a[4] * b[3]);
        r[3] = a[0] * b[3] + a[1] * b[2] + a[2] * b[1] + a[3] * b[0] + 19 * (a[4] * b[4]);
        r[4] = a[0] * b[4] + a[1] * b[3] + a[2] * b[2] + a[3] * b[1] + a[4] * b[0];
        Fe::carry(r)
    }

    fn square(&self) -> Fe {
        self.mul(self)
    }

    fn mul_small(&self, s: u32) -> Fe {
        let mut r = [0u128; 5];
        for (limb, &a) in r.iter_mut().zip(self.0.iter()) {
            *limb = u128::from(a) * u128::from(s);
        }
        Fe::carry(r)
    }

    fn carry(mut r: [u128; 5]) -> Fe {
        let mut c: u128;
        c = r[0] >> 51;
        r[0] &= MASK51_128;
        r[1] += c;
        c = r[1] >> 51;
        r[1] &= MASK51_128;
        r[2] += c;
        c = r[2] >> 51;
        r[2] &= MASK51_128;
        r[3] += c;
        c = r[3] >> 51;
        r[3] &= MASK51_128;
        r[4] += c;
        c = r[4] >> 51;
        r[4] &= MASK51_128;
        r[0] += 19 * c;
        // One more sweep for the wraparound carry.
        c = r[0] >> 51;
        r[0] &= MASK51_128;
        r[1] += c;
        Fe([
            r[0] as u64,
            r[1] as u64,
            r[2] as u64,
            r[3] as u64,
            r[4] as u64,
        ])
    }

    /// Branch-free conditional swap: swaps `a` and `b` iff `swap == 1`.
    fn cswap(swap: u64, a: &mut Fe, b: &mut Fe) {
        let mask = 0u64.wrapping_sub(swap);
        for i in 0..5 {
            let t = mask & (a.0[i] ^ b.0[i]);
            a.0[i] ^= t;
            b.0[i] ^= t;
        }
    }

    /// Multiplicative inverse via Fermat: `self^(p−2)`, p−2 = 2²⁵⁵ − 21.
    fn invert(&self) -> Fe {
        let mut exp = [0xffu8; 32];
        exp[0] = 0xeb;
        exp[31] = 0x7f;
        let mut result = Fe::ONE;
        for t in (0..255).rev() {
            result = result.square();
            if (exp[t / 8] >> (t % 8)) & 1 == 1 {
                result = result.mul(self);
            }
        }
        result
    }
}

/// Clamps a 32-byte scalar per RFC 7748 §5.
fn clamp(scalar: &[u8; KEY_LEN]) -> [u8; KEY_LEN] {
    let mut k = *scalar;
    k[0] &= 248;
    k[31] &= 127;
    k[31] |= 64;
    k
}

/// The X25519 function: scalar multiplication on the Montgomery u-line.
///
/// `scalar` is clamped internally; `point` is a u-coordinate. Returns the
/// resulting u-coordinate.
///
/// # Example
///
/// ```
/// use mixnn_crypto::x25519::{x25519, BASEPOINT};
///
/// let alice_secret = [0x11u8; 32];
/// let bob_secret = [0x22u8; 32];
/// let alice_public = x25519(&alice_secret, &BASEPOINT);
/// let bob_public = x25519(&bob_secret, &BASEPOINT);
/// assert_eq!(
///     x25519(&alice_secret, &bob_public),
///     x25519(&bob_secret, &alice_public),
/// );
/// ```
pub fn x25519(scalar: &[u8; KEY_LEN], point: &[u8; KEY_LEN]) -> [u8; KEY_LEN] {
    let k = clamp(scalar);
    let x1 = Fe::from_bytes(point);
    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u64;

    for t in (0..255).rev() {
        let k_t = u64::from((k[t / 8] >> (t % 8)) & 1);
        swap ^= k_t;
        Fe::cswap(swap, &mut x2, &mut x3);
        Fe::cswap(swap, &mut z2, &mut z3);
        swap = k_t;

        let a = x2.add(&z2);
        let aa = a.square();
        let b = x2.sub(&z2);
        let bb = b.square();
        let e = aa.sub(&bb);
        let c = x3.add(&z3);
        let d = x3.sub(&z3);
        let da = d.mul(&a);
        let cb = c.mul(&b);
        x3 = da.add(&cb).square();
        z3 = x1.mul(&da.sub(&cb).square());
        x2 = aa.mul(&bb);
        // a24 = (486662 − 2) / 4 = 121665.
        z2 = e.mul(&aa.add(&e.mul_small(121_665)));
    }
    Fe::cswap(swap, &mut x2, &mut x3);
    Fe::cswap(swap, &mut z2, &mut z3);
    x2.mul(&z2.invert()).to_bytes()
}

/// Derives the public key for a secret scalar: `x25519(secret, 9)`.
pub fn public_key(secret: &[u8; KEY_LEN]) -> [u8; KEY_LEN] {
    x25519(secret, &BASEPOINT)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex32(s: &str) -> [u8; 32] {
        let v: Vec<u8> = (0..64)
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect();
        v.try_into().unwrap()
    }

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 7748 §5.2, test vector 1.
    #[test]
    fn rfc7748_vector_1() {
        let scalar = unhex32("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let point = unhex32("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        let out = x25519(&scalar, &point);
        assert_eq!(
            hex(&out),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    /// RFC 7748 §5.2, test vector 2.
    #[test]
    fn rfc7748_vector_2() {
        let scalar = unhex32("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let point = unhex32("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        let out = x25519(&scalar, &point);
        assert_eq!(
            hex(&out),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
        );
    }

    /// RFC 7748 §6.1: the full Diffie–Hellman exchange.
    #[test]
    fn rfc7748_diffie_hellman() {
        let alice_priv =
            unhex32("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let bob_priv = unhex32("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let alice_pub = public_key(&alice_priv);
        assert_eq!(
            hex(&alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        let bob_pub = public_key(&bob_priv);
        assert_eq!(
            hex(&bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let shared_a = x25519(&alice_priv, &bob_pub);
        let shared_b = x25519(&bob_priv, &alice_pub);
        assert_eq!(shared_a, shared_b);
        assert_eq!(
            hex(&shared_a),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    /// RFC 7748 §5.2 iterated test, 1 iteration.
    #[test]
    fn rfc7748_iterated_once() {
        let mut k = BASEPOINT;
        let mut u = BASEPOINT;
        let r = x25519(&k, &u);
        u = k;
        k = r;
        let _ = u;
        assert_eq!(
            hex(&k),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
        );
    }

    /// RFC 7748 §5.2 iterated test, 1000 iterations. Slow in debug builds —
    /// run with `cargo test --release -- --ignored` to include it.
    #[test]
    #[ignore = "takes ~10s in debug builds; passes in release"]
    fn rfc7748_iterated_thousand() {
        let mut k = BASEPOINT;
        let mut u = BASEPOINT;
        for _ in 0..1000 {
            let r = x25519(&k, &u);
            u = k;
            k = r;
        }
        assert_eq!(
            hex(&k),
            "684cf59ba83309552800ef566f2f4d3c1c3887c49360e3875f2eb94d99532c51"
        );
    }

    #[test]
    fn field_round_trip() {
        let bytes = unhex32("0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f10");
        let fe = Fe::from_bytes(&bytes);
        assert_eq!(fe.to_bytes(), bytes);
    }

    #[test]
    fn field_inverse() {
        let bytes = unhex32("0900000000000000000000000000000000000000000000000000000000000000");
        let fe = Fe::from_bytes(&bytes);
        let prod = fe.mul(&fe.invert());
        assert_eq!(prod.to_bytes(), Fe::ONE.to_bytes());
    }

    #[test]
    fn canonical_reduction_of_p_plus_one() {
        // p + 1 must serialize as 1.
        let p_plus_1 = unhex32("eeffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f");
        let fe = Fe::from_bytes(&p_plus_1);
        // from_bytes drops the top bit only; p+1 < 2^255 so it is parsed
        // in full and must reduce to 1 on serialization.
        assert_eq!(fe.to_bytes(), Fe::ONE.to_bytes());
    }

    #[test]
    fn cswap_behaviour() {
        let mut a = Fe([1, 2, 3, 4, 5]);
        let mut b = Fe([9, 8, 7, 6, 5]);
        Fe::cswap(0, &mut a, &mut b);
        assert_eq!(a.0, [1, 2, 3, 4, 5]);
        Fe::cswap(1, &mut a, &mut b);
        assert_eq!(a.0, [9, 8, 7, 6, 5]);
        assert_eq!(b.0, [1, 2, 3, 4, 5]);
    }

    #[test]
    fn clamping_fixes_bits() {
        let k = clamp(&[0xffu8; 32]);
        assert_eq!(k[0] & 7, 0);
        assert_eq!(k[31] & 128, 0);
        assert_eq!(k[31] & 64, 64);
    }

    #[test]
    fn shared_secret_symmetry_random_keys() {
        // A couple of fixed "random" key pairs beyond the RFC vectors.
        for seed in 0u8..4 {
            let a = [seed.wrapping_mul(37).wrapping_add(1); 32];
            let b = [seed.wrapping_mul(91).wrapping_add(7); 32];
            let pa = public_key(&a);
            let pb = public_key(&b);
            assert_eq!(x25519(&a, &pb), x25519(&b, &pa));
        }
    }
}
