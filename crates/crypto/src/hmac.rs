//! HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//!
//! HMAC authenticates sealed-box ciphertexts (encrypt-then-MAC); HKDF
//! derives the per-message ChaCha20 key and nonce from the X25519 shared
//! secret. Validated against the RFC 4231 and RFC 5869 test vectors.
//!
//! [`HmacKey`] is the reusable form: the ipad/opad key blocks are
//! absorbed into two hasher states once at construction, so every MAC
//! under the same key (HKDF-Expand's block loop, the sealed box's three
//! derivations per envelope) skips two compressions — half the total for
//! the short messages HKDF feeds it.

use crate::sha256::{digest, Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// A precomputed HMAC-SHA256 key schedule.
///
/// Holds the inner and outer hasher states with their ipad/opad key
/// blocks already compressed; [`HmacKey::mac`] clones them instead of
/// re-deriving the key block per call.
///
/// # Example
///
/// ```
/// use mixnn_crypto::hmac::{hmac_sha256, HmacKey};
///
/// let key = HmacKey::new(b"key");
/// assert_eq!(key.mac(b"message"), hmac_sha256(b"key", b"message"));
/// ```
#[derive(Debug, Clone)]
pub struct HmacKey {
    inner: Sha256,
    outer: Sha256,
}

impl HmacKey {
    /// Builds the schedule for `key`. Keys longer than the SHA-256 block
    /// size are hashed first, per RFC 2104.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            key_block[..DIGEST_LEN].copy_from_slice(&digest(key));
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0x36u8; BLOCK_LEN];
        let mut opad = [0x5cu8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] ^= key_block[i];
            opad[i] ^= key_block[i];
        }

        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacKey { inner, outer }
    }

    /// Computes `HMAC-SHA256(key, message)`.
    pub fn mac(&self, message: &[u8]) -> [u8; DIGEST_LEN] {
        self.mac_parts(&[message])
    }

    /// MACs the concatenation of `parts` without materializing it — the
    /// sealed box authenticates `eph_pub ‖ ciphertext` this way.
    pub fn mac_parts(&self, parts: &[&[u8]]) -> [u8; DIGEST_LEN] {
        let mut inner = self.inner.clone();
        for part in parts {
            inner.update(part);
        }
        let inner_digest = inner.finalize();
        let mut outer = self.outer.clone();
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the SHA-256 block size are hashed first, per RFC 2104.
/// For repeated MACs under one key, build an [`HmacKey`] instead.
///
/// # Example
///
/// ```
/// let tag = mixnn_crypto::hmac::hmac_sha256(b"key", b"message");
/// assert_eq!(tag.len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    HmacKey::new(key).mac(message)
}

/// HKDF-Extract: `PRK = HMAC(salt, ikm)`.
///
/// An empty salt behaves as a zero-filled digest-length salt per RFC 5869.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    if salt.is_empty() {
        hmac_sha256(&[0u8; DIGEST_LEN], ikm)
    } else {
        hmac_sha256(salt, ikm)
    }
}

/// HKDF-Expand: derives `len` bytes of output keying material from a PRK
/// and context `info`.
///
/// # Panics
///
/// Panics if `len > 255 * 32` (the RFC 5869 limit — a programming error for
/// our fixed-size derivations).
pub fn hkdf_expand(prk: &[u8; DIGEST_LEN], info: &[u8], len: usize) -> Vec<u8> {
    hkdf_expand_keyed(&HmacKey::new(prk), info, len)
}

/// HKDF-Expand with a prebuilt PRK schedule, so several expansions from
/// one extract (the sealed box derives three) share the key setup.
///
/// # Panics
///
/// Panics if `len > 255 * 32`, as [`hkdf_expand`] does.
pub fn hkdf_expand_keyed(prk: &HmacKey, info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * DIGEST_LEN, "hkdf output too long");
    let mut okm = Vec::with_capacity(len);
    let mut t: Option<[u8; DIGEST_LEN]> = None;
    let mut counter = 1u8;
    while okm.len() < len {
        let block = match &t {
            Some(prev) => prk.mac_parts(&[prev, info, &[counter]]),
            None => prk.mac_parts(&[info, &[counter]]),
        };
        let take = (len - okm.len()).min(DIGEST_LEN);
        okm.extend_from_slice(&block[..take]);
        t = Some(block);
        counter = counter.checked_add(1).expect("hkdf counter overflow");
    }
    okm
}

/// Convenience: HKDF extract-then-expand in one call.
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    let prk = hkdf_extract(salt, ikm);
    hkdf_expand(&prk, info, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case_1() {
        let key = vec![0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20×0xaa key, 50×0xdd data.
    #[test]
    fn rfc4231_case_3() {
        let key = vec![0xaa; 20];
        let data = vec![0xdd; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn rfc4231_case_6_long_key() {
        let key = vec![0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case_1() {
        let ikm = vec![0x0b; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = hkdf_expand(&prk, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 test case 3: empty salt and info.
    #[test]
    fn rfc5869_case_3_empty_salt_info() {
        let ikm = vec![0x0b; 22];
        let okm = hkdf(&[], &ikm, &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn hkdf_lengths() {
        let okm = hkdf(b"salt", b"ikm", b"info", 100);
        assert_eq!(okm.len(), 100);
        let short = hkdf(b"salt", b"ikm", b"info", 5);
        assert_eq!(short.len(), 5);
        assert_eq!(&okm[..5], &short[..]);
    }

    /// The precomputed schedule must agree with from-scratch HMAC across
    /// key-length classes (short, block-size, hashed-down) and split
    /// messages.
    #[test]
    fn hmac_key_matches_one_shot() {
        let message: Vec<u8> = (0..150u8).collect();
        for key_len in [0usize, 1, 32, 63, 64, 65, 131] {
            let key = vec![0xc3u8; key_len];
            let schedule = HmacKey::new(&key);
            assert_eq!(
                schedule.mac(&message),
                hmac_sha256(&key, &message),
                "key len {key_len}"
            );
            assert_eq!(
                schedule.mac_parts(&[&message[..70], &message[70..], &[]]),
                hmac_sha256(&key, &message),
                "key len {key_len} (parts)"
            );
        }
    }

    #[test]
    fn hmac_differs_on_key_and_message() {
        let a = hmac_sha256(b"k1", b"m");
        let b = hmac_sha256(b"k2", b"m");
        let c = hmac_sha256(b"k1", b"n");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
