use std::error::Error;
use std::fmt;

/// Error type for cryptographic operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A ciphertext failed authentication (wrong key, truncation or
    /// tampering). No plaintext is released.
    AuthenticationFailed,
    /// Input had an invalid length for the operation.
    BadLength {
        /// What the operation expected, e.g. `"at least 64 bytes"`.
        expected: &'static str,
        /// Length actually supplied.
        actual: usize,
    },
    /// A public key or scalar was structurally invalid (e.g. the all-zero
    /// shared secret produced by a low-order point).
    InvalidKey,
    /// The X25519 exchange produced the all-zero shared secret: the peer
    /// point was low-order, so the "shared" secret would be attacker-
    /// predictable. Rejected per the RFC 7748 §6.1 contributory-behavior
    /// check.
    LowOrderPoint,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::AuthenticationFailed => write!(f, "ciphertext authentication failed"),
            CryptoError::BadLength { expected, actual } => {
                write!(f, "invalid input length: expected {expected}, got {actual}")
            }
            CryptoError::InvalidKey => write!(f, "invalid key material"),
            CryptoError::LowOrderPoint => {
                write!(f, "low-order point: X25519 shared secret is all zero")
            }
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_period() {
        for e in [
            CryptoError::AuthenticationFailed,
            CryptoError::BadLength {
                expected: "32 bytes",
                actual: 31,
            },
            CryptoError::InvalidKey,
            CryptoError::LowOrderPoint,
        ] {
            let s = e.to_string();
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }
}
