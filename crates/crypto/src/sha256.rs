//! SHA-256 (FIPS 180-4).
//!
//! Used for the enclave's attestation measurement, HMAC, and HKDF key
//! derivation. Incremental API plus a one-shot convenience function;
//! validated against the FIPS/NIST short-message vectors.
//!
//! The compression function is multi-block: `update` feeds every full
//! block of its input through one `compress_blocks` call, which
//! dispatches at runtime to the SHA-NI (`sha` + `ssse3` + `sse4.1`)
//! kernel when the CPU has it and to the portable scalar rounds
//! otherwise. Both paths implement the same FIPS 180-4 function and are
//! pinned by the same vectors, so the choice is invisible to callers.

/// Output size of SHA-256 in bytes.
pub const DIGEST_LEN: usize = 32;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Example
///
/// ```
/// use mixnn_crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// let digest = h.finalize();
/// assert_eq!(digest, mixnn_crypto::sha256::digest(b"abc"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        let full = input.len() - input.len() % 64;
        if full > 0 {
            compress_blocks(&mut self.state, &input[..full]);
            input = &input[full..];
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Finishes and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        self.update_padding_byte();
        while self.buffer_len != 56 {
            self.update_zero_byte();
        }
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn update_padding_byte(&mut self) {
        self.buffer[self.buffer_len] = 0x80;
        self.buffer_len += 1;
        if self.buffer_len == 64 {
            let block = self.buffer;
            self.compress(&block);
            self.buffer_len = 0;
        }
    }

    fn update_zero_byte(&mut self) {
        self.buffer[self.buffer_len] = 0;
        self.buffer_len += 1;
        if self.buffer_len == 64 {
            let block = self.buffer;
            self.compress(&block);
            self.buffer_len = 0;
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        compress_blocks(&mut self.state, block);
    }
}

/// Runs the SHA-256 compression function over `blocks` (whose length must
/// be a multiple of 64), dispatching to the SHA-NI kernel when the CPU
/// supports it.
fn compress_blocks(state: &mut [u32; 8], blocks: &[u8]) {
    debug_assert_eq!(blocks.len() % 64, 0);
    #[cfg(target_arch = "x86_64")]
    if shani::available() {
        // SAFETY: `available` verified the sha/ssse3/sse4.1 CPU features
        // at runtime.
        unsafe { shani::compress_blocks(state, blocks) };
        return;
    }
    compress_blocks_portable(state, blocks);
}

fn compress_blocks_portable(state: &mut [u32; 8], blocks: &[u8]) {
    for block in blocks.chunks_exact(64) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
        state[5] = state[5].wrapping_add(f);
        state[6] = state[6].wrapping_add(g);
        state[7] = state[7].wrapping_add(h);
    }
}

/// SHA-NI compression kernel (x86-64 `sha` extension), selected at runtime
/// so the baseline build still runs everywhere.
#[cfg(target_arch = "x86_64")]
mod shani {
    use super::K;
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;
    use std::sync::OnceLock;

    /// Whether the running CPU has every feature the kernel needs.
    pub fn available() -> bool {
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            is_x86_feature_detected!("sha")
                && is_x86_feature_detected!("ssse3")
                && is_x86_feature_detected!("sse4.1")
        })
    }

    /// # Safety
    ///
    /// The caller must have verified (e.g. via [`available`]) that the CPU
    /// supports the `sha`, `ssse3` and `sse4.1` features. `blocks` must be
    /// a multiple of 64 bytes long.
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    pub unsafe fn compress_blocks(state: &mut [u32; 8], blocks: &[u8]) {
        // Big-endian message words → little-endian u32 lanes.
        let mask = _mm_set_epi8(12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3);

        // Repack the linear state into the ABEF/CDGH register layout the
        // sha256rnds2 instruction works on.
        let dcba = _mm_loadu_si128(state.as_ptr().cast::<__m128i>());
        let hgfe = _mm_loadu_si128(state.as_ptr().add(4).cast::<__m128i>());
        let cdab = _mm_shuffle_epi32(dcba, 0xb1);
        let efgh = _mm_shuffle_epi32(hgfe, 0x1b);
        let mut abef = _mm_alignr_epi8(cdab, efgh, 8);
        let mut cdgh = _mm_blend_epi16(efgh, cdab, 0xf0);

        for block in blocks.chunks_exact(64) {
            let abef_save = abef;
            let cdgh_save = cdgh;
            let p = block.as_ptr();
            // Four message-schedule vectors of four words each, updated in
            // place: at round group `r` (rounds 4r..4r+4), `w[r % 4]` holds
            // the current words and is overwritten with the words for
            // round group `r + 4`.
            let mut w = [
                _mm_shuffle_epi8(_mm_loadu_si128(p.cast::<__m128i>()), mask),
                _mm_shuffle_epi8(_mm_loadu_si128(p.add(16).cast::<__m128i>()), mask),
                _mm_shuffle_epi8(_mm_loadu_si128(p.add(32).cast::<__m128i>()), mask),
                _mm_shuffle_epi8(_mm_loadu_si128(p.add(48).cast::<__m128i>()), mask),
            ];
            for r in 0..16 {
                let k = _mm_loadu_si128(K.as_ptr().add(4 * r).cast::<__m128i>());
                let wk = _mm_add_epi32(w[r & 3], k);
                cdgh = _mm_sha256rnds2_epu32(cdgh, abef, wk);
                abef = _mm_sha256rnds2_epu32(abef, cdgh, _mm_shuffle_epi32(wk, 0x0e));
                if r < 12 {
                    let across = _mm_alignr_epi8(w[(r + 3) & 3], w[(r + 2) & 3], 4);
                    let partial = _mm_sha256msg1_epu32(w[r & 3], w[(r + 1) & 3]);
                    w[r & 3] = _mm_sha256msg2_epu32(_mm_add_epi32(partial, across), w[(r + 3) & 3]);
                }
            }
            abef = _mm_add_epi32(abef, abef_save);
            cdgh = _mm_add_epi32(cdgh, cdgh_save);
        }

        // Unpack ABEF/CDGH back into the linear state.
        let feba = _mm_shuffle_epi32(abef, 0x1b);
        let dchg = _mm_shuffle_epi32(cdgh, 0xb1);
        let dcba = _mm_blend_epi16(feba, dchg, 0xf0);
        let hgfe = _mm_alignr_epi8(dchg, feba, 8);
        _mm_storeu_si128(state.as_mut_ptr().cast::<__m128i>(), dcba);
        _mm_storeu_si128(state.as_mut_ptr().add(4).cast::<__m128i>(), hgfe);
    }
}

/// One-shot SHA-256.
pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex(&digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_448_bits() {
        assert_eq!(
            hex(&digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn fips_vector_896_bits() {
        assert_eq!(
            hex(&digest(
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"
            )),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot_for_all_split_points() {
        let data: Vec<u8> = (0..200u8).collect();
        let expected = digest(&data);
        for split in [0, 1, 55, 56, 63, 64, 65, 127, 128, 199, 200] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expected, "split at {split}");
        }
    }

    /// Whatever kernel the dispatcher picked, it must agree with the
    /// portable rounds on multi-block inputs of every residue class.
    #[test]
    fn dispatched_kernel_matches_portable() {
        for blocks in [1usize, 2, 3, 4, 7] {
            let data: Vec<u8> = (0..blocks * 64).map(|i| (i % 251) as u8).collect();
            let mut fast = H0;
            compress_blocks(&mut fast, &data);
            let mut portable = H0;
            compress_blocks_portable(&mut portable, &data);
            assert_eq!(fast, portable, "{blocks} blocks");
        }
    }

    #[test]
    fn block_boundary_lengths() {
        // Lengths straddling the 55/56-byte padding boundary are the classic
        // off-by-one territory.
        for len in 50..70 {
            let data = vec![0xa5u8; len];
            let mut h = Sha256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), digest(&data), "len {len}");
        }
    }
}
