//! Cryptographic primitives for the MixNN enclave, implemented from
//! scratch.
//!
//! The paper's participants encrypt their model updates with the public key
//! of the SGX enclave so only the MixNN proxy can read them (§4.1/§4.3).
//! This crate provides the construction stack for that channel:
//!
//! * [`sha256`] — SHA-256 (FIPS 180-4),
//! * [`hmac`] — HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869),
//! * [`chacha20`] — the ChaCha20 stream cipher (RFC 8439),
//! * [`x25519`] — X25519 Diffie–Hellman over Curve25519 (RFC 7748),
//! * [`sealed_box`] — the hybrid public-key encryption used on the wire:
//!   ephemeral X25519 → HKDF → ChaCha20 + HMAC (encrypt-then-MAC).
//!
//! Every primitive is validated against the official test vectors in its
//! module's tests, so measured decryption costs in the §6.5 benches are
//! representative of a real deployment.
//!
//! # Security caveat
//!
//! This is a **research reproduction**: the algorithms are the real ones and
//! pass their RFC vectors, but the implementation has not been hardened
//! against timing side channels beyond the basics ([`ct_eq`] for tag
//! comparison, branch-free ladder steps in `x25519`). Do not lift it into a
//! production system.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod chacha20;
mod error;
pub mod hmac;
pub mod sealed_box;
pub mod sha256;
pub mod x25519;

pub use error::CryptoError;
pub use sealed_box::{KeyPair, PublicKey, SealedBox, SecretKey};

/// Constant-time equality of two byte slices.
///
/// Returns `false` immediately on length mismatch (the length is public in
/// all uses here); otherwise examines every byte regardless of where the
/// first difference occurs.
///
/// # Example
///
/// ```
/// assert!(mixnn_crypto::ct_eq(b"abc", b"abc"));
/// assert!(!mixnn_crypto::ct_eq(b"abc", b"abd"));
/// assert!(!mixnn_crypto::ct_eq(b"abc", b"ab"));
/// ```
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (&x, &y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_matches_equality() {
        assert!(ct_eq(&[], &[]));
        assert!(ct_eq(&[1, 2, 3], &[1, 2, 3]));
        assert!(!ct_eq(&[1, 2, 3], &[1, 2, 4]));
        assert!(!ct_eq(&[1, 2, 3], &[1, 2]));
        assert!(!ct_eq(&[0xff], &[0x7f]));
    }
}
