//! Cryptographic primitives for the MixNN enclave, implemented from
//! scratch.
//!
//! The paper's participants encrypt their model updates with the public key
//! of the SGX enclave so only the MixNN proxy can read them (§4.1/§4.3).
//! This crate provides the construction stack for that channel:
//!
//! * [`sha256`] — SHA-256 (FIPS 180-4),
//! * [`hmac`] — HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869),
//! * [`chacha20`] — the ChaCha20 stream cipher (RFC 8439),
//! * [`x25519`] — X25519 Diffie–Hellman over Curve25519 (RFC 7748),
//! * [`sealed_box`] — the hybrid public-key encryption used on the wire:
//!   ephemeral X25519 → HKDF → ChaCha20 + HMAC (encrypt-then-MAC).
//!
//! Every primitive is validated against the official test vectors in its
//! module's tests, so measured decryption costs in the §6.5 benches are
//! representative of a real deployment.
//!
//! # The batched hot path
//!
//! Decryption dominates the proxy's per-round cost (§6.5), so the stack
//! is built as batched kernels behind the scalar APIs — each one
//! bit-identical to the scalar definition and pinned by the same RFC/FIPS
//! vectors:
//!
//! * SHA-256 compresses all full blocks of an `update` in one multi-block
//!   call and dispatches at runtime to the x86-64 SHA-NI kernel when the
//!   CPU has it ([`sha256`]);
//! * HMAC keys precompute their ipad/opad schedule once
//!   ([`hmac::HmacKey`]), and the sealed box derives its three keys with
//!   a single HKDF-Extract plus three expands per envelope;
//! * ChaCha20 generates four keystream blocks per widened quarter-round
//!   pass on buffers ≥ 256 B ([`chacha20`]);
//! * [`sealed_box::SealedBox::open_batch`] opens a round's envelopes
//!   together, sharing the X25519 bit schedule and one Montgomery-trick
//!   field inversion across the batch ([`x25519::x25519_batch`]).
//!
//! # Contributory behavior
//!
//! X25519 maps low-order peer points to the all-zero shared secret. The
//! sealed box rejects that secret on both ends
//! ([`CryptoError::LowOrderPoint`], RFC 7748 §6.1), so a malicious
//! participant cannot force predictable envelope keys, and the ChaCha20
//! block counter panics instead of wrapping (keystream reuse) after 256
//! GiB under one key/nonce.
//!
//! # Security caveat
//!
//! This is a **research reproduction**: the algorithms are the real ones and
//! pass their RFC vectors, but the implementation has not been hardened
//! against timing side channels beyond the basics ([`ct_eq`] for tag
//! comparison, branch-free ladder steps in `x25519`). Do not lift it into a
//! production system.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod chacha20;
mod error;
pub mod hmac;
pub mod sealed_box;
pub mod sha256;
pub mod x25519;

pub use error::CryptoError;
pub use sealed_box::{KeyPair, PublicKey, SealedBox, SecretKey};

/// Constant-time equality of two byte slices.
///
/// Returns `false` immediately on length mismatch (the length is public in
/// all uses here); otherwise examines every byte regardless of where the
/// first difference occurs.
///
/// # Example
///
/// ```
/// assert!(mixnn_crypto::ct_eq(b"abc", b"abc"));
/// assert!(!mixnn_crypto::ct_eq(b"abc", b"abd"));
/// assert!(!mixnn_crypto::ct_eq(b"abc", b"ab"));
/// ```
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (&x, &y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_matches_equality() {
        assert!(ct_eq(&[], &[]));
        assert!(ct_eq(&[1, 2, 3], &[1, 2, 3]));
        assert!(!ct_eq(&[1, 2, 3], &[1, 2, 4]));
        assert!(!ct_eq(&[1, 2, 3], &[1, 2]));
        assert!(!ct_eq(&[0xff], &[0x7f]));
    }
}
