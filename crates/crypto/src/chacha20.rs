//! The ChaCha20 stream cipher (RFC 8439).
//!
//! Encrypts the serialized model updates inside sealed boxes. ChaCha20 is
//! the natural choice for the enclave setting: constant-time by
//! construction (add–rotate–xor only) and fast in plain portable code.
//!
//! For buffers of 256 bytes or more, [`ChaCha20::apply_keystream`] runs a
//! widened kernel that computes four consecutive blocks per quarter-round
//! pass: every state word becomes a `[u32; 4]` lane vector (one lane per
//! block counter), which the compiler lowers to 128-bit SIMD. On x86-64
//! CPUs with AVX2 (detected at runtime), stretches of 512 bytes or more
//! instead use an eight-block kernel over 256-bit vectors. The tail — and
//! any stretch close enough to the counter limit that a widened pass
//! would overflow it — uses the scalar block function, so the keystream
//! is bit-identical to the one-block-at-a-time definition at every
//! length.
//!
//! The 32-bit block counter is a hard limit, not a wrapping one: asking
//! for keystream past block `u32::MAX` (256 GiB under one key/nonce)
//! panics instead of silently reusing blocks.

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes (IETF variant).
pub const NONCE_LEN: usize = 12;

/// A ChaCha20 cipher instance for one (key, nonce) pair.
///
/// # Example
///
/// ```
/// use mixnn_crypto::chacha20::ChaCha20;
///
/// let key = [7u8; 32];
/// let nonce = [9u8; 12];
/// let mut buf = *b"attack at dawn";
/// ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut buf);
/// assert_ne!(&buf, b"attack at dawn");
/// ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut buf);
/// assert_eq!(&buf, b"attack at dawn");
/// ```
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    state: [u32; 16],
    /// Set once the counter has produced its last block; the next request
    /// panics rather than wrap around and reuse keystream.
    exhausted: bool,
}

/// Lane count of the widened kernel: four blocks per quarter-round pass.
const LANES: usize = 4;
type Lanes = [u32; LANES];

#[inline(always)]
fn lanes_add(a: Lanes, b: Lanes) -> Lanes {
    [
        a[0].wrapping_add(b[0]),
        a[1].wrapping_add(b[1]),
        a[2].wrapping_add(b[2]),
        a[3].wrapping_add(b[3]),
    ]
}

#[inline(always)]
fn lanes_xor_rotl(a: Lanes, b: Lanes, r: u32) -> Lanes {
    [
        (a[0] ^ b[0]).rotate_left(r),
        (a[1] ^ b[1]).rotate_left(r),
        (a[2] ^ b[2]).rotate_left(r),
        (a[3] ^ b[3]).rotate_left(r),
    ]
}

#[inline(always)]
fn quad_quarter_round(w: &mut [Lanes; 16], a: usize, b: usize, c: usize, d: usize) {
    w[a] = lanes_add(w[a], w[b]);
    w[d] = lanes_xor_rotl(w[d], w[a], 16);
    w[c] = lanes_add(w[c], w[d]);
    w[b] = lanes_xor_rotl(w[b], w[c], 12);
    w[a] = lanes_add(w[a], w[b]);
    w[d] = lanes_xor_rotl(w[d], w[a], 8);
    w[c] = lanes_add(w[c], w[d]);
    w[b] = lanes_xor_rotl(w[b], w[c], 7);
}

/// Eight-block AVX2 kernel: each 256-bit vector holds one state word
/// across eight consecutive block counters. Same add–rotate–xor math as
/// the portable lanes, just wider; the block dispatch guarantees the
/// output is bit-identical to the scalar definition.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use core::arch::x86_64::*;
    use std::sync::OnceLock;

    /// Blocks per pass.
    pub const LANES: usize = 8;

    /// Runtime AVX2 detection, cached after the first query.
    pub fn available() -> bool {
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| is_x86_feature_detected!("avx2"))
    }

    /// 32-bit left rotation of every lane by a constant amount (the shift
    /// intrinsics require immediate counts).
    macro_rules! rotl {
        ($v:expr, $n:literal) => {
            _mm256_or_si256(
                _mm256_slli_epi32::<$n>($v),
                _mm256_srli_epi32::<{ 32 - $n }>($v),
            )
        };
    }

    #[inline(always)]
    unsafe fn quarter_round(x: &mut [__m256i; 16], a: usize, b: usize, c: usize, d: usize) {
        x[a] = _mm256_add_epi32(x[a], x[b]);
        x[d] = rotl!(_mm256_xor_si256(x[d], x[a]), 16);
        x[c] = _mm256_add_epi32(x[c], x[d]);
        x[b] = rotl!(_mm256_xor_si256(x[b], x[c]), 12);
        x[a] = _mm256_add_epi32(x[a], x[b]);
        x[d] = rotl!(_mm256_xor_si256(x[d], x[a]), 8);
        x[c] = _mm256_add_epi32(x[c], x[d]);
        x[b] = rotl!(_mm256_xor_si256(x[b], x[c]), 7);
    }

    /// XORs the eight keystream blocks at counters
    /// `state[12] .. state[12] + 7` into `chunk` (exactly 512 bytes).
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support via [`available`], and
    /// that `state[12] + 7` does not overflow.
    #[target_feature(enable = "avx2")]
    pub unsafe fn xor_blocks8(state: &[u32; 16], chunk: &mut [u8]) {
        debug_assert_eq!(chunk.len(), LANES * 64);
        let mut x: [__m256i; 16] = core::array::from_fn(|i| _mm256_set1_epi32(state[i] as i32));
        x[12] = _mm256_add_epi32(x[12], _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
        let init = x;
        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut x, 0, 4, 8, 12);
            quarter_round(&mut x, 1, 5, 9, 13);
            quarter_round(&mut x, 2, 6, 10, 14);
            quarter_round(&mut x, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut x, 0, 5, 10, 15);
            quarter_round(&mut x, 1, 6, 11, 12);
            quarter_round(&mut x, 2, 7, 8, 13);
            quarter_round(&mut x, 3, 4, 9, 14);
        }
        let mut words = [[0u32; LANES]; 16];
        for (slot, (&xi, &start)) in words.iter_mut().zip(x.iter().zip(init.iter())) {
            _mm256_storeu_si256(slot.as_mut_ptr().cast(), _mm256_add_epi32(xi, start));
        }
        for lane in 0..LANES {
            for (i, slot) in words.iter().enumerate() {
                let keystream = slot[lane].to_le_bytes();
                let base = lane * 64 + i * 4;
                for (byte, &k) in chunk[base..base + 4].iter_mut().zip(keystream.iter()) {
                    *byte ^= k;
                }
            }
        }
    }
}

impl ChaCha20 {
    /// Creates a cipher with the given 256-bit key, 96-bit nonce and
    /// initial block counter.
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] = u32::from_le_bytes([
                nonce[i * 4],
                nonce[i * 4 + 1],
                nonce[i * 4 + 2],
                nonce[i * 4 + 3],
            ]);
        }
        ChaCha20 {
            state,
            exhausted: false,
        }
    }

    #[inline(always)]
    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    /// Produces the 64-byte keystream block for the current counter and
    /// advances the counter.
    ///
    /// # Panics
    ///
    /// Panics once the 32-bit block counter is spent (after the block at
    /// counter `u32::MAX`): continuing would wrap the counter and reuse
    /// keystream under the same key/nonce.
    fn next_block(&mut self) -> [u8; 64] {
        assert!(
            !self.exhausted,
            "ChaCha20 block counter exhausted: keystream would repeat under this key/nonce"
        );
        let mut working = self.state;
        for _ in 0..10 {
            // Column rounds.
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = working[i].wrapping_add(self.state[i]);
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_le_bytes());
        }
        match self.state[12].checked_add(1) {
            Some(next) => self.state[12] = next,
            None => self.exhausted = true,
        }
        out
    }

    /// XORs four consecutive keystream blocks into `chunk` (exactly 256
    /// bytes). The caller guarantees `counter + 3` does not overflow.
    fn apply_quad(&mut self, chunk: &mut [u8]) {
        debug_assert_eq!(chunk.len(), LANES * 64);
        let counter = self.state[12];
        let mut init = [[0u32; LANES]; 16];
        for (lanes, &word) in init.iter_mut().zip(self.state.iter()) {
            *lanes = [word; LANES];
        }
        init[12] = [counter, counter + 1, counter + 2, counter + 3];
        let mut w = init;
        for _ in 0..10 {
            // Column rounds.
            quad_quarter_round(&mut w, 0, 4, 8, 12);
            quad_quarter_round(&mut w, 1, 5, 9, 13);
            quad_quarter_round(&mut w, 2, 6, 10, 14);
            quad_quarter_round(&mut w, 3, 7, 11, 15);
            // Diagonal rounds.
            quad_quarter_round(&mut w, 0, 5, 10, 15);
            quad_quarter_round(&mut w, 1, 6, 11, 12);
            quad_quarter_round(&mut w, 2, 7, 8, 13);
            quad_quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (lanes, &start) in w.iter_mut().zip(init.iter()) {
            *lanes = lanes_add(*lanes, start);
        }
        for lane in 0..LANES {
            for (i, lanes) in w.iter().enumerate() {
                let keystream = lanes[lane].to_le_bytes();
                let base = lane * 64 + i * 4;
                for (byte, &k) in chunk[base..base + 4].iter_mut().zip(keystream.iter()) {
                    *byte ^= k;
                }
            }
        }
        match counter.checked_add(LANES as u32) {
            Some(next) => self.state[12] = next,
            None => {
                // The quad ended exactly on the last block — same end
                // state the scalar path leaves behind.
                self.state[12] = u32::MAX;
                self.exhausted = true;
            }
        }
    }

    /// XORs the keystream into `data` in place (encryption and decryption
    /// are the same operation).
    ///
    /// # Panics
    ///
    /// Panics if `data` needs keystream past block counter `u32::MAX`
    /// (256 GiB under one key/nonce) — see `ChaCha20::next_block`.
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        let mut offset = 0;
        #[cfg(target_arch = "x86_64")]
        if avx2::available() {
            const WIDE: usize = avx2::LANES * 64;
            while data.len() - offset >= WIDE
                && !self.exhausted
                && self.state[12] <= u32::MAX - (avx2::LANES as u32 - 1)
            {
                unsafe { avx2::xor_blocks8(&self.state, &mut data[offset..offset + WIDE]) };
                offset += WIDE;
                match self.state[12].checked_add(avx2::LANES as u32) {
                    Some(next) => self.state[12] = next,
                    None => {
                        // The pass ended exactly on the last block — same
                        // end state the scalar path leaves behind.
                        self.state[12] = u32::MAX;
                        self.exhausted = true;
                    }
                }
            }
        }
        while data.len() - offset >= LANES * 64
            && !self.exhausted
            && self.state[12] <= u32::MAX - (LANES as u32 - 1)
        {
            self.apply_quad(&mut data[offset..offset + LANES * 64]);
            offset += LANES * 64;
        }
        for chunk in data[offset..].chunks_mut(64) {
            let block = self.next_block();
            for (byte, &k) in chunk.iter_mut().zip(block.iter()) {
                *byte ^= k;
            }
        }
    }
}

/// One-shot convenience: XORs the ChaCha20 keystream (counter starting at
/// `counter`) into `data`.
///
/// # Panics
///
/// Panics if `data` needs keystream past block counter `u32::MAX` — see
/// [`ChaCha20::apply_keystream`].
pub fn xor_keystream(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32, data: &mut [u8]) {
    ChaCha20::new(key, nonce, counter).apply_keystream(data);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        let s: String = s.split_whitespace().collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// RFC 8439 §2.3.2: the keystream block test vector.
    #[test]
    fn rfc8439_block_function() {
        let key: [u8; 32] = (0..32u8).collect::<Vec<_>>().try_into().unwrap();
        let nonce_bytes = unhex("000000090000004a00000000");
        let nonce: [u8; 12] = nonce_bytes.try_into().unwrap();
        let mut cipher = ChaCha20::new(&key, &nonce, 1);
        let block = cipher.next_block();
        let expected = unhex(
            "10f1e7e4d13b5915500fdd1fa32071c4 c7d1f4c733c068030422aa9ac3d46c4e \
             d2826446079faa0914c2d705d98b02a2 b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(block.to_vec(), expected);
    }

    /// RFC 8439 §2.4.2: the "Ladies and Gentlemen" encryption vector.
    #[test]
    fn rfc8439_encryption() {
        let key: [u8; 32] = (0..32u8).collect::<Vec<_>>().try_into().unwrap();
        let nonce_bytes = unhex("000000000000004a00000000");
        let nonce: [u8; 12] = nonce_bytes.try_into().unwrap();
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.".to_vec();
        xor_keystream(&key, &nonce, 1, &mut data);
        let expected = unhex(
            "6e2e359a2568f98041ba0728dd0d6981 e97e7aec1d4360c20a27afccfd9fae0b \
             f91b65c5524733ab8f593dabcd62b357 1639d624e65152ab8f530c359f0861d8 \
             07ca0dbf500d6a6156a38e088a22b65e 52bc514d16ccf806818ce91ab7793736 \
             5af90bbf74a35be6b40b8eedf2785e42 874d",
        );
        assert_eq!(data, expected);
    }

    #[test]
    fn round_trip_various_lengths() {
        let key = [0x42u8; 32];
        let nonce = [0x24u8; 12];
        for len in [0usize, 1, 63, 64, 65, 127, 128, 1000] {
            let original: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let mut buf = original.clone();
            xor_keystream(&key, &nonce, 0, &mut buf);
            if len > 0 {
                assert_ne!(buf, original, "len {len} did not change");
            }
            xor_keystream(&key, &nonce, 0, &mut buf);
            assert_eq!(buf, original, "len {len} did not round-trip");
        }
    }

    #[test]
    fn different_nonce_gives_different_keystream() {
        let key = [1u8; 32];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        xor_keystream(&key, &[0u8; 12], 0, &mut a);
        xor_keystream(&key, &[1u8; 12], 0, &mut b);
        assert_ne!(a, b);
    }

    /// Reference implementation for the equivalence tests: one scalar
    /// block at a time, straight from the RFC definition.
    fn scalar_keystream(cipher: &ChaCha20, data: &mut [u8]) {
        let mut scalar = cipher.clone();
        for chunk in data.chunks_mut(64) {
            let block = scalar.next_block();
            for (byte, &k) in chunk.iter_mut().zip(block.iter()) {
                *byte ^= k;
            }
        }
    }

    /// The widened four-block kernel must be bit-identical to the scalar
    /// path at every boundary length (the satellite's 63/64/65/128/256 B
    /// cases plus multi-quad and ragged tails).
    #[test]
    fn quad_kernel_matches_scalar_at_boundary_lengths() {
        let key = [0x5au8; 32];
        let nonce = [0x17u8; 12];
        for len in [63usize, 64, 65, 128, 255, 256, 257, 320, 512, 1000, 1024] {
            let original: Vec<u8> = (0..len).map(|i| (i * 31 % 256) as u8).collect();
            let cipher = ChaCha20::new(&key, &nonce, 7);
            let mut expected = original.clone();
            scalar_keystream(&cipher, &mut expected);
            let mut actual = original;
            cipher.clone().apply_keystream(&mut actual);
            assert_eq!(actual, expected, "len {len}");
        }
    }

    /// The last usable block is the one at counter `u32::MAX`; both the
    /// scalar and the quad entry path must stop exactly there.
    #[test]
    fn counter_near_max_produces_final_blocks() {
        let key = [2u8; 32];
        let nonce = [4u8; 12];
        // Scalar path: three blocks starting at MAX - 2 are fine.
        let mut buf = vec![0u8; 192];
        ChaCha20::new(&key, &nonce, u32::MAX - 2).apply_keystream(&mut buf);
        // Quad path: four blocks ending exactly at MAX are fine, and must
        // equal the scalar blocks.
        let mut quad = vec![0u8; 256];
        ChaCha20::new(&key, &nonce, u32::MAX - 3).apply_keystream(&mut quad);
        let mut scalar = vec![0u8; 256];
        scalar_keystream(&ChaCha20::new(&key, &nonce, u32::MAX - 3), &mut scalar);
        assert_eq!(quad, scalar);
        assert_eq!(&quad[64..], &buf[..]);
    }

    #[test]
    #[should_panic(expected = "block counter exhausted")]
    fn counter_overflow_panics_instead_of_wrapping() {
        let mut cipher = ChaCha20::new(&[0u8; 32], &[0u8; 12], u32::MAX);
        let mut buf = vec![0u8; 128];
        // Block at u32::MAX succeeds; the 65th byte needs the wrapped
        // counter and must panic.
        cipher.apply_keystream(&mut buf);
    }

    #[test]
    #[should_panic(expected = "block counter exhausted")]
    fn counter_overflow_panics_after_quad_tail() {
        // A 512-byte request starting at MAX - 3: the first quad consumes
        // the remaining counters, the next block must panic.
        let mut cipher = ChaCha20::new(&[0u8; 32], &[0u8; 12], u32::MAX - 3);
        let mut buf = vec![0u8; 512];
        cipher.apply_keystream(&mut buf);
    }

    /// The eight-block entry path (taken on AVX2 hosts for >= 512 B) must
    /// stop exactly at the counter limit too: eight blocks ending at MAX
    /// equal the scalar blocks, and the next byte panics.
    #[test]
    fn counter_near_max_matches_scalar_on_wide_path() {
        let key = [6u8; 32];
        let nonce = [8u8; 12];
        let mut wide = vec![0u8; 512];
        ChaCha20::new(&key, &nonce, u32::MAX - 7).apply_keystream(&mut wide);
        let mut scalar = vec![0u8; 512];
        scalar_keystream(&ChaCha20::new(&key, &nonce, u32::MAX - 7), &mut scalar);
        assert_eq!(wide, scalar);
    }

    #[test]
    #[should_panic(expected = "block counter exhausted")]
    fn counter_overflow_panics_after_wide_tail() {
        // 576 bytes starting at MAX - 7: the first eight blocks consume
        // the remaining counters, the ninth must panic.
        let mut cipher = ChaCha20::new(&[0u8; 32], &[0u8; 12], u32::MAX - 7);
        let mut buf = vec![0u8; 576];
        cipher.apply_keystream(&mut buf);
    }

    #[test]
    fn counter_advances_across_blocks() {
        // Applying to 128 bytes at once must equal two 64-byte applications
        // with counters 0 and 1.
        let key = [9u8; 32];
        let nonce = [3u8; 12];
        let mut whole = vec![0u8; 128];
        xor_keystream(&key, &nonce, 0, &mut whole);
        let mut first = vec![0u8; 64];
        let mut second = vec![0u8; 64];
        xor_keystream(&key, &nonce, 0, &mut first);
        xor_keystream(&key, &nonce, 1, &mut second);
        assert_eq!(&whole[..64], &first[..]);
        assert_eq!(&whole[64..], &second[..]);
    }
}
