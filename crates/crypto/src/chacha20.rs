//! The ChaCha20 stream cipher (RFC 8439).
//!
//! Encrypts the serialized model updates inside sealed boxes. ChaCha20 is
//! the natural choice for the enclave setting: constant-time by
//! construction (add–rotate–xor only) and fast in plain portable code.

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes (IETF variant).
pub const NONCE_LEN: usize = 12;

/// A ChaCha20 cipher instance for one (key, nonce) pair.
///
/// # Example
///
/// ```
/// use mixnn_crypto::chacha20::ChaCha20;
///
/// let key = [7u8; 32];
/// let nonce = [9u8; 12];
/// let mut buf = *b"attack at dawn";
/// ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut buf);
/// assert_ne!(&buf, b"attack at dawn");
/// ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut buf);
/// assert_eq!(&buf, b"attack at dawn");
/// ```
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    state: [u32; 16],
}

impl ChaCha20 {
    /// Creates a cipher with the given 256-bit key, 96-bit nonce and
    /// initial block counter.
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] = u32::from_le_bytes([
                nonce[i * 4],
                nonce[i * 4 + 1],
                nonce[i * 4 + 2],
                nonce[i * 4 + 3],
            ]);
        }
        ChaCha20 { state }
    }

    #[inline(always)]
    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    /// Produces the 64-byte keystream block for the current counter and
    /// advances the counter.
    fn next_block(&mut self) -> [u8; 64] {
        let mut working = self.state;
        for _ in 0..10 {
            // Column rounds.
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = working[i].wrapping_add(self.state[i]);
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_le_bytes());
        }
        self.state[12] = self.state[12].wrapping_add(1);
        out
    }

    /// XORs the keystream into `data` in place (encryption and decryption
    /// are the same operation).
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        for chunk in data.chunks_mut(64) {
            let block = self.next_block();
            for (byte, &k) in chunk.iter_mut().zip(block.iter()) {
                *byte ^= k;
            }
        }
    }
}

/// One-shot convenience: XORs the ChaCha20 keystream (counter starting at
/// `counter`) into `data`.
pub fn xor_keystream(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32, data: &mut [u8]) {
    ChaCha20::new(key, nonce, counter).apply_keystream(data);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        let s: String = s.split_whitespace().collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// RFC 8439 §2.3.2: the keystream block test vector.
    #[test]
    fn rfc8439_block_function() {
        let key: [u8; 32] = (0..32u8).collect::<Vec<_>>().try_into().unwrap();
        let nonce_bytes = unhex("000000090000004a00000000");
        let nonce: [u8; 12] = nonce_bytes.try_into().unwrap();
        let mut cipher = ChaCha20::new(&key, &nonce, 1);
        let block = cipher.next_block();
        let expected = unhex(
            "10f1e7e4d13b5915500fdd1fa32071c4 c7d1f4c733c068030422aa9ac3d46c4e \
             d2826446079faa0914c2d705d98b02a2 b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(block.to_vec(), expected);
    }

    /// RFC 8439 §2.4.2: the "Ladies and Gentlemen" encryption vector.
    #[test]
    fn rfc8439_encryption() {
        let key: [u8; 32] = (0..32u8).collect::<Vec<_>>().try_into().unwrap();
        let nonce_bytes = unhex("000000000000004a00000000");
        let nonce: [u8; 12] = nonce_bytes.try_into().unwrap();
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.".to_vec();
        xor_keystream(&key, &nonce, 1, &mut data);
        let expected = unhex(
            "6e2e359a2568f98041ba0728dd0d6981 e97e7aec1d4360c20a27afccfd9fae0b \
             f91b65c5524733ab8f593dabcd62b357 1639d624e65152ab8f530c359f0861d8 \
             07ca0dbf500d6a6156a38e088a22b65e 52bc514d16ccf806818ce91ab7793736 \
             5af90bbf74a35be6b40b8eedf2785e42 874d",
        );
        assert_eq!(data, expected);
    }

    #[test]
    fn round_trip_various_lengths() {
        let key = [0x42u8; 32];
        let nonce = [0x24u8; 12];
        for len in [0usize, 1, 63, 64, 65, 127, 128, 1000] {
            let original: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let mut buf = original.clone();
            xor_keystream(&key, &nonce, 0, &mut buf);
            if len > 0 {
                assert_ne!(buf, original, "len {len} did not change");
            }
            xor_keystream(&key, &nonce, 0, &mut buf);
            assert_eq!(buf, original, "len {len} did not round-trip");
        }
    }

    #[test]
    fn different_nonce_gives_different_keystream() {
        let key = [1u8; 32];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        xor_keystream(&key, &[0u8; 12], 0, &mut a);
        xor_keystream(&key, &[1u8; 12], 0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn counter_advances_across_blocks() {
        // Applying to 128 bytes at once must equal two 64-byte applications
        // with counters 0 and 1.
        let key = [9u8; 32];
        let nonce = [3u8; 12];
        let mut whole = vec![0u8; 128];
        xor_keystream(&key, &nonce, 0, &mut whole);
        let mut first = vec![0u8; 64];
        let mut second = vec![0u8; 64];
        xor_keystream(&key, &nonce, 0, &mut first);
        xor_keystream(&key, &nonce, 1, &mut second);
        assert_eq!(&whole[..64], &first[..]);
        assert_eq!(&whole[64..], &second[..]);
    }
}
