//! Sealed-box hybrid public-key encryption.
//!
//! This is the wire format participants use to encrypt model updates to the
//! MixNN enclave (§4.1: *"they are encrypted with the public key of the
//! enclave to ensure that only the MixNN proxy is able to read and process
//! them"*). Construction:
//!
//! 1. sender generates an ephemeral X25519 key pair;
//! 2. `shared = X25519(ephemeral_secret, recipient_public)`;
//! 3. `key material = HKDF(salt = eph_pub ‖ recipient_pub, ikm = shared)`,
//!    split into a ChaCha20 key, a nonce and an HMAC key;
//! 4. ciphertext = ChaCha20(plaintext), tag = HMAC-SHA256 over
//!    `eph_pub ‖ ciphertext` (encrypt-then-MAC).
//!
//! Wire layout: `eph_pub (32) ‖ tag (32) ‖ ciphertext`.
//!
//! Two properties worth calling out:
//!
//! * **Contributory behavior** (RFC 7748 §6.1): a low-order peer point
//!   makes the X25519 output all-zero, and every key above would be
//!   attacker-predictable. Both [`SealedBox::seal`] and
//!   [`SealedBox::open`] reject the all-zero shared secret with
//!   [`CryptoError::LowOrderPoint`].
//! * **Batched opening**: [`SealedBox::open_batch`] opens many envelopes
//!   addressed to one recipient, sharing the X25519 bit schedule and the
//!   final field inversion across the batch ([`x25519::x25519_batch`]).
//!   Results are bit-identical to per-envelope [`SealedBox::open`].

use crate::chacha20;
use crate::hmac::{hkdf_expand_keyed, hkdf_extract, HmacKey};
use crate::x25519;
use crate::CryptoError;
use rand::Rng;
use std::fmt;

/// An X25519 public key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey([u8; 32]);

impl PublicKey {
    /// Wraps raw public-key bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        PublicKey(bytes)
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

/// An X25519 secret key. The `Debug` impl redacts the key material.
#[derive(Clone)]
pub struct SecretKey([u8; 32]);

impl SecretKey {
    /// Wraps raw secret-key bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        SecretKey(bytes)
    }

    /// The raw bytes. Handle with care.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SecretKey(redacted)")
    }
}

/// An X25519 key pair, as held by the MixNN enclave (`k_pub`, `k_priv` in
/// the paper's notation).
#[derive(Debug, Clone)]
pub struct KeyPair {
    secret: SecretKey,
    public: PublicKey,
}

impl KeyPair {
    /// Generates a key pair from the given RNG.
    ///
    /// # Example
    ///
    /// ```
    /// use mixnn_crypto::KeyPair;
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// let kp = KeyPair::generate(&mut StdRng::seed_from_u64(1));
    /// assert_ne!(kp.public().as_bytes(), &[0u8; 32]);
    /// ```
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut secret = [0u8; 32];
        rng.fill(&mut secret);
        Self::from_secret(SecretKey::from_bytes(secret))
    }

    /// Builds the key pair for an existing secret.
    pub fn from_secret(secret: SecretKey) -> Self {
        let public = PublicKey(x25519::public_key(secret.as_bytes()));
        KeyPair { secret, public }
    }

    /// The public half.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// The secret half.
    pub fn secret(&self) -> &SecretKey {
        &self.secret
    }
}

/// Byte overhead of a sealed box over its plaintext.
pub const OVERHEAD: usize = 64;

const INFO_KEY: &[u8] = b"mixnn sealed box v1 key";
const INFO_NONCE: &[u8] = b"mixnn sealed box v1 nonce";
const INFO_MAC: &[u8] = b"mixnn sealed box v1 mac";

/// Sealed-box encryption to a recipient public key.
///
/// Stateless namespace struct; see the module docs for the construction.
///
/// # Example
///
/// ```
/// use mixnn_crypto::{KeyPair, SealedBox};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), mixnn_crypto::CryptoError> {
/// let mut rng = StdRng::seed_from_u64(7);
/// let enclave = KeyPair::generate(&mut rng);
/// let boxed = SealedBox::seal(b"model update", enclave.public(), &mut rng)?;
/// let plain = SealedBox::open(&boxed, &enclave)?;
/// assert_eq!(plain, b"model update");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SealedBox;

struct DerivedKeys {
    cipher_key: [u8; 32],
    nonce: [u8; 12],
    mac_key: [u8; 32],
}

impl SealedBox {
    fn derive(shared: &[u8; 32], eph_pub: &[u8; 32], recipient_pub: &[u8; 32]) -> DerivedKeys {
        let mut salt = [0u8; 64];
        salt[..32].copy_from_slice(eph_pub);
        salt[32..].copy_from_slice(recipient_pub);
        // One HKDF-Extract, three expands under a shared PRK schedule.
        // The three derivations used to re-run Extract (and re-absorb the
        // PRK's HMAC pads) each — identical output, three times the
        // compressions.
        let prk = hkdf_extract(&salt, shared);
        let prk_key = HmacKey::new(&prk);
        let key = hkdf_expand_keyed(&prk_key, INFO_KEY, 32);
        let nonce = hkdf_expand_keyed(&prk_key, INFO_NONCE, 12);
        let mac = hkdf_expand_keyed(&prk_key, INFO_MAC, 32);
        DerivedKeys {
            cipher_key: key.try_into().expect("hkdf returned 32 bytes"),
            nonce: nonce.try_into().expect("hkdf returned 12 bytes"),
            mac_key: mac.try_into().expect("hkdf returned 32 bytes"),
        }
    }

    /// Encrypts `plaintext` to `recipient`, drawing ephemeral key material
    /// from `rng`. The output is `OVERHEAD` bytes longer than the input.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::LowOrderPoint`] if `recipient` is a
    /// low-order point (the RFC 7748 §6.1 contributory-behavior check) —
    /// sealing to it would yield attacker-predictable keys.
    pub fn seal<R: Rng + ?Sized>(
        plaintext: &[u8],
        recipient: &PublicKey,
        rng: &mut R,
    ) -> Result<Vec<u8>, CryptoError> {
        let eph = KeyPair::generate(rng);
        let shared = x25519::x25519(eph.secret().as_bytes(), recipient.as_bytes());
        if shared == [0u8; 32] {
            return Err(CryptoError::LowOrderPoint);
        }
        let keys = Self::derive(&shared, eph.public().as_bytes(), recipient.as_bytes());

        let mut ciphertext = plaintext.to_vec();
        chacha20::xor_keystream(&keys.cipher_key, &keys.nonce, 0, &mut ciphertext);

        let tag = HmacKey::new(&keys.mac_key).mac_parts(&[eph.public().as_bytes(), &ciphertext]);

        let mut out = Vec::with_capacity(OVERHEAD + ciphertext.len());
        out.extend_from_slice(eph.public().as_bytes());
        out.extend_from_slice(&tag);
        out.extend_from_slice(&ciphertext);
        Ok(out)
    }

    /// Decrypts a sealed box with the recipient's key pair.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BadLength`] if the message is shorter than
    /// the header, [`CryptoError::LowOrderPoint`] if the sender's
    /// ephemeral point is low-order (contributory-behavior check), or
    /// [`CryptoError::AuthenticationFailed`] if the tag does not verify
    /// (wrong key, truncation, or tampering).
    pub fn open(sealed: &[u8], recipient: &KeyPair) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < OVERHEAD {
            return Err(CryptoError::BadLength {
                expected: "at least 64 bytes",
                actual: sealed.len(),
            });
        }
        let eph_pub: [u8; 32] = sealed[..32].try_into().expect("length checked");
        let shared = x25519::x25519(recipient.secret().as_bytes(), &eph_pub);
        Self::open_with_shared(sealed, &shared, recipient)
    }

    /// Opens a batch of envelopes addressed to `recipient`, amortizing the
    /// shared-secret derivation: one clamp and bit schedule for the whole
    /// batch, and one field inversion shared across it
    /// ([`x25519::x25519_batch`]).
    ///
    /// Returns one result per envelope, in input order, each **exactly**
    /// what [`SealedBox::open`] would have returned for that envelope —
    /// including every failure mode, mid-batch. A malformed or tampered
    /// envelope affects only its own slot.
    pub fn open_batch<T: AsRef<[u8]>>(
        sealed: &[T],
        recipient: &KeyPair,
    ) -> Vec<Result<Vec<u8>, CryptoError>> {
        // Undersized envelopes are rejected up front; only well-formed
        // ones enter the batched ladder.
        let mut results: Vec<Option<Result<Vec<u8>, CryptoError>>> = sealed
            .iter()
            .map(|s| {
                let s = s.as_ref();
                (s.len() < OVERHEAD).then_some(Err(CryptoError::BadLength {
                    expected: "at least 64 bytes",
                    actual: s.len(),
                }))
            })
            .collect();
        let eph_pubs: Vec<[u8; 32]> = sealed
            .iter()
            .zip(&results)
            .filter(|(_, slot)| slot.is_none())
            .map(|(s, _)| s.as_ref()[..32].try_into().expect("length checked"))
            .collect();
        let shareds = x25519::x25519_batch(recipient.secret().as_bytes(), &eph_pubs);
        let mut shareds = shareds.into_iter();
        for (slot, s) in results.iter_mut().zip(sealed) {
            if slot.is_none() {
                let shared = shareds.next().expect("one shared secret per envelope");
                *slot = Some(Self::open_with_shared(s.as_ref(), &shared, recipient));
            }
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every envelope resolved"))
            .collect()
    }

    /// The tail of [`SealedBox::open`] after the scalar multiplication:
    /// contributory check, key derivation, tag verification, decryption.
    /// `sealed` is already length-checked.
    fn open_with_shared(
        sealed: &[u8],
        shared: &[u8; 32],
        recipient: &KeyPair,
    ) -> Result<Vec<u8>, CryptoError> {
        if *shared == [0u8; 32] {
            return Err(CryptoError::LowOrderPoint);
        }
        let eph_pub: [u8; 32] = sealed[..32].try_into().expect("length checked");
        let tag: [u8; 32] = sealed[32..64].try_into().expect("length checked");
        let ciphertext = &sealed[64..];

        let keys = Self::derive(shared, &eph_pub, recipient.public().as_bytes());
        let expected_tag = HmacKey::new(&keys.mac_key).mac_parts(&[&eph_pub, ciphertext]);
        if !crate::ct_eq(&expected_tag, &tag) {
            return Err(CryptoError::AuthenticationFailed);
        }

        let mut plaintext = ciphertext.to_vec();
        chacha20::xor_keystream(&keys.cipher_key, &keys.nonce, 0, &mut plaintext);
        Ok(plaintext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn recipient() -> (KeyPair, StdRng) {
        let mut rng = StdRng::seed_from_u64(99);
        let kp = KeyPair::generate(&mut rng);
        (kp, rng)
    }

    #[test]
    fn round_trip() {
        let (kp, mut rng) = recipient();
        for len in [0usize, 1, 31, 32, 33, 1000, 10_000] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let sealed = SealedBox::seal(&msg, kp.public(), &mut rng).unwrap();
            assert_eq!(sealed.len(), msg.len() + OVERHEAD);
            let opened = SealedBox::open(&sealed, &kp).unwrap();
            assert_eq!(opened, msg, "len {len}");
        }
    }

    #[test]
    fn tampering_is_detected() {
        let (kp, mut rng) = recipient();
        let sealed = SealedBox::seal(b"secret update", kp.public(), &mut rng).unwrap();
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x01;
            assert_eq!(
                SealedBox::open(&bad, &kp),
                Err(CryptoError::AuthenticationFailed),
                "flip at byte {i} was not detected"
            );
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let (kp, mut rng) = recipient();
        let sealed = SealedBox::seal(b"msg", kp.public(), &mut rng).unwrap();
        assert!(matches!(
            SealedBox::open(&sealed[..10], &kp),
            Err(CryptoError::BadLength { .. })
        ));
        // Truncating ciphertext (but keeping the header) must fail auth.
        assert_eq!(
            SealedBox::open(&sealed[..sealed.len() - 1], &kp),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn wrong_recipient_cannot_open() {
        let (kp, mut rng) = recipient();
        let other = KeyPair::generate(&mut rng);
        let sealed = SealedBox::seal(b"for the enclave only", kp.public(), &mut rng).unwrap();
        assert_eq!(
            SealedBox::open(&sealed, &other),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn sealing_is_randomized() {
        let (kp, mut rng) = recipient();
        let a = SealedBox::seal(b"same message", kp.public(), &mut rng).unwrap();
        let b = SealedBox::seal(b"same message", kp.public(), &mut rng).unwrap();
        assert_ne!(a, b, "ephemeral keys must differ");
    }

    #[test]
    fn sealing_to_low_order_recipient_is_rejected() {
        // u = 0 and u = 1 are low-order points on the Montgomery u-line:
        // any clamped scalar (a multiple of 8) collapses them to the
        // all-zero shared secret. RFC 7748 §6.1 contributory behavior.
        let mut rng = StdRng::seed_from_u64(5);
        for low_order in [[0u8; 32], {
            let mut u = [0u8; 32];
            u[0] = 1;
            u
        }] {
            let bad = PublicKey::from_bytes(low_order);
            assert_eq!(
                SealedBox::seal(b"update", &bad, &mut rng),
                Err(CryptoError::LowOrderPoint)
            );
        }
    }

    #[test]
    fn opening_low_order_ephemeral_is_rejected() {
        let (kp, _) = recipient();
        for low_order in [[0u8; 32], {
            let mut u = [0u8; 32];
            u[0] = 1;
            u
        }] {
            // Forge an envelope whose ephemeral point is low-order. Before
            // the contributory check this would derive keys from the
            // all-zero shared secret; now it must fail closed.
            let mut forged = vec![0u8; OVERHEAD + 16];
            forged[..32].copy_from_slice(&low_order);
            assert_eq!(
                SealedBox::open(&forged, &kp),
                Err(CryptoError::LowOrderPoint)
            );
            assert_eq!(
                SealedBox::open_batch(&[forged], &kp),
                vec![Err(CryptoError::LowOrderPoint)]
            );
        }
    }

    #[test]
    fn open_batch_matches_per_envelope_open() {
        let (kp, mut rng) = recipient();
        let mut batch: Vec<Vec<u8>> = (0..5u8)
            .map(|i| {
                SealedBox::seal(&vec![i; 10 * usize::from(i) + 1], kp.public(), &mut rng).unwrap()
            })
            .collect();
        // Mix in every failure mode mid-batch: tampering, truncation
        // below the header, and a low-order ephemeral point.
        batch[1][40] ^= 0x80;
        batch[2].truncate(63);
        for b in &mut batch[3][..32] {
            *b = 0;
        }
        let batched = SealedBox::open_batch(&batch, &kp);
        assert_eq!(batched.len(), batch.len());
        for (envelope, result) in batch.iter().zip(&batched) {
            assert_eq!(*result, SealedBox::open(envelope, &kp));
        }
        assert!(batched[0].is_ok());
        assert_eq!(batched[1], Err(CryptoError::AuthenticationFailed));
        assert!(matches!(batched[2], Err(CryptoError::BadLength { .. })));
        assert_eq!(batched[3], Err(CryptoError::LowOrderPoint));
        assert!(batched[4].is_ok());
        assert!(SealedBox::open_batch::<Vec<u8>>(&[], &kp).is_empty());
    }

    #[test]
    fn secret_key_debug_is_redacted() {
        let (kp, _) = recipient();
        let s = format!("{:?}", kp.secret());
        assert!(s.contains("redacted"));
        assert!(
            !s.contains(&format!("{:?}", kp.secret().as_bytes())),
            "Debug output must not render the key bytes"
        );
    }

    #[test]
    fn keypair_public_matches_secret() {
        let (kp, _) = recipient();
        let expected = crate::x25519::public_key(kp.secret().as_bytes());
        assert_eq!(kp.public().as_bytes(), &expected);
    }
}
