//! Sealed-box hybrid public-key encryption.
//!
//! This is the wire format participants use to encrypt model updates to the
//! MixNN enclave (§4.1: *"they are encrypted with the public key of the
//! enclave to ensure that only the MixNN proxy is able to read and process
//! them"*). Construction:
//!
//! 1. sender generates an ephemeral X25519 key pair;
//! 2. `shared = X25519(ephemeral_secret, recipient_public)`;
//! 3. `key material = HKDF(salt = eph_pub ‖ recipient_pub, ikm = shared)`,
//!    split into a ChaCha20 key, a nonce and an HMAC key;
//! 4. ciphertext = ChaCha20(plaintext), tag = HMAC-SHA256 over
//!    `eph_pub ‖ ciphertext` (encrypt-then-MAC).
//!
//! Wire layout: `eph_pub (32) ‖ tag (32) ‖ ciphertext`.

use crate::chacha20;
use crate::hmac::{hkdf, hmac_sha256};
use crate::x25519;
use crate::CryptoError;
use rand::Rng;
use std::fmt;

/// An X25519 public key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey([u8; 32]);

impl PublicKey {
    /// Wraps raw public-key bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        PublicKey(bytes)
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

/// An X25519 secret key. The `Debug` impl redacts the key material.
#[derive(Clone)]
pub struct SecretKey([u8; 32]);

impl SecretKey {
    /// Wraps raw secret-key bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        SecretKey(bytes)
    }

    /// The raw bytes. Handle with care.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SecretKey(redacted)")
    }
}

/// An X25519 key pair, as held by the MixNN enclave (`k_pub`, `k_priv` in
/// the paper's notation).
#[derive(Debug, Clone)]
pub struct KeyPair {
    secret: SecretKey,
    public: PublicKey,
}

impl KeyPair {
    /// Generates a key pair from the given RNG.
    ///
    /// # Example
    ///
    /// ```
    /// use mixnn_crypto::KeyPair;
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// let kp = KeyPair::generate(&mut StdRng::seed_from_u64(1));
    /// assert_ne!(kp.public().as_bytes(), &[0u8; 32]);
    /// ```
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut secret = [0u8; 32];
        rng.fill(&mut secret);
        Self::from_secret(SecretKey::from_bytes(secret))
    }

    /// Builds the key pair for an existing secret.
    pub fn from_secret(secret: SecretKey) -> Self {
        let public = PublicKey(x25519::public_key(secret.as_bytes()));
        KeyPair { secret, public }
    }

    /// The public half.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// The secret half.
    pub fn secret(&self) -> &SecretKey {
        &self.secret
    }
}

/// Byte overhead of a sealed box over its plaintext.
pub const OVERHEAD: usize = 64;

const INFO_KEY: &[u8] = b"mixnn sealed box v1 key";
const INFO_NONCE: &[u8] = b"mixnn sealed box v1 nonce";
const INFO_MAC: &[u8] = b"mixnn sealed box v1 mac";

/// Sealed-box encryption to a recipient public key.
///
/// Stateless namespace struct; see the module docs for the construction.
///
/// # Example
///
/// ```
/// use mixnn_crypto::{KeyPair, SealedBox};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), mixnn_crypto::CryptoError> {
/// let mut rng = StdRng::seed_from_u64(7);
/// let enclave = KeyPair::generate(&mut rng);
/// let boxed = SealedBox::seal(b"model update", enclave.public(), &mut rng);
/// let plain = SealedBox::open(&boxed, &enclave)?;
/// assert_eq!(plain, b"model update");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SealedBox;

struct DerivedKeys {
    cipher_key: [u8; 32],
    nonce: [u8; 12],
    mac_key: [u8; 32],
}

impl SealedBox {
    fn derive(shared: &[u8; 32], eph_pub: &[u8; 32], recipient_pub: &[u8; 32]) -> DerivedKeys {
        let mut salt = Vec::with_capacity(64);
        salt.extend_from_slice(eph_pub);
        salt.extend_from_slice(recipient_pub);
        let key = hkdf(&salt, shared, INFO_KEY, 32);
        let nonce = hkdf(&salt, shared, INFO_NONCE, 12);
        let mac = hkdf(&salt, shared, INFO_MAC, 32);
        DerivedKeys {
            cipher_key: key.try_into().expect("hkdf returned 32 bytes"),
            nonce: nonce.try_into().expect("hkdf returned 12 bytes"),
            mac_key: mac.try_into().expect("hkdf returned 32 bytes"),
        }
    }

    /// Encrypts `plaintext` to `recipient`, drawing ephemeral key material
    /// from `rng`. The output is `OVERHEAD` bytes longer than the input.
    pub fn seal<R: Rng + ?Sized>(plaintext: &[u8], recipient: &PublicKey, rng: &mut R) -> Vec<u8> {
        let eph = KeyPair::generate(rng);
        let shared = x25519::x25519(eph.secret().as_bytes(), recipient.as_bytes());
        let keys = Self::derive(&shared, eph.public().as_bytes(), recipient.as_bytes());

        let mut ciphertext = plaintext.to_vec();
        chacha20::xor_keystream(&keys.cipher_key, &keys.nonce, 0, &mut ciphertext);

        let mut mac_input = Vec::with_capacity(32 + ciphertext.len());
        mac_input.extend_from_slice(eph.public().as_bytes());
        mac_input.extend_from_slice(&ciphertext);
        let tag = hmac_sha256(&keys.mac_key, &mac_input);

        let mut out = Vec::with_capacity(OVERHEAD + ciphertext.len());
        out.extend_from_slice(eph.public().as_bytes());
        out.extend_from_slice(&tag);
        out.extend_from_slice(&ciphertext);
        out
    }

    /// Decrypts a sealed box with the recipient's key pair.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BadLength`] if the message is shorter than the
    /// header, or [`CryptoError::AuthenticationFailed`] if the tag does not
    /// verify (wrong key, truncation, or tampering).
    pub fn open(sealed: &[u8], recipient: &KeyPair) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < OVERHEAD {
            return Err(CryptoError::BadLength {
                expected: "at least 64 bytes",
                actual: sealed.len(),
            });
        }
        let eph_pub: [u8; 32] = sealed[..32].try_into().expect("length checked");
        let tag: [u8; 32] = sealed[32..64].try_into().expect("length checked");
        let ciphertext = &sealed[64..];

        let shared = x25519::x25519(recipient.secret().as_bytes(), &eph_pub);
        let keys = Self::derive(&shared, &eph_pub, recipient.public().as_bytes());

        let mut mac_input = Vec::with_capacity(32 + ciphertext.len());
        mac_input.extend_from_slice(&eph_pub);
        mac_input.extend_from_slice(ciphertext);
        let expected_tag = hmac_sha256(&keys.mac_key, &mac_input);
        if !crate::ct_eq(&expected_tag, &tag) {
            return Err(CryptoError::AuthenticationFailed);
        }

        let mut plaintext = ciphertext.to_vec();
        chacha20::xor_keystream(&keys.cipher_key, &keys.nonce, 0, &mut plaintext);
        Ok(plaintext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn recipient() -> (KeyPair, StdRng) {
        let mut rng = StdRng::seed_from_u64(99);
        let kp = KeyPair::generate(&mut rng);
        (kp, rng)
    }

    #[test]
    fn round_trip() {
        let (kp, mut rng) = recipient();
        for len in [0usize, 1, 31, 32, 33, 1000, 10_000] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let sealed = SealedBox::seal(&msg, kp.public(), &mut rng);
            assert_eq!(sealed.len(), msg.len() + OVERHEAD);
            let opened = SealedBox::open(&sealed, &kp).unwrap();
            assert_eq!(opened, msg, "len {len}");
        }
    }

    #[test]
    fn tampering_is_detected() {
        let (kp, mut rng) = recipient();
        let sealed = SealedBox::seal(b"secret update", kp.public(), &mut rng);
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x01;
            assert_eq!(
                SealedBox::open(&bad, &kp),
                Err(CryptoError::AuthenticationFailed),
                "flip at byte {i} was not detected"
            );
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let (kp, mut rng) = recipient();
        let sealed = SealedBox::seal(b"msg", kp.public(), &mut rng);
        assert!(matches!(
            SealedBox::open(&sealed[..10], &kp),
            Err(CryptoError::BadLength { .. })
        ));
        // Truncating ciphertext (but keeping the header) must fail auth.
        assert_eq!(
            SealedBox::open(&sealed[..sealed.len() - 1], &kp),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn wrong_recipient_cannot_open() {
        let (kp, mut rng) = recipient();
        let other = KeyPair::generate(&mut rng);
        let sealed = SealedBox::seal(b"for the enclave only", kp.public(), &mut rng);
        assert_eq!(
            SealedBox::open(&sealed, &other),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn sealing_is_randomized() {
        let (kp, mut rng) = recipient();
        let a = SealedBox::seal(b"same message", kp.public(), &mut rng);
        let b = SealedBox::seal(b"same message", kp.public(), &mut rng);
        assert_ne!(a, b, "ephemeral keys must differ");
    }

    #[test]
    fn secret_key_debug_is_redacted() {
        let (kp, _) = recipient();
        let s = format!("{:?}", kp.secret());
        assert!(s.contains("redacted"));
        assert!(
            !s.contains(&format!("{:?}", kp.secret().as_bytes())),
            "Debug output must not render the key bytes"
        );
    }

    #[test]
    fn keypair_public_matches_secret() {
        let (kp, _) = recipient();
        let expected = crate::x25519::public_key(kp.secret().as_bytes());
        assert_eq!(kp.public().as_bytes(), &expected);
    }
}
