//! The static metric universe: every series the workspace can ever export.
//!
//! All metric identifiers are enums declared here, so the exported
//! cardinality is bounded *by construction*: a [`crate::Registry`] owns one
//! atomic slot per variant and nothing else — there is no API for minting a
//! series at runtime, which is what makes the privacy claim ("no per-client
//! or per-route-group label axis") a static property rather than a
//! convention. Each identifier carries its `(component, name)` key and a
//! help string; exporters render from [`Counter::ALL`]-style tables in
//! declaration order, so snapshots are deterministically ordered too.

use std::sync::atomic::{AtomicU64, Ordering};

/// The instrumented subsystem a metric or trace event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Component {
    /// The single-proxy ingest/mix pipeline (`mixnn-core`).
    Core,
    /// The multi-hop cascade coordinator and hops (`mixnn-cascade`).
    Cascade,
    /// The simulated wire (`mixnn-net`).
    Net,
    /// Federated-learning round progression (`mixnn-fl`).
    Fl,
}

impl Component {
    /// Stable lowercase name used in exported series names.
    pub fn name(self) -> &'static str {
        match self {
            Component::Core => "core",
            Component::Cascade => "cascade",
            Component::Net => "net",
            Component::Fl => "fl",
        }
    }
}

/// Declares a metric-identifier enum whose variants each carry a static
/// `(component, name, help)` triple, plus the `ALL`/`COUNT` tables the
/// registry and exporters index by.
macro_rules! metric_ids {
    (
        $(#[$meta:meta])*
        $vis:vis enum $E:ident {
            $($variant:ident => ($component:ident, $name:literal, $help:literal),)+
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        $vis enum $E {
            $(
                #[doc = $help]
                $variant,
            )+
        }

        impl $E {
            /// Every identifier, in declaration (= export) order.
            $vis const ALL: [$E; $E::COUNT] = [$($E::$variant),+];
            /// Number of identifiers (the registry's slot count).
            $vis const COUNT: usize = [$(stringify!($variant)),+].len();

            /// The subsystem this series belongs to.
            $vis fn component(self) -> Component {
                match self {
                    $($E::$variant => Component::$component,)+
                }
            }

            /// The series name within its component.
            $vis fn name(self) -> &'static str {
                match self {
                    $($E::$variant => $name,)+
                }
            }

            /// One-line help string rendered into `# HELP` lines.
            $vis fn help(self) -> &'static str {
                match self {
                    $($E::$variant => $help,)+
                }
            }

            /// The registry slot index of this identifier.
            $vis fn index(self) -> usize {
                self as usize
            }
        }
    };
}

metric_ids! {
    /// Monotone counters. Every increment site sits on a path whose event
    /// count is independent of the [`Parallelism`] knobs (commit loops,
    /// canonical-order stat absorption, the single-threaded simulator
    /// loop), so counter values are bit-identical across worker counts.
    ///
    /// [`Parallelism`]: https://en.wikipedia.org/wiki/Degree_of_parallelism
    pub enum Counter {
        CoreUpdatesCommitted => (Core, "updates_committed", "Sealed updates accepted into the mixing pipeline."),
        CoreUpdatesRejected => (Core, "updates_rejected", "Sealed updates rejected during ingest (decrypt, decode, signature, or EPC failures)."),
        CoreEnvelopesOpened => (Core, "envelopes_opened", "Sealed envelopes successfully opened and staged."),
        CoreBytesReceived => (Core, "bytes_received", "Ciphertext bytes of accepted updates."),
        CoreBatchesMixed => (Core, "batches_mixed", "Buffered batches flushed through a full layer-mixing plan."),
        CascadeUpdatesIngested => (Cascade, "updates_ingested", "Onion envelopes accepted by cascade hops (summed over hops)."),
        CascadeUpdatesRejected => (Cascade, "updates_rejected", "Onion envelopes rejected by cascade hops."),
        CascadeUpdatesForwarded => (Cascade, "updates_forwarded", "Mixed envelopes forwarded to the next stage (summed over hops)."),
        CascadeBytesReceived => (Cascade, "bytes_received", "Onion ciphertext bytes received by cascade hops."),
        CascadeRoundsCompleted => (Cascade, "rounds_completed", "Cascade rounds that committed a mixed output batch."),
        CascadeRoundsAborted => (Cascade, "rounds_aborted", "Cascade rounds abandoned under the failure policy."),
        CascadeGroupsMixed => (Cascade, "groups_mixed", "Route groups carried through their full hop sequence."),
        CascadeHopsSkipped => (Cascade, "hops_skipped", "Hops dropped from the active chain by FailurePolicy::Skip."),
        CascadePoolsFired => (Cascade, "pools_fired", "Mix pools fired into a cascade round (threshold or deadline)."),
        CascadeDummiesInjected => (Cascade, "dummies_injected", "Hop-generated cover updates injected to pad pools and route groups."),
        NetPacketsSent => (Net, "packets_sent", "Packets handed to the simulated wire."),
        NetPacketsDelivered => (Net, "packets_delivered", "Packets that reached their destination queue."),
        NetPacketsLost => (Net, "packets_lost", "Packets dropped by configured link loss."),
        NetPacketsReordered => (Net, "packets_reordered", "Packets routed through the reorder detour."),
        NetWireBytes => (Net, "wire_bytes", "Total bytes put on the simulated wire."),
        NetBurstsFlushed => (Net, "bursts_flushed", "Frame bursts flushed by the link layer."),
        NetLinkErrors => (Net, "link_errors", "Deliveries that failed with a link error (timeout or connection)."),
        FlRoundsCompleted => (Fl, "rounds_completed", "Federated rounds aggregated by the server."),
        FlClientsTrained => (Fl, "clients_trained", "Client training runs completed across all rounds."),
    }
}

metric_ids! {
    /// High-water-mark gauges (updated with a monotone max).
    pub enum Gauge {
        NetPeakSendQueue => (Net, "peak_send_queue", "Deepest send queue observed on any simulated link."),
        NetPeakRecvQueue => (Net, "peak_recv_queue", "Deepest delivery queue observed on any simulated node."),
    }
}

metric_ids! {
    /// Fixed-bucket value distributions (aggregate sizes only — never keyed
    /// by client, slot, or route group).
    pub enum Distribution {
        CoreMixBatchUpdates => (Core, "mix_batch_updates", "Updates per mixed batch."),
        CascadeGroupMembers => (Cascade, "group_members", "Clients per route group at round commit."),
        CascadePoolDepth => (Cascade, "pool_depth", "Real updates in a pool at the moment it fires."),
        FlRoundParticipants => (Fl, "round_participants", "Clients sampled into a federated round."),
    }
}

metric_ids! {
    /// Timed spans: each records a fixed-bucket histogram of durations in
    /// nanoseconds against the registry's [`crate::ClockSource`]. Under a
    /// virtual clock that the instrumented code does not advance, spans
    /// still *count* deterministically while durations collapse to zero.
    pub enum Span {
        CoreMixBatch => (Core, "mix_batch_ns", "Wall time of MixnnProxy::mix_batch."),
        CascadeRound => (Cascade, "round_ns", "Wall time of one coordinator round (ingest through commit)."),
        CascadePoolWait => (Cascade, "pool_wait_ns", "Added latency per pooled update: arrival to pool firing."),
        FlRound => (Fl, "round_ns", "Wall time of one federated round (training through aggregation)."),
    }
}

/// Bucket bounds for count-valued distributions (powers of four up to 64 Ki,
/// then overflow).
pub const COUNT_BOUNDS: [u64; 9] = [1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536];

/// Bucket bounds for span durations in nanoseconds (1 µs … 60 s, then
/// overflow).
pub const LATENCY_NS_BOUNDS: [u64; 10] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    5_000_000,
    25_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
    60_000_000_000,
];

/// A fixed-bucket histogram over `u64` values.
///
/// Buckets are non-cumulative internally; the Prometheus exporter renders
/// the conventional cumulative `le` form. One extra slot past the last
/// bound catches overflow (`+Inf`).
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// An empty histogram over the given static bucket bounds.
    pub fn new(bounds: &'static [u64]) -> Self {
        Histogram {
            bounds,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// The static bucket bounds.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Per-bucket counts (non-cumulative; the final entry is overflow),
    /// plus the observation count and value sum.
    pub fn read(&self) -> (Vec<u64>, u64, u64) {
        (
            self.buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            self.count.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifier_tables_are_consistent() {
        assert_eq!(Counter::ALL.len(), Counter::COUNT);
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(!c.name().is_empty());
            assert!(!c.help().is_empty());
        }
        assert_eq!(Gauge::ALL.len(), Gauge::COUNT);
        assert_eq!(Distribution::ALL.len(), Distribution::COUNT);
        assert_eq!(Span::ALL.len(), Span::COUNT);
    }

    #[test]
    fn series_keys_are_unique_within_each_kind() {
        let mut keys: Vec<(&str, &str)> = Counter::ALL
            .iter()
            .map(|c| (c.component().name(), c.name()))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), Counter::COUNT, "duplicate counter key");
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::new(&COUNT_BOUNDS);
        h.observe(1);
        h.observe(5);
        h.observe(1_000_000); // overflow
        let (buckets, count, sum) = h.read();
        assert_eq!(count, 3);
        assert_eq!(sum, 1 + 5 + 1_000_000);
        assert_eq!(buckets[0], 1); // le 1
        assert_eq!(buckets[2], 1); // le 16
        assert_eq!(*buckets.last().unwrap(), 1); // +Inf
        assert_eq!(buckets.iter().sum::<u64>(), 3);
    }
}
