//! Deterministic, aggregate-only metrics and round tracing for MixNN.
//!
//! The paper's §6 evaluation lives on per-hop latency, decrypt cost, EPC
//! pressure and bytes-per-round — numbers a deployment needs as first-class
//! telemetry. But telemetry over a mix network is itself an inference side
//! channel: per-client timing or size series are exactly the metadata a
//! colluding observer correlates. This crate therefore fixes the exported
//! universe *statically*:
//!
//! - every series is an enum variant ([`Counter`], [`Gauge`],
//!   [`Distribution`], [`Span`]) carrying its `(component, name)` key —
//!   there is no API for minting a series at runtime, so cardinality is
//!   bounded by construction and no per-client or per-route-group label
//!   axis can exist;
//! - counters increment only on paths whose event counts are invariant
//!   under every `Parallelism` knob, so snapshots are bit-identical across
//!   worker counts;
//! - timestamps flow through a [`ClockSource`] — wall clock for live runs,
//!   a [`VirtualClock`] mirrored from the simulated network for `eval
//!   load`, making traces byte-identical across reruns;
//! - the [`RoundTrace`] journal records per-round/per-hop lifecycle events
//!   (ingest staged/committed, batches opened/mixed, groups mixed, bursts
//!   flushed, skip/abort decisions) from serialized code paths only.
//!
//! [`Snapshot`] renders to Prometheus text and JSON; [`validate_prometheus`]
//! is the exported-format checker CI runs (duplicate series, non-monotone
//! counters, unbounded or per-entity label axes all fail the build).
//!
//! # Example
//!
//! ```
//! use mixnn_telemetry::{Counter, Registry, validate_prometheus};
//!
//! let telemetry = Registry::new().shared();
//! telemetry.incr(Counter::CoreUpdatesCommitted, 3);
//! let text = telemetry.snapshot().to_prometheus();
//! assert!(text.contains("mixnn_core_updates_committed_total 3"));
//! validate_prometheus(&text).unwrap();
//! ```

#![deny(missing_docs)]

mod clock;
mod export;
mod metrics;
mod registry;
mod trace;

pub use clock::{ClockSource, VirtualClock, WallClock};
pub use export::{
    check_counter_monotonicity, validate_prometheus, CounterSample, GaugeSample, HistogramSample,
    PromSummary, Snapshot, FORBIDDEN_LABEL_AXES, MAX_LABEL_SETS_PER_FAMILY,
};
pub use metrics::{
    Component, Counter, Distribution, Gauge, Histogram, Span, COUNT_BOUNDS, LATENCY_NS_BOUNDS,
};
pub use registry::{noop, Registry, SpanGuard, Telemetry};
pub use trace::{RoundTrace, TraceEvent, TraceKind, DEFAULT_TRACE_CAPACITY};
