//! Clock sources for timestamps and span durations.
//!
//! A [`crate::Registry`] reads time through a [`ClockSource`], so the same
//! instrumentation can run against the wall clock (live deployments,
//! throughput benchmarks) or against [`SimNet`]'s virtual nanosecond clock
//! (the load generator) — under the virtual clock, trace timestamps and
//! span durations are pure functions of the simulation and therefore
//! byte-identical across reruns.
//!
//! [`SimNet`]: https://docs.rs/

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotone nanosecond clock.
pub trait ClockSource: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since this clock's origin.
    fn now_ns(&self) -> u64;
}

/// The process wall clock, measured from construction.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose origin is now.
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ClockSource for WallClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A manually driven clock, shareable by handle.
///
/// The simulated network advances its registry's `VirtualClock` in lockstep
/// with its own event clock; tests can also drive one directly. A clone
/// observes the same underlying time.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    ns: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A virtual clock frozen at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the current virtual time.
    pub fn set_ns(&self, ns: u64) {
        self.ns.store(ns, Ordering::Relaxed);
    }

    /// Advances the clock by `ns` and returns the new time.
    pub fn advance_ns(&self, ns: u64) -> u64 {
        self.ns.fetch_add(ns, Ordering::Relaxed) + ns
    }
}

impl ClockSource for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_clones_share_time() {
        let c = VirtualClock::new();
        let view = c.clone();
        assert_eq!(view.now_ns(), 0);
        c.set_ns(42);
        assert_eq!(view.now_ns(), 42);
        assert_eq!(view.advance_ns(8), 50);
        assert_eq!(c.now_ns(), 50);
    }
}
