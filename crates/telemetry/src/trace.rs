//! The round-trace journal: per-round, per-hop lifecycle events.
//!
//! Trace events are recorded **only from serialized code paths** (ingest
//! commit loops, coordinator round drivers, the single-threaded network
//! event loop), so the journal's order is a function of program semantics,
//! not thread scheduling. Combined with a virtual [`crate::ClockSource`],
//! the rendered trace from a simulated run is byte-identical across reruns.
//!
//! Events carry only aggregate fields (counts, byte totals, hop indices) —
//! there is deliberately no constructor that takes a client, slot, or
//! route-group identifier.

use crate::metrics::Component;

/// What happened. Payload fields are aggregates over the whole batch,
/// round, or burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A coordinator round began.
    RoundStarted {
        /// Round ordinal (per coordinator / simulation, starting at 0).
        round: u64,
    },
    /// A round committed its mixed output.
    RoundCompleted {
        /// Round ordinal.
        round: u64,
    },
    /// A round was abandoned under `FailurePolicy::Abort`.
    RoundAborted {
        /// Round ordinal.
        round: u64,
    },
    /// A failing hop was dropped from the active chain
    /// (`FailurePolicy::Skip`).
    HopSkipped,
    /// A batch of sealed inputs finished parallel staging.
    IngestStaged {
        /// Inputs handed to the staging fan-out.
        updates: u64,
    },
    /// A staged batch finished its serialized commit loop.
    IngestCommitted {
        /// Updates accepted.
        accepted: u64,
        /// Updates rejected.
        rejected: u64,
    },
    /// A batch of sealed envelopes was opened through the batched
    /// sealed-box kernels.
    BatchOpened {
        /// Envelopes in the batch.
        envelopes: u64,
    },
    /// A buffered batch was pushed through a full mixing plan.
    BatchMixed {
        /// Updates mixed.
        updates: u64,
    },
    /// A route group completed its full hop sequence.
    GroupMixed {
        /// Clients in the group.
        members: u64,
    },
    /// The link layer flushed a segment's frame bursts onto the wire.
    BurstFlushed {
        /// Bursts flushed.
        bursts: u64,
        /// Frames across all bursts.
        frames: u64,
        /// Bytes across all bursts.
        bytes: u64,
    },
    /// A delivery failed with a link error.
    LinkError,
}

/// One journal entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Timestamp from the registry's clock source.
    pub at_ns: u64,
    /// Subsystem that recorded the event.
    pub component: Component,
    /// Hop index, where the event is hop-scoped.
    pub hop: Option<u16>,
    /// The event itself.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Renders the event as one stable, line-oriented record.
    pub fn render(&self) -> String {
        let hop = match self.hop {
            Some(h) => format!("{h}"),
            None => "-".to_string(),
        };
        let kind = match self.kind {
            TraceKind::RoundStarted { round } => format!("round_started round={round}"),
            TraceKind::RoundCompleted { round } => format!("round_completed round={round}"),
            TraceKind::RoundAborted { round } => format!("round_aborted round={round}"),
            TraceKind::HopSkipped => "hop_skipped".to_string(),
            TraceKind::IngestStaged { updates } => format!("ingest_staged updates={updates}"),
            TraceKind::IngestCommitted { accepted, rejected } => {
                format!("ingest_committed accepted={accepted} rejected={rejected}")
            }
            TraceKind::BatchOpened { envelopes } => format!("batch_opened envelopes={envelopes}"),
            TraceKind::BatchMixed { updates } => format!("batch_mixed updates={updates}"),
            TraceKind::GroupMixed { members } => format!("group_mixed members={members}"),
            TraceKind::BurstFlushed {
                bursts,
                frames,
                bytes,
            } => format!("burst_flushed bursts={bursts} frames={frames} bytes={bytes}"),
            TraceKind::LinkError => "link_error".to_string(),
        };
        format!(
            "{} {} hop={} {}",
            self.at_ns,
            self.component.name(),
            hop,
            kind
        )
    }
}

/// A bounded, append-only event journal.
///
/// Once `capacity` events have been recorded, further events are counted
/// but not stored, so a long-running simulation cannot grow the journal
/// without bound; the drop count is rendered at the end of the trace so
/// truncation is never silent.
#[derive(Debug)]
pub struct RoundTrace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

/// Default journal capacity.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

impl RoundTrace {
    /// An empty journal holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RoundTrace {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, or counts it as dropped when full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events recorded after the journal filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the whole journal as newline-separated records.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.render());
            out.push('\n');
        }
        if self.dropped > 0 {
            out.push_str(&format!(
                "# dropped {} events (journal full)\n",
                self.dropped
            ));
        }
        out
    }
}

impl Default for RoundTrace {
    fn default() -> Self {
        Self::new(DEFAULT_TRACE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_stable_and_line_oriented() {
        let mut trace = RoundTrace::default();
        trace.push(TraceEvent {
            at_ns: 7,
            component: Component::Cascade,
            hop: Some(2),
            kind: TraceKind::GroupMixed { members: 5 },
        });
        trace.push(TraceEvent {
            at_ns: 9,
            component: Component::Net,
            hop: None,
            kind: TraceKind::BurstFlushed {
                bursts: 1,
                frames: 4,
                bytes: 128,
            },
        });
        assert_eq!(
            trace.render(),
            "7 cascade hop=2 group_mixed members=5\n\
             9 net hop=- burst_flushed bursts=1 frames=4 bytes=128\n"
        );
    }

    #[test]
    fn journal_caps_and_reports_drops() {
        let mut trace = RoundTrace::new(2);
        for i in 0..5 {
            trace.push(TraceEvent {
                at_ns: i,
                component: Component::Core,
                hop: None,
                kind: TraceKind::HopSkipped,
            });
        }
        assert_eq!(trace.events().len(), 2);
        assert_eq!(trace.dropped(), 3);
        assert!(trace.render().contains("# dropped 3 events"));
    }
}
