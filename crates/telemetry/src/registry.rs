//! The metric registry: one atomic slot per static identifier, a span
//! timer, and the round-trace journal.

use crate::clock::{ClockSource, VirtualClock, WallClock};
use crate::export::{CounterSample, GaugeSample, HistogramSample, Snapshot};
use crate::metrics::{
    Component, Counter, Distribution, Gauge, Histogram, Span, COUNT_BOUNDS, LATENCY_NS_BOUNDS,
};
use crate::trace::{RoundTrace, TraceEvent, TraceKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The shared handle instrumented components hold.
///
/// Cloning is an `Arc` bump; every recording method takes `&self`, so one
/// registry can be attached across proxies, hops, the simulator, and the
/// FL loop at once.
pub type Telemetry = Arc<Registry>;

/// A process-local metric registry.
///
/// Cardinality is fixed at construction: exactly one slot per
/// [`Counter`]/[`Gauge`]/[`Distribution`]/[`Span`] variant. Recording into
/// a disabled registry is a single branch; building the crate with the
/// `off` feature folds every recording body away entirely.
pub struct Registry {
    enabled: bool,
    clock: Box<dyn ClockSource>,
    vclock: Option<VirtualClock>,
    counters: Vec<AtomicU64>,
    gauges: Vec<AtomicU64>,
    distributions: Vec<Histogram>,
    spans: Vec<Histogram>,
    trace: Mutex<RoundTrace>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.enabled)
            .field("clock", &self.clock)
            .finish_non_exhaustive()
    }
}

impl Registry {
    fn build(enabled: bool, clock: Box<dyn ClockSource>, vclock: Option<VirtualClock>) -> Self {
        Registry {
            enabled,
            clock,
            vclock,
            counters: (0..Counter::COUNT).map(|_| AtomicU64::new(0)).collect(),
            gauges: (0..Gauge::COUNT).map(|_| AtomicU64::new(0)).collect(),
            distributions: Distribution::ALL
                .iter()
                .map(|_| Histogram::new(&COUNT_BOUNDS))
                .collect(),
            spans: Span::ALL
                .iter()
                .map(|_| Histogram::new(&LATENCY_NS_BOUNDS))
                .collect(),
            trace: Mutex::new(RoundTrace::default()),
        }
    }

    /// An enabled registry on the wall clock.
    pub fn new() -> Self {
        Self::build(true, Box::new(WallClock::new()), None)
    }

    /// An enabled registry on an arbitrary clock source.
    pub fn with_clock(clock: Box<dyn ClockSource>) -> Self {
        Self::build(true, clock, None)
    }

    /// An enabled registry on a [`VirtualClock`], keeping the handle so
    /// the simulated network can discover and drive it
    /// (see [`Registry::virtual_clock`]).
    pub fn with_virtual_clock(clock: VirtualClock) -> Self {
        Self::build(true, Box::new(clock.clone()), Some(clock))
    }

    /// A disabled registry: every recording call returns after one branch.
    pub fn disabled() -> Self {
        Self::build(false, Box::new(VirtualClock::new()), None)
    }

    /// Wraps the registry in the shared [`Telemetry`] handle.
    pub fn shared(self) -> Telemetry {
        Arc::new(self)
    }

    /// Whether hooks record anything. With the `off` feature this is
    /// compile-time `false` regardless of construction.
    #[inline]
    pub fn enabled(&self) -> bool {
        #[cfg(feature = "off")]
        {
            false
        }
        #[cfg(not(feature = "off"))]
        {
            self.enabled
        }
    }

    /// The virtual clock this registry was built on, if any — the
    /// simulated network uses this to mirror its event clock into
    /// telemetry timestamps.
    pub fn virtual_clock(&self) -> Option<VirtualClock> {
        self.vclock.clone()
    }

    /// Current time on the registry's clock source.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Adds `by` to a counter.
    #[inline]
    pub fn incr(&self, counter: Counter, by: u64) {
        if !self.enabled() {
            return;
        }
        self.counters[counter.index()].fetch_add(by, Ordering::Relaxed);
    }

    /// Raises a high-water-mark gauge to at least `value`.
    #[inline]
    pub fn gauge_max(&self, gauge: Gauge, value: u64) {
        if !self.enabled() {
            return;
        }
        self.gauges[gauge.index()].fetch_max(value, Ordering::Relaxed);
    }

    /// Records one observation into a value distribution.
    #[inline]
    pub fn observe(&self, distribution: Distribution, value: u64) {
        if !self.enabled() {
            return;
        }
        self.distributions[distribution.index()].observe(value);
    }

    /// Records a span duration directly.
    #[inline]
    pub fn record_span_ns(&self, span: Span, ns: u64) {
        if !self.enabled() {
            return;
        }
        self.spans[span.index()].observe(ns);
    }

    /// Starts a span; the returned guard records the duration on drop.
    pub fn span(self: &Arc<Self>, span: Span) -> SpanGuard {
        if !self.enabled() {
            return SpanGuard { active: None };
        }
        SpanGuard {
            active: Some((Arc::clone(self), span, self.now_ns())),
        }
    }

    /// Appends a trace event stamped with the registry clock.
    ///
    /// Call only from serialized code paths — the journal preserves
    /// insertion order, and deterministic traces depend on that order
    /// being a function of program semantics rather than scheduling.
    pub fn trace(&self, component: Component, hop: Option<u16>, kind: TraceKind) {
        if !self.enabled() {
            return;
        }
        let event = TraceEvent {
            at_ns: self.now_ns(),
            component,
            hop,
            kind,
        };
        self.trace
            .lock()
            .expect("trace journal poisoned")
            .push(event);
    }

    /// A copy of the trace journal's events, in order.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace
            .lock()
            .expect("trace journal poisoned")
            .events()
            .to_vec()
    }

    /// The rendered trace journal.
    pub fn trace_text(&self) -> String {
        self.trace.lock().expect("trace journal poisoned").render()
    }

    /// Reads one counter (tests and report plumbing).
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter.index()].load(Ordering::Relaxed)
    }

    /// Reads one gauge.
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.gauges[gauge.index()].load(Ordering::Relaxed)
    }

    /// Captures a point-in-time snapshot of every series, in static
    /// declaration order.
    pub fn snapshot(&self) -> Snapshot {
        let counters = Counter::ALL
            .iter()
            .map(|&c| CounterSample {
                component: c.component().name(),
                name: c.name(),
                help: c.help(),
                value: self.counter(c),
            })
            .collect();
        let gauges = Gauge::ALL
            .iter()
            .map(|&g| GaugeSample {
                component: g.component().name(),
                name: g.name(),
                help: g.help(),
                value: self.gauge(g),
            })
            .collect();
        let mut histograms = Vec::with_capacity(Distribution::COUNT + Span::COUNT);
        for &d in Distribution::ALL.iter() {
            let h = &self.distributions[d.index()];
            let (buckets, count, sum) = h.read();
            histograms.push(HistogramSample {
                component: d.component().name(),
                name: d.name(),
                help: d.help(),
                bounds: h.bounds(),
                buckets,
                count,
                sum,
            });
        }
        for &s in Span::ALL.iter() {
            let h = &self.spans[s.index()];
            let (buckets, count, sum) = h.read();
            histograms.push(HistogramSample {
                component: s.component().name(),
                name: s.name(),
                help: s.help(),
                bounds: h.bounds(),
                buckets,
                count,
                sum,
            });
        }
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// Records the elapsed time of a [`Registry::span`] on drop.
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<(Telemetry, Span, u64)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((registry, span, start_ns)) = self.active.take() {
            let elapsed = registry.now_ns().saturating_sub(start_ns);
            registry.record_span_ns(span, elapsed);
        }
    }
}

/// The shared no-op handle: a disabled registry every component holds by
/// default, so hooks are always wired and attaching real telemetry is
/// just swapping the handle.
pub fn noop() -> Telemetry {
    static NOOP: OnceLock<Telemetry> = OnceLock::new();
    Arc::clone(NOOP.get_or_init(|| Registry::disabled().shared()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = noop();
        reg.incr(Counter::CoreUpdatesCommitted, 5);
        reg.gauge_max(Gauge::NetPeakSendQueue, 9);
        reg.observe(Distribution::CoreMixBatchUpdates, 3);
        reg.record_span_ns(Span::CoreMixBatch, 100);
        reg.trace(Component::Core, None, TraceKind::HopSkipped);
        assert_eq!(reg.counter(Counter::CoreUpdatesCommitted), 0);
        assert_eq!(reg.gauge(Gauge::NetPeakSendQueue), 0);
        assert!(reg.trace_events().is_empty());
    }

    #[test]
    fn enabled_registry_accumulates() {
        let reg = Registry::with_virtual_clock(VirtualClock::new()).shared();
        reg.incr(Counter::NetPacketsSent, 2);
        reg.incr(Counter::NetPacketsSent, 3);
        reg.gauge_max(Gauge::NetPeakRecvQueue, 4);
        reg.gauge_max(Gauge::NetPeakRecvQueue, 2);
        assert_eq!(reg.counter(Counter::NetPacketsSent), 5);
        assert_eq!(reg.gauge(Gauge::NetPeakRecvQueue), 4);
    }

    #[test]
    fn span_guard_records_virtual_duration() {
        let clock = VirtualClock::new();
        let reg = Registry::with_virtual_clock(clock.clone()).shared();
        {
            let _guard = reg.span(Span::FlRound);
            clock.advance_ns(1_500);
        }
        let snap = reg.snapshot();
        let fl_round = snap
            .histograms
            .iter()
            .find(|h| h.component == "fl" && h.name == "round_ns")
            .unwrap();
        assert_eq!(fl_round.count, 1);
        assert_eq!(fl_round.sum, 1_500);
    }

    #[test]
    fn trace_events_are_stamped_with_the_registry_clock() {
        let clock = VirtualClock::new();
        let reg = Registry::with_virtual_clock(clock.clone()).shared();
        clock.set_ns(77);
        reg.trace(Component::Net, None, TraceKind::RoundCompleted { round: 1 });
        let events = reg.trace_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].at_ns, 77);
    }

    #[test]
    fn virtual_clock_handle_is_discoverable() {
        let clock = VirtualClock::new();
        let reg = Registry::with_virtual_clock(clock).shared();
        let handle = reg.virtual_clock().expect("built with a virtual clock");
        handle.set_ns(5);
        assert_eq!(reg.now_ns(), 5);
        assert!(Registry::new().virtual_clock().is_none());
    }
}
