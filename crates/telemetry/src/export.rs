//! Exporters: Prometheus text format, a JSON snapshot, and a format
//! checker.
//!
//! Both renderers are hand-rolled (the workspace's serde shim does not
//! serialize) and emit series in static declaration order, so two
//! snapshots of registries in the same state render byte-identically.
//! [`validate_prometheus`] is the checker CI runs over exported text: it
//! rejects duplicate series, malformed values, broken histogram
//! invariants, and — the privacy-relevant part — any label axis that
//! could carry a client, slot, or route-group identity.

use std::collections::BTreeMap;

/// One counter sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Component name (e.g. `core`).
    pub component: &'static str,
    /// Series name within the component.
    pub name: &'static str,
    /// Help string.
    pub help: &'static str,
    /// Current value.
    pub value: u64,
}

/// One gauge sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSample {
    /// Component name.
    pub component: &'static str,
    /// Series name within the component.
    pub name: &'static str,
    /// Help string.
    pub help: &'static str,
    /// Current value.
    pub value: u64,
}

/// One histogram sample (distribution or span).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// Component name.
    pub component: &'static str,
    /// Series name within the component.
    pub name: &'static str,
    /// Help string.
    pub help: &'static str,
    /// Static bucket upper bounds (exclusive of the implicit `+Inf`).
    pub bounds: &'static [u64],
    /// Non-cumulative per-bucket counts; the final entry is overflow.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

/// A point-in-time copy of every series in a registry.
///
/// Comparable with `==` and renderable to both export formats; the
/// determinism tests compare rendered snapshots byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Counters, in declaration order.
    pub counters: Vec<CounterSample>,
    /// Gauges, in declaration order.
    pub gauges: Vec<GaugeSample>,
    /// Distributions then spans, in declaration order.
    pub histograms: Vec<HistogramSample>,
}

fn series_name(component: &str, name: &str) -> String {
    format!("mixnn_{component}_{name}")
}

impl Snapshot {
    /// Renders the snapshot in Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let full = format!("{}_total", series_name(c.component, c.name));
            out.push_str(&format!(
                "# HELP {full} {}\n# TYPE {full} counter\n",
                c.help
            ));
            out.push_str(&format!("{full} {}\n", c.value));
        }
        for g in &self.gauges {
            let full = series_name(g.component, g.name);
            out.push_str(&format!("# HELP {full} {}\n# TYPE {full} gauge\n", g.help));
            out.push_str(&format!("{full} {}\n", g.value));
        }
        for h in &self.histograms {
            let full = series_name(h.component, h.name);
            out.push_str(&format!(
                "# HELP {full} {}\n# TYPE {full} histogram\n",
                h.help
            ));
            let mut cumulative = 0u64;
            for (bound, bucket) in h.bounds.iter().zip(&h.buckets) {
                cumulative += bucket;
                out.push_str(&format!("{full}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
            }
            cumulative += h.buckets.last().copied().unwrap_or(0);
            out.push_str(&format!("{full}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
            out.push_str(&format!("{full}_sum {}\n", h.sum));
            out.push_str(&format!("{full}_count {}\n", h.count));
        }
        out
    }

    /// Renders the snapshot as one JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    ///
    /// `indent` prefixes every line, so the object can be embedded in a
    /// larger hand-rolled document at the caller's nesting depth.
    pub fn to_json(&self, indent: &str) -> String {
        let deeper = format!("{indent}  ");
        let mut out = format!("{{\n{deeper}\"counters\": {{");
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|c| {
                format!(
                    "\"{}_total\": {}",
                    series_name(c.component, c.name),
                    c.value
                )
            })
            .collect();
        out.push_str(&counters.join(", "));
        out.push_str(&format!("}},\n{deeper}\"gauges\": {{"));
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|g| format!("\"{}\": {}", series_name(g.component, g.name), g.value))
            .collect();
        out.push_str(&gauges.join(", "));
        out.push_str(&format!("}},\n{deeper}\"histograms\": {{\n"));
        for (i, h) in self.histograms.iter().enumerate() {
            let buckets: Vec<String> = h
                .bounds
                .iter()
                .map(|b| b.to_string())
                .chain(std::iter::once("\"+Inf\"".to_string()))
                .zip(&h.buckets)
                .map(|(le, count)| format!("[{le}, {count}]"))
                .collect();
            out.push_str(&format!(
                "{deeper}  \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [{}]}}{}\n",
                series_name(h.component, h.name),
                h.count,
                h.sum,
                buckets.join(", "),
                if i + 1 == self.histograms.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str(&format!("{deeper}}}\n{indent}}}"));
        out
    }
}

/// What [`validate_prometheus`] measured while checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromSummary {
    /// Metric families declared with `# TYPE`.
    pub families: usize,
    /// Total sample lines.
    pub series: usize,
    /// Largest number of distinct label sets under one family.
    pub max_label_sets: usize,
}

/// Label names that would constitute a per-client or per-route side
/// channel; the checker rejects any exported label whose name contains one
/// of these as a substring.
pub const FORBIDDEN_LABEL_AXES: [&str; 5] = ["client", "slot", "route", "group", "user"];

/// Hard ceiling on distinct label sets per metric family — far above
/// anything the static registry can emit (histogram buckets), far below
/// anything per-client.
pub const MAX_LABEL_SETS_PER_FAMILY: usize = 64;

fn parse_labels(raw: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    for part in raw.split(',').filter(|p| !p.is_empty()) {
        let (name, value) = part
            .split_once('=')
            .ok_or_else(|| format!("malformed label {part:?}"))?;
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted label value in {part:?}"))?;
        labels.push((name.trim().to_string(), value.to_string()));
    }
    Ok(labels)
}

fn family_of(sample_name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stripped) = sample_name.strip_suffix(suffix) {
            return stripped;
        }
    }
    sample_name
}

/// Checks Prometheus exposition text.
///
/// Enforced: every sample belongs to a `# TYPE`-declared family, each
/// family is declared once, no duplicate `(name, labels)` series, every
/// value parses as an unsigned integer (all MixNN series are integral),
/// histogram buckets are cumulative with `+Inf` equal to `_count`, label
/// names avoid [`FORBIDDEN_LABEL_AXES`], and no family exceeds
/// [`MAX_LABEL_SETS_PER_FAMILY`] label sets.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate_prometheus(text: &str) -> Result<PromSummary, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut seen: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut values: BTreeMap<String, u64> = BTreeMap::new();
    let mut series = 0usize;

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or("").to_string();
            let kind = parts.next().unwrap_or("").to_string();
            if !["counter", "gauge", "histogram"].contains(&kind.as_str()) {
                return Err(format!("line {}: unknown TYPE {kind:?}", lineno + 1));
            }
            if types.insert(name.clone(), kind).is_some() {
                return Err(format!("line {}: duplicate TYPE for {name}", lineno + 1));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }

        // A sample: name[{labels}] value
        let (name_and_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: malformed sample {line:?}", lineno + 1))?;
        let value: u64 = value
            .parse()
            .map_err(|_| format!("line {}: non-integer value {value:?}", lineno + 1))?;
        let (name, labels) = match name_and_labels.split_once('{') {
            Some((name, rest)) => {
                let raw = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {}: unterminated labels", lineno + 1))?;
                (name, parse_labels(raw)?)
            }
            None => (name_and_labels, Vec::new()),
        };
        for (label, _) in &labels {
            let lower = label.to_ascii_lowercase();
            if FORBIDDEN_LABEL_AXES.iter().any(|axis| lower.contains(axis)) {
                return Err(format!(
                    "line {}: label {label:?} is a forbidden per-entity axis",
                    lineno + 1
                ));
            }
        }
        let family = family_of(name);
        if !types.contains_key(family) && !types.contains_key(name) {
            return Err(format!(
                "line {}: sample {name} has no TYPE declaration",
                lineno + 1
            ));
        }
        let label_key = labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",");
        let series_key = format!("{name}{{{label_key}}}");
        let family_sets = seen.entry(family.to_string()).or_default();
        if family_sets.contains(&series_key) {
            return Err(format!(
                "line {}: duplicate series {series_key}",
                lineno + 1
            ));
        }
        family_sets.push(series_key.clone());
        if family_sets.len() > MAX_LABEL_SETS_PER_FAMILY {
            return Err(format!(
                "family {family} exceeds {MAX_LABEL_SETS_PER_FAMILY} label sets"
            ));
        }
        values.insert(series_key, value);
        series += 1;
    }

    // Histogram invariants: buckets cumulative, +Inf == _count.
    for (family, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        let mut last = 0u64;
        let mut inf = None;
        for key in seen.get(family).map(Vec::as_slice).unwrap_or(&[]) {
            if !key.starts_with(&format!("{family}_bucket")) {
                continue;
            }
            let v = values[key];
            if v < last {
                return Err(format!("histogram {family}: non-cumulative bucket {key}"));
            }
            last = v;
            if key.contains("le=+Inf") {
                inf = Some(v);
            }
        }
        let count = values
            .get(&format!("{family}_count{{}}"))
            .copied()
            .ok_or_else(|| format!("histogram {family}: missing _count"))?;
        if let Some(inf) = inf {
            if inf != count {
                return Err(format!(
                    "histogram {family}: +Inf bucket {inf} != count {count}"
                ));
            }
        } else {
            return Err(format!("histogram {family}: missing +Inf bucket"));
        }
    }

    let max_label_sets = seen.values().map(Vec::len).max().unwrap_or(0);
    Ok(PromSummary {
        families: types.len(),
        series,
        max_label_sets,
    })
}

/// Checks that every counter-family sample in `prev` is present in `next`
/// with a value at least as large — the "monotone counters" half of the CI
/// export check, run across two snapshots of the same registry.
///
/// # Errors
///
/// Returns a description of the first regression or disappearance.
pub fn check_counter_monotonicity(prev: &str, next: &str) -> Result<(), String> {
    let read = |text: &str| -> Result<BTreeMap<String, u64>, String> {
        validate_prometheus(text)?;
        let mut out = BTreeMap::new();
        for line in text.lines() {
            if line.starts_with('#') || line.trim().is_empty() {
                continue;
            }
            if let Some((key, value)) = line.rsplit_once(' ') {
                if family_of(key.split('{').next().unwrap_or(key)).ends_with("_total")
                    || key.contains("_bucket")
                    || key.contains("_count")
                    || key.contains("_sum")
                {
                    out.insert(key.to_string(), value.parse().unwrap_or(0));
                }
            }
        }
        Ok(out)
    };
    let before = read(prev)?;
    let after = read(next)?;
    for (key, old) in &before {
        match after.get(key) {
            None => return Err(format!("series {key} disappeared")),
            Some(new) if new < old => {
                return Err(format!("series {key} regressed: {old} -> {new}"))
            }
            Some(_) => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Component, Counter, Distribution};
    use crate::registry::Registry;
    use crate::trace::TraceKind;

    fn sample_registry() -> Registry {
        let reg = Registry::with_virtual_clock(crate::clock::VirtualClock::new());
        reg.incr(Counter::CoreUpdatesCommitted, 12);
        reg.incr(Counter::NetPacketsSent, 3);
        reg.observe(Distribution::CoreMixBatchUpdates, 12);
        reg.trace(Component::Core, None, TraceKind::BatchMixed { updates: 12 });
        reg
    }

    #[test]
    fn prometheus_render_passes_its_own_checker() {
        let text = sample_registry().snapshot().to_prometheus();
        let summary = validate_prometheus(&text).unwrap();
        assert!(summary.families > 20);
        assert!(summary.series > summary.families);
        // Only histogram buckets carry labels; cardinality stays tiny.
        assert!(summary.max_label_sets <= 16, "{summary:?}");
    }

    #[test]
    fn renders_are_deterministic_for_equal_state() {
        let a = sample_registry().snapshot();
        let b = sample_registry().snapshot();
        assert_eq!(a, b);
        assert_eq!(a.to_prometheus(), b.to_prometheus());
        assert_eq!(a.to_json(""), b.to_json(""));
    }

    #[test]
    fn json_braces_balance() {
        let json = sample_registry().snapshot().to_json("  ");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"mixnn_core_updates_committed_total\": 12"));
    }

    #[test]
    fn checker_rejects_duplicates_and_per_client_axes() {
        let dup = "# TYPE m_total counter\nm_total 1\nm_total 2\n";
        assert!(validate_prometheus(dup).unwrap_err().contains("duplicate"));
        let axis = "# TYPE m_total counter\nm_total{client_id=\"7\"} 1\n";
        assert!(validate_prometheus(axis).unwrap_err().contains("forbidden"));
        let untyped = "m_total 1\n";
        assert!(validate_prometheus(untyped)
            .unwrap_err()
            .contains("no TYPE"));
        let float = "# TYPE m gauge\nm 1.5\n";
        assert!(validate_prometheus(float)
            .unwrap_err()
            .contains("non-integer"));
    }

    #[test]
    fn monotonicity_check_catches_regressions() {
        let reg = sample_registry();
        let before = reg.snapshot().to_prometheus();
        reg.incr(Counter::CoreUpdatesCommitted, 1);
        let after = reg.snapshot().to_prometheus();
        check_counter_monotonicity(&before, &after).unwrap();
        let err = check_counter_monotonicity(&after, &before).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
    }
}
