//! The parallel pipeline's load-bearing property: worker and shard counts
//! are throughput knobs, never semantics knobs. For fixed seeds, parallel
//! ingest plus sharded mixing must produce byte-identical mixed outputs —
//! and an identical `MixPlan` — to the fully sequential path, at every
//! worker count.

use mixnn_core::{
    codec, MixPlan, MixingStrategy, MixnnProxy, MixnnProxyConfig, ParallelIngest, Parallelism,
};
use mixnn_crypto::SealedBox;
use mixnn_enclave::AttestationService;
use mixnn_nn::{LayerParams, ModelParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn signature(layers: usize) -> Vec<usize> {
    (0..layers).map(|l| 3 + (l % 4) * 2).collect()
}

fn launch(
    strategy: MixingStrategy,
    layers: usize,
    seed: u64,
    parallelism: Parallelism,
) -> MixnnProxy {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa5);
    let service = AttestationService::new(&mut rng);
    MixnnProxy::launch(
        MixnnProxyConfig {
            strategy,
            expected_signature: signature(layers),
            seed,
            parallelism,
            ..MixnnProxyConfig::default()
        },
        &service,
        &mut rng,
    )
}

fn sealed_round(proxy: &MixnnProxy, clients: usize, layers: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc3);
    (0..clients)
        .map(|_| {
            let params = ModelParams::from_layers(
                signature(layers)
                    .into_iter()
                    .map(|len| {
                        LayerParams::from_values(
                            (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect(),
                        )
                    })
                    .collect(),
            );
            SealedBox::seal(&codec::encode_params(&params), proxy.public_key(), &mut rng).unwrap()
        })
        .collect()
}

/// Runs one full encrypted batch round at the given parallelism and
/// returns everything observable: the mixed updates and the plan.
fn batch_round(
    clients: usize,
    layers: usize,
    seed: u64,
    workers: usize,
    shards: usize,
) -> (Vec<ModelParams>, MixPlan) {
    let parallelism = Parallelism {
        ingest_workers: workers,
        mix_shards: shards,
        ..Parallelism::sequential()
    };
    let mut proxy = launch(MixingStrategy::Batch, layers, seed, parallelism);
    let sealed = sealed_round(&proxy, clients, layers, seed);
    for r in ParallelIngest::new(workers).submit_all(&mut proxy, &sealed) {
        r.expect("well-formed update rejected");
    }
    let mixed = proxy.mix_batch().expect("round mixes");
    let plan = proxy
        .last_plan()
        .expect("batch round records a plan")
        .clone();
    (mixed, plan)
}

/// Streaming variant: returns all emissions (streamed then flushed).
fn streaming_round(
    clients: usize,
    layers: usize,
    k: usize,
    seed: u64,
    workers: usize,
    shards: usize,
) -> Vec<ModelParams> {
    let parallelism = Parallelism {
        ingest_workers: workers,
        mix_shards: shards,
        ..Parallelism::sequential()
    };
    let mut proxy = launch(MixingStrategy::Streaming { k }, layers, seed, parallelism);
    let sealed = sealed_round(&proxy, clients, layers, seed);
    let mut out: Vec<ModelParams> = ParallelIngest::new(workers)
        .submit_all(&mut proxy, &sealed)
        .into_iter()
        .filter_map(|r| r.expect("well-formed update rejected"))
        .collect();
    out.extend(proxy.flush().expect("flush drains cleanly"));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batch_pipeline_is_worker_and_shard_count_invariant(
        workers in 1usize..8,
        shards in 1usize..8,
        clients in 4usize..12,
        layers in 1usize..4,
        seed in 0u64..1000,
    ) {
        let (seq_mixed, seq_plan) = batch_round(clients, layers, seed, 1, 1);
        let (par_mixed, par_plan) = batch_round(clients, layers, seed, workers, shards);
        prop_assert_eq!(&seq_mixed, &par_mixed);
        prop_assert_eq!(&seq_plan, &par_plan);
    }

    #[test]
    fn streaming_pipeline_is_worker_and_shard_count_invariant(
        workers in 1usize..8,
        shards in 1usize..8,
        clients in 5usize..14,
        layers in 1usize..4,
        k in 2usize..5,
        seed in 0u64..1000,
    ) {
        let sequential = streaming_round(clients, layers, k, seed, 1, 1);
        let parallel = streaming_round(clients, layers, k, seed, workers, shards);
        prop_assert_eq!(sequential, parallel);
    }
}

#[test]
fn encrypted_transport_round_is_parallelism_invariant() {
    use mixnn_core::{MixnnTransport, TransportMode};
    use mixnn_fl::{ModelUpdate, UpdateTransport};

    let round = |parallelism: Parallelism| {
        let proxy = launch(MixingStrategy::Batch, 3, 17, parallelism);
        let mut transport = MixnnTransport::new(proxy, TransportMode::Encrypted, 99);
        let updates: Vec<ModelUpdate> = (0..8)
            .map(|i| {
                ModelUpdate::new(
                    i,
                    ModelParams::from_layers(
                        signature(3)
                            .into_iter()
                            .map(|len| LayerParams::from_values(vec![i as f32; len]))
                            .collect(),
                    ),
                )
            })
            .collect();
        transport.relay(updates).expect("round relays")
    };
    let sequential = round(Parallelism::sequential());
    for workers in [2, 4, 8] {
        assert_eq!(sequential, round(Parallelism::uniform(workers)));
    }
}
