//! Property tests for the mixer: mixing is lossless (a per-layer
//! permutation of its input — nothing dropped, nothing duplicated) and
//! invertible given the recorded [`MixPlan`] assignment.
//!
//! These are the §4.2 guarantees the utility-equivalence argument rests on,
//! checked bitwise for arbitrary update contents and shapes.

use mixnn_core::{BatchMixer, MixPlan};
use mixnn_nn::{LayerParams, ModelParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_signature() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..10, 1..6)
}

/// Builds `participants` updates whose every scalar encodes its origin
/// `(participant, layer, offset)`, so layer vectors are pairwise distinct
/// and permutation checks are exact.
fn tagged_updates(signature: &[usize], participants: usize) -> Vec<ModelParams> {
    (0..participants)
        .map(|p| {
            ModelParams::from_layers(
                signature
                    .iter()
                    .enumerate()
                    .map(|(l, &len)| {
                        LayerParams::from_values(
                            (0..len)
                                .map(|o| (p * 10_000 + l * 100 + o) as f32)
                                .collect(),
                        )
                    })
                    .collect(),
            )
        })
        .collect()
}

/// The layer-`l` vectors of `updates` as sorted bit patterns (a canonical
/// multiset representation).
fn layer_multiset(updates: &[ModelParams], layer: usize) -> Vec<Vec<u32>> {
    let mut vectors: Vec<Vec<u32>> = updates
        .iter()
        .map(|u| {
            u.layer(layer)
                .expect("layer within signature")
                .values()
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect();
    vectors.sort();
    vectors
}

/// Inverts a mix using the recorded plan: participant `p`'s layer `l` is
/// wherever the plan says it was routed.
fn unmix(mixed: &[ModelParams], plan: &MixPlan) -> Vec<ModelParams> {
    let layers = plan.layers();
    (0..plan.participants())
        .map(|p| {
            let recovered = (0..layers)
                .map(|l| {
                    let output = (0..plan.participants())
                        .find(|&i| plan.source(l, i) == Some(p))
                        .expect("column bijectivity: every participant appears once");
                    mixed[output]
                        .layer(l)
                        .expect("layer within signature")
                        .clone()
                })
                .collect();
            ModelParams::from_layers(recovered)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A mixed batch is, per layer position, exactly a permutation of the
    /// input batch: multiset-equal, so no update is lost or duplicated.
    #[test]
    fn batch_mix_is_a_per_layer_permutation(
        signature in arb_signature(),
        participants in 1usize..12,
        seed in 0u64..1000,
    ) {
        let updates = tagged_updates(&signature, participants);
        let (mixed, plan) = BatchMixer::new(seed).mix(&updates).unwrap();
        prop_assert_eq!(mixed.len(), updates.len());
        prop_assert!(plan.is_column_bijective());
        for layer in 0..signature.len() {
            prop_assert_eq!(
                layer_multiset(&updates, layer),
                layer_multiset(&mixed, layer)
            );
        }
    }

    /// Unmixing with the recorded assignment restores the original batch in
    /// its original order, bitwise.
    #[test]
    fn unmixing_with_recorded_plan_restores_order(
        signature in arb_signature(),
        participants in 1usize..12,
        seed in 0u64..1000,
    ) {
        let updates = tagged_updates(&signature, participants);
        let (mixed, plan) = BatchMixer::new(seed).mix(&updates).unwrap();
        prop_assert_eq!(unmix(&mixed, &plan), updates);
    }

    /// The plan the mixer reports is the plan it actually applied: each
    /// output layer is bitwise the recorded source participant's layer.
    #[test]
    fn recorded_plan_matches_applied_routing(
        signature in arb_signature(),
        participants in 1usize..10,
        seed in 0u64..1000,
    ) {
        let updates = tagged_updates(&signature, participants);
        let (mixed, plan) = BatchMixer::new(seed).mix(&updates).unwrap();
        for layer in 0..signature.len() {
            for (output, mixed_update) in mixed.iter().enumerate() {
                let source = plan.source(layer, output).unwrap();
                prop_assert_eq!(
                    mixed_update.layer(layer).unwrap(),
                    updates[source].layer(layer).unwrap()
                );
            }
        }
    }

    /// `MixPlan::apply` on an explicitly constructed Latin plan is also
    /// invertible — the property does not depend on `BatchMixer` wiring.
    #[test]
    fn latin_plan_apply_round_trips(
        layers in 1usize..6,
        extra in 0usize..8,
        seed in 0u64..1000,
    ) {
        // The Latin construction needs participants >= layers.
        let participants = layers + extra;
        let signature = vec![3usize; layers];
        let updates = tagged_updates(&signature, participants);
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = MixPlan::latin(participants, layers, &mut rng).unwrap();
        let mixed = plan.apply(&updates).unwrap();
        prop_assert_eq!(unmix(&mixed, &plan), updates);
    }
}
