//! Fuzz-style property tests for the wire codec's version negotiation.
//!
//! The codec's decoders face adversary-supplied bytes at the hop and
//! server boundaries, so this suite drives them with uniform *bit
//! patterns* — NaNs, infinities and subnormals on the value side;
//! arbitrary garbage, truncations, max-length headers and corrupted
//! valid frames on the byte side — and pins two properties: well-formed
//! encodings round-trip under every mode and version, and malformed
//! input is always a typed error, never a panic, a wrong value or an
//! attacker-sized allocation.

use mixnn_core::codec::{
    canonical_layer, canonical_params, decode_layer, decode_params, encode_layer_with,
    encode_params_with, encoded_layer_len_with, encoded_len_with, validate_layer_frame,
    CompressionConfig, V2_SENTINEL,
};
use mixnn_core::ProxyError;
use mixnn_nn::{LayerParams, ModelParams};
use proptest::collection::vec;
use proptest::num;
use proptest::prelude::*;

/// The three wire modes, indexed so proptest can draw one.
fn mode(kind: usize) -> CompressionConfig {
    match kind % 3 {
        0 => CompressionConfig::F32,
        1 => CompressionConfig::Int8,
        _ => CompressionConfig::int8_top_k(),
    }
}

fn params_from(chunks: Vec<Vec<f32>>) -> ModelParams {
    ModelParams::from_layers(chunks.into_iter().map(LayerParams::from_values).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    // Any finite-or-not bit pattern round-trips: v1 bit-exactly, v2 to
    // its canonical (quantize∘dequantize) image — and the canonical
    // image is a fixed point, so re-encoding it reproduces the frame.
    #[test]
    fn layer_roundtrips_under_every_mode(
        values in vec(num::f32::ANY, 0..300),
        kind in 0usize..3,
    ) {
        let compression = mode(kind);
        let layer = LayerParams::from_values(values);
        let bytes = encode_layer_with(&layer, compression);
        prop_assert_eq!(bytes.len(), encoded_layer_len_with(layer.len(), compression));
        validate_layer_frame(&bytes).unwrap();
        let decoded = decode_layer(&bytes).unwrap();
        let canonical = canonical_layer(&layer, compression);
        // Bitwise comparison: NaN payloads must survive v1 unchanged.
        let decoded_bits: Vec<u32> = decoded.values().iter().map(|v| v.to_bits()).collect();
        let canonical_bits: Vec<u32> = canonical.values().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(decoded_bits, canonical_bits);
        prop_assert_eq!(encode_layer_with(&canonical, compression), bytes);
    }

    // Same at the model level, zero-length layers included, and the
    // encoded length must match the signature arithmetic exactly.
    #[test]
    fn params_roundtrip_under_every_mode(
        chunks in vec(vec(num::f32::ANY, 0..40), 0..6),
        kind in 0usize..3,
    ) {
        let compression = mode(kind);
        let params = params_from(chunks);
        let bytes = encode_params_with(&params, compression);
        prop_assert_eq!(bytes.len(), encoded_len_with(&params.signature(), compression));
        let decoded = decode_params(&bytes).unwrap();
        let canonical = canonical_params(&params, compression);
        let decoded_bits: Vec<u32> =
            decoded.flatten().iter().map(|v| v.to_bits()).collect();
        let canonical_bits: Vec<u32> =
            canonical.flatten().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(decoded_bits, canonical_bits);
    }

    // Arbitrary garbage never panics any decoder — it decodes (the rare
    // accidentally-valid draw) or returns a typed error.
    #[test]
    fn garbage_bytes_never_panic(bytes in vec(num::u8::ANY, 0..200)) {
        let _ = decode_params(&bytes);
        let _ = decode_layer(&bytes);
        let _ = validate_layer_frame(&bytes);
    }

    // Every proper prefix of a valid encoding is rejected, under every
    // mode and at both framing levels.
    #[test]
    fn truncations_error_cleanly(
        values in vec(num::f32::ANY, 1..60),
        kind in 0usize..3,
        cut_seed in num::usize::ANY,
    ) {
        let compression = mode(kind);
        let layer = LayerParams::from_values(values.clone());
        let frame = encode_layer_with(&layer, compression);
        let cut = cut_seed % frame.len();
        prop_assert!(decode_layer(&frame[..cut]).is_err());
        prop_assert!(validate_layer_frame(&frame[..cut]).is_err());

        let params = ModelParams::from_layers(vec![LayerParams::from_values(values)]);
        let body = encode_params_with(&params, compression);
        let cut = cut_seed % body.len();
        prop_assert!(decode_params(&body[..cut]).is_err());
    }

    // Flipping one byte of a valid frame never panics. A corrupted
    // header may still parse self-consistently (e.g. a shorter length
    // whose top-k geometry lands on the same frame size) — content
    // authenticity is the sealed box's job, not the codec's — but
    // whatever `decode_layer` accepts, the structural validator must
    // accept too, and vice versa.
    #[test]
    fn corrupted_frames_never_panic(
        values in vec(num::f32::ANY, 1..60),
        kind in 0usize..3,
        pos_seed in num::usize::ANY,
        flip in 1u8..=255,
    ) {
        let compression = mode(kind);
        let layer = LayerParams::from_values(values);
        let mut frame = encode_layer_with(&layer, compression);
        let pos = pos_seed % frame.len();
        frame[pos] ^= flip;
        prop_assert_eq!(
            decode_layer(&frame).is_ok(),
            validate_layer_frame(&frame).is_ok()
        );
    }

    // Adversarial v2 headers advertising up to u32::MAX values must be
    // rejected by header/length arithmetic alone — no panic and no
    // allocation proportional to the claimed length.
    #[test]
    fn max_len_headers_are_rejected_without_allocating(
        version in num::u8::ANY,
        mode_byte in num::u8::ANY,
        len in 0u32..=u32::MAX,
        tail in vec(num::u8::ANY, 0..32),
    ) {
        let mut frame = Vec::new();
        frame.extend_from_slice(&V2_SENTINEL.to_be_bytes());
        frame.push(version);
        frame.push(mode_byte);
        frame.extend_from_slice(&len.to_be_bytes());
        frame.extend_from_slice(&tail);
        // A claimed length the tail cannot possibly back is malformed
        // whatever the other header fields say.
        if len as usize > 4 * tail.len() {
            prop_assert!(decode_layer(&frame).is_err());
            prop_assert!(validate_layer_frame(&frame).is_err());
        } else {
            let _ = decode_layer(&frame);
            let _ = validate_layer_frame(&frame);
        }
    }

    // An unknown version byte in a v2 frame is the *typed* negotiation
    // error, not a generic parse failure.
    #[test]
    fn unknown_versions_yield_the_typed_error(
        version in 3u8..=255,
        tail in vec(num::u8::ANY, 0..40),
    ) {
        let mut frame = Vec::new();
        frame.extend_from_slice(&V2_SENTINEL.to_be_bytes());
        frame.push(version);
        frame.extend_from_slice(&tail);
        match decode_layer(&frame) {
            Err(ProxyError::UnsupportedCodecVersion { version: v }) => {
                prop_assert_eq!(v, version);
            }
            other => prop_assert!(false, "expected version error, got {:?}", other),
        }
    }
}
