//! Fuzz-style property tests for the wire codec's version negotiation.
//!
//! The codec's decoders face adversary-supplied bytes at the hop and
//! server boundaries, so this suite drives them with uniform *bit
//! patterns* — NaNs, infinities and subnormals on the value side;
//! arbitrary garbage, truncations, max-length headers and corrupted
//! valid frames on the byte side — and pins two properties: well-formed
//! encodings round-trip under every mode and version, and malformed
//! input is always a typed error, never a panic, a wrong value or an
//! attacker-sized allocation.

use mixnn_core::codec::{
    canonical_layer, canonical_params, decode_layer, decode_layer_expecting, decode_params,
    decode_params_expecting, encode_layer_with, encode_params_with, encoded_layer_len_with,
    encoded_len_with, validate_layer_frame, validate_layer_frame_expecting, CompressionConfig,
    V2_SENTINEL,
};
use mixnn_core::ProxyError;
use mixnn_nn::{LayerParams, ModelParams};
use proptest::collection::vec;
use proptest::num;
use proptest::prelude::*;

/// The three wire modes, indexed so proptest can draw one.
fn mode(kind: usize) -> CompressionConfig {
    match kind % 3 {
        0 => CompressionConfig::F32,
        1 => CompressionConfig::Int8,
        _ => CompressionConfig::int8_top_k(),
    }
}

fn params_from(chunks: Vec<Vec<f32>>) -> ModelParams {
    ModelParams::from_layers(chunks.into_iter().map(LayerParams::from_values).collect())
}

/// Index width per the documented v2 format: bytes needed for `len - 1`.
fn index_width(len: u32) -> usize {
    let len = u64::from(len);
    if len <= 1 << 8 {
        1
    } else if len <= 1 << 16 {
        2
    } else if len <= 1 << 24 {
        3
    } else {
        4
    }
}

/// A structurally self-consistent top-k frame for the given header
/// fields: valid sentinel/version/mode, finite scale and zero, `k`
/// strictly ascending in-range indices (0..k), `k` quant bytes — exactly
/// the adversarial shape a huge-`len` allocation attack would craft.
fn crafted_topk_frame(len: u32, k: u32) -> Vec<u8> {
    let width = index_width(len);
    let mut frame = Vec::new();
    frame.extend_from_slice(&V2_SENTINEL.to_be_bytes());
    frame.push(2); // version
    frame.push(1); // mode: top-k
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(&k.to_be_bytes());
    frame.extend_from_slice(&1.0f32.to_le_bytes()); // scale
    frame.extend_from_slice(&0.0f32.to_le_bytes()); // zero
    for i in 0..k {
        frame.extend_from_slice(&i.to_be_bytes()[4 - width..]);
    }
    frame.extend(std::iter::repeat_n(0x7f, k as usize));
    frame
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    // Any finite-or-not bit pattern round-trips: v1 bit-exactly, v2 to
    // its canonical (quantize∘dequantize) image — and the canonical
    // image is a fixed point, so re-encoding it reproduces the frame.
    #[test]
    fn layer_roundtrips_under_every_mode(
        values in vec(num::f32::ANY, 0..300),
        kind in 0usize..3,
    ) {
        let compression = mode(kind);
        let layer = LayerParams::from_values(values);
        let bytes = encode_layer_with(&layer, compression);
        prop_assert_eq!(bytes.len(), encoded_layer_len_with(layer.len(), compression));
        validate_layer_frame(&bytes).unwrap();
        let decoded = decode_layer(&bytes).unwrap();
        let canonical = canonical_layer(&layer, compression);
        // Bitwise comparison: NaN payloads must survive v1 unchanged.
        let decoded_bits: Vec<u32> = decoded.values().iter().map(|v| v.to_bits()).collect();
        let canonical_bits: Vec<u32> = canonical.values().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(decoded_bits, canonical_bits);
        prop_assert_eq!(encode_layer_with(&canonical, compression), bytes);
    }

    // Same at the model level, zero-length layers included, and the
    // encoded length must match the signature arithmetic exactly.
    #[test]
    fn params_roundtrip_under_every_mode(
        chunks in vec(vec(num::f32::ANY, 0..40), 0..6),
        kind in 0usize..3,
    ) {
        let compression = mode(kind);
        let params = params_from(chunks);
        let bytes = encode_params_with(&params, compression);
        prop_assert_eq!(bytes.len(), encoded_len_with(&params.signature(), compression));
        let decoded = decode_params(&bytes).unwrap();
        let canonical = canonical_params(&params, compression);
        let decoded_bits: Vec<u32> =
            decoded.flatten().iter().map(|v| v.to_bits()).collect();
        let canonical_bits: Vec<u32> =
            canonical.flatten().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(decoded_bits, canonical_bits);
    }

    // Arbitrary garbage never panics any decoder — it decodes (the rare
    // accidentally-valid draw) or returns a typed error.
    #[test]
    fn garbage_bytes_never_panic(bytes in vec(num::u8::ANY, 0..200)) {
        let _ = decode_params(&bytes);
        let _ = decode_layer(&bytes);
        let _ = validate_layer_frame(&bytes);
    }

    // Every proper prefix of a valid encoding is rejected, under every
    // mode and at both framing levels.
    #[test]
    fn truncations_error_cleanly(
        values in vec(num::f32::ANY, 1..60),
        kind in 0usize..3,
        cut_seed in num::usize::ANY,
    ) {
        let compression = mode(kind);
        let layer = LayerParams::from_values(values.clone());
        let frame = encode_layer_with(&layer, compression);
        let cut = cut_seed % frame.len();
        prop_assert!(decode_layer(&frame[..cut]).is_err());
        prop_assert!(validate_layer_frame(&frame[..cut]).is_err());

        let params = ModelParams::from_layers(vec![LayerParams::from_values(values)]);
        let body = encode_params_with(&params, compression);
        let cut = cut_seed % body.len();
        prop_assert!(decode_params(&body[..cut]).is_err());
    }

    // Flipping one byte of a valid frame never panics. A corrupted
    // header may still parse self-consistently (e.g. a shorter length
    // whose top-k geometry lands on the same frame size) — content
    // authenticity is the sealed box's job, not the codec's — but
    // whatever `decode_layer` accepts, the structural validator must
    // accept too, and vice versa.
    #[test]
    fn corrupted_frames_never_panic(
        values in vec(num::f32::ANY, 1..60),
        kind in 0usize..3,
        pos_seed in num::usize::ANY,
        flip in 1u8..=255,
    ) {
        let compression = mode(kind);
        let layer = LayerParams::from_values(values);
        let mut frame = encode_layer_with(&layer, compression);
        let pos = pos_seed % frame.len();
        frame[pos] ^= flip;
        prop_assert_eq!(
            decode_layer(&frame).is_ok(),
            validate_layer_frame(&frame).is_ok()
        );
    }

    // Adversarial v2 headers advertising up to u32::MAX values must be
    // rejected by header/length arithmetic alone — no panic and no
    // allocation beyond what the payload backs. The tight bound is
    // 1024·payload: a dense frame needs one byte per value, and a top-k
    // frame must satisfy `len ≤ 1024·k` (the encoder's minimum keep
    // ratio is 1/1024) with each of the `k` kept values carrying at
    // least one payload byte — so any frame whose claimed `len` exceeds
    // 1024× the bytes after the length header is malformed whatever the
    // other header fields say.
    #[test]
    fn max_len_headers_are_rejected_without_allocating(
        version in num::u8::ANY,
        mode_byte in num::u8::ANY,
        len in 0u32..=u32::MAX,
        tail in vec(num::u8::ANY, 0..32),
    ) {
        let mut frame = Vec::new();
        frame.extend_from_slice(&V2_SENTINEL.to_be_bytes());
        frame.push(version);
        frame.push(mode_byte);
        frame.extend_from_slice(&len.to_be_bytes());
        frame.extend_from_slice(&tail);
        if u64::from(len) > 1024 * tail.len() as u64 {
            prop_assert!(decode_layer(&frame).is_err());
            prop_assert!(validate_layer_frame(&frame).is_err());
        } else {
            let _ = decode_layer(&frame);
            let _ = validate_layer_frame(&frame);
        }
    }

    // The allocation-DoS shape directly: a ~30-byte frame that is valid
    // everywhere EXCEPT that its declared `len` has no payload backing
    // it (huge `len`, tiny self-consistent `k`, ascending in-range
    // indices). Every decoder — including the expecting variant fed the
    // attacker's own length — must reject it via the `len ≤ 1024·k`
    // invariant before any `len`-sized buffer exists.
    #[test]
    fn crafted_topk_frames_with_unbacked_len_are_rejected(
        k in 1u32..=4,
        len in 4097u32..=u32::MAX,
    ) {
        prop_assume!(u64::from(len) > 1024 * u64::from(k));
        let frame = crafted_topk_frame(len, k);
        let err = decode_layer(&frame).unwrap_err();
        prop_assert!(err.to_string().contains("keep ratio"), "{err}");
        prop_assert!(validate_layer_frame(&frame).is_err());
        prop_assert!(decode_layer_expecting(&frame, len as usize).is_err());
        prop_assert!(validate_layer_frame_expecting(&frame, len as usize).is_err());
    }

    // The same crafted shape at the legitimate boundary (`len = 1024·k`,
    // the minimum keep ratio) must still be accepted — the invariant is
    // exactly the encoder's envelope, not a narrower one.
    #[test]
    fn crafted_topk_frames_at_the_keep_ratio_bound_decode(k in 1u32..=4) {
        let len = 1024 * k;
        let frame = crafted_topk_frame(len, k);
        prop_assert!(validate_layer_frame(&frame).is_ok());
        let layer = decode_layer_expecting(&frame, len as usize).unwrap();
        prop_assert_eq!(layer.len(), len as usize);
        // Kept positions 0..k dequantize to 127·scale, the rest to zero.
        for (i, &v) in layer.values().iter().enumerate() {
            prop_assert_eq!(v, if i < k as usize { 127.0 } else { 0.0 });
        }
        // One value past the bound is rejected again.
        prop_assert!(decode_layer(&crafted_topk_frame(len + 1, k)).is_err());
    }

    // The expecting decoders pin a frame's declared parameter count to
    // the caller's signature: the right length behaves exactly like the
    // plain decoders, any other length is the typed signature error
    // before a value buffer is allocated.
    #[test]
    fn expecting_decoders_gate_on_the_declared_length(
        values in vec(num::f32::ANY, 0..100),
        kind in 0usize..3,
        delta in 1usize..50,
    ) {
        let compression = mode(kind);
        let layer = LayerParams::from_values(values);
        let frame = encode_layer_with(&layer, compression);
        // Bitwise comparison: drawn values may include NaN.
        let expecting_bits: Vec<u32> = decode_layer_expecting(&frame, layer.len())
            .unwrap()
            .values()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let plain_bits: Vec<u32> = decode_layer(&frame)
            .unwrap()
            .values()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        prop_assert_eq!(expecting_bits, plain_bits);
        prop_assert!(validate_layer_frame_expecting(&frame, layer.len()).is_ok());
        let wrong = layer.len() + delta;
        prop_assert!(matches!(
            decode_layer_expecting(&frame, wrong),
            Err(ProxyError::SignatureMismatch { .. })
        ));
        prop_assert!(matches!(
            validate_layer_frame_expecting(&frame, wrong),
            Err(ProxyError::SignatureMismatch { .. })
        ));
    }

    // Same at the model level: the signature-gated body decoder matches
    // the plain one on the true signature and rejects any other with the
    // typed error carrying the declared geometry.
    #[test]
    fn params_expecting_gates_on_the_signature(
        chunks in vec(vec(num::f32::ANY, 0..40), 0..6),
        kind in 0usize..3,
    ) {
        let compression = mode(kind);
        let params = params_from(chunks);
        let bytes = encode_params_with(&params, compression);
        let signature = params.signature();
        // Bitwise comparison: drawn values may include NaN.
        let expecting_bits: Vec<u32> = decode_params_expecting(&bytes, &signature)
            .unwrap()
            .flatten()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let plain_bits: Vec<u32> = decode_params(&bytes)
            .unwrap()
            .flatten()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        prop_assert_eq!(expecting_bits, plain_bits);
        let mut wrong = signature.clone();
        match wrong.first_mut() {
            Some(first) => *first += 1,
            None => wrong.push(1),
        }
        prop_assert!(matches!(
            decode_params_expecting(&bytes, &wrong),
            Err(ProxyError::SignatureMismatch { .. })
        ));
    }

    // An unknown version byte in a v2 frame is the *typed* negotiation
    // error, not a generic parse failure.
    #[test]
    fn unknown_versions_yield_the_typed_error(
        version in 3u8..=255,
        tail in vec(num::u8::ANY, 0..40),
    ) {
        let mut frame = Vec::new();
        frame.extend_from_slice(&V2_SENTINEL.to_be_bytes());
        frame.push(version);
        frame.extend_from_slice(&tail);
        match decode_layer(&frame) {
            Err(ProxyError::UnsupportedCodecVersion { version: v }) => {
                prop_assert_eq!(v, version);
            }
            other => prop_assert!(false, "expected version error, got {:?}", other),
        }
    }
}
