//! Worker/shard counts for the concurrent pipeline — the workspace's
//! shared concurrency core.
//!
//! One struct threads every parallelism knob from the bench configs down
//! through the simulation (`client_workers`), the proxy ingest front-end
//! (`ingest_workers`), the per-layer mixing shards (`mix_shards`), the
//! cascade coordinator's route-group pool (`group_workers`) and the
//! cross-hop round pipeline (`pipeline_depth`). Every stage is engineered
//! so that the *result* is independent of the worker count — parallelism
//! is a throughput knob, never a semantics knob — which is what lets the
//! determinism tests compare any worker count against the sequential path
//! bit-for-bit.
//!
//! This module lives in `mixnn-core` so both the proxy pipeline and the
//! FL substrate can share it; `mixnn_fl` re-exports [`Parallelism`] and
//! [`map_chunked`] under their historical paths for compatibility.

use serde::{Deserialize, Serialize};

/// How many workers each stage of the pipeline may use.
///
/// All counts are clamped to at least 1 at the point of use; `0` therefore
/// behaves like `1` (sequential).
///
/// # Example
///
/// ```
/// use mixnn_core::Parallelism;
///
/// let seq = Parallelism::sequential();
/// assert_eq!(seq, Parallelism::default());
/// let par = Parallelism::uniform(4);
/// assert_eq!(par.ingest_workers, 4);
/// assert_eq!(par.mix_shards, 4);
/// assert_eq!(par.client_workers, 4);
/// assert_eq!(par.group_workers, 4);
/// assert_eq!(par.pipeline_depth, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Parallelism {
    /// Threads decrypting/decoding sealed updates in the proxy front-end
    /// (and, in the cascade, unwrapping a hop's onion envelopes).
    pub ingest_workers: usize,
    /// Per-layer shard tasks used when applying a mixing plan.
    pub mix_shards: usize,
    /// Threads running per-client local training inside a round.
    pub client_workers: usize,
    /// Threads driving independent cascade route groups through their
    /// hops concurrently (groups share no envelopes by construction).
    pub group_workers: usize,
    /// Rounds a cascade pipeline keeps in flight at once: with depth `d`,
    /// hop `i + 1` can be mixing round `r` while hop `i` ingests round
    /// `r + 1`. `1` disables cross-round pipelining.
    pub pipeline_depth: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::sequential()
    }
}

impl Parallelism {
    /// Fully sequential pipeline (one worker everywhere) — the reference
    /// semantics every parallel configuration must reproduce.
    pub fn sequential() -> Self {
        Parallelism {
            ingest_workers: 1,
            mix_shards: 1,
            client_workers: 1,
            group_workers: 1,
            pipeline_depth: 1,
        }
    }

    /// The same worker count for every stage.
    pub fn uniform(workers: usize) -> Self {
        Parallelism {
            ingest_workers: workers,
            mix_shards: workers,
            client_workers: workers,
            group_workers: workers,
            pipeline_depth: workers,
        }
    }

    /// One worker per available hardware thread for every stage.
    pub fn available() -> Self {
        let n = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self::uniform(n)
    }

    /// Effective worker count for a stage handling `tasks` items: at least
    /// 1, at most one worker per task.
    pub fn effective(workers: usize, tasks: usize) -> usize {
        workers.max(1).min(tasks.max(1))
    }
}

/// Runs `f` over `items` with at most `workers` scoped threads, preserving
/// input order in the output.
///
/// The item slice is split into contiguous chunks, one per worker; each
/// worker maps its chunk sequentially. With `workers <= 1` no thread is
/// spawned. Because `f` receives each item independently, the output is
/// identical at every worker count — callers encode any per-item
/// determinism (seeds, shard indices) in the items themselves.
pub fn map_chunked<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = Parallelism::effective(workers, items.len());
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| scope.spawn(|| c.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("pipeline worker panicked"))
            .collect()
    })
}

/// Chunk-level sibling of [`map_chunked`]: splits `items` into the same
/// contiguous per-worker chunks, but hands each worker its whole chunk at
/// once, concatenating the per-chunk outputs in input order.
///
/// `f` must return exactly one output per input item. Use this when the
/// work benefits from batching across a worker's items (e.g. the batched
/// sealed-box opening amortizes key derivation over a chunk); with a
/// per-item `f` it is observably identical to [`map_chunked`].
pub fn map_chunked_batched<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    let workers = Parallelism::effective(workers, items.len());
    if workers <= 1 || items.len() <= 1 {
        return f(items);
    }
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items.chunks(chunk).map(|c| scope.spawn(|| f(c))).collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("pipeline worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_default() {
        assert_eq!(Parallelism::default(), Parallelism::sequential());
    }

    #[test]
    fn effective_clamps_both_ends() {
        assert_eq!(Parallelism::effective(0, 10), 1);
        assert_eq!(Parallelism::effective(4, 2), 2);
        assert_eq!(Parallelism::effective(4, 0), 1);
        assert_eq!(Parallelism::effective(4, 100), 4);
    }

    #[test]
    fn available_is_at_least_one() {
        let p = Parallelism::available();
        assert!(p.ingest_workers >= 1);
        assert!(p.mix_shards >= 1);
        assert!(p.client_workers >= 1);
        assert!(p.group_workers >= 1);
        assert!(p.pipeline_depth >= 1);
    }

    #[test]
    fn map_chunked_preserves_order_at_any_worker_count() {
        let items: Vec<usize> = (0..37).collect();
        let expected: Vec<usize> = items.iter().map(|&i| i * i).collect();
        for workers in 0..9 {
            assert_eq!(map_chunked(&items, workers, |&i| i * i), expected);
        }
    }

    #[test]
    fn map_chunked_handles_empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        assert!(map_chunked(&empty, 4, |&b| b).is_empty());
        assert_eq!(map_chunked(&[9u8], 4, |&b| b), vec![9]);
    }

    #[test]
    fn map_chunked_batched_matches_map_chunked() {
        let items: Vec<usize> = (0..37).collect();
        let expected: Vec<usize> = items.iter().map(|&i| i * 3).collect();
        for workers in 0..9 {
            assert_eq!(
                map_chunked_batched(&items, workers, |c| c.iter().map(|&i| i * 3).collect()),
                expected
            );
        }
        let empty: Vec<usize> = Vec::new();
        assert!(map_chunked_batched(&empty, 4, |c| c.to_vec()).is_empty());
    }
}
