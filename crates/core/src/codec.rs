//! Wire format for model updates.
//!
//! Participants serialize their per-layer parameter vectors with this codec
//! before sealing them to the enclave; the proxy decodes inside the
//! enclave. The format is versioned and explicitly little-endian for
//! payloads (headers are big-endian, as everywhere else on the wire).
//!
//! # Version 1 — full-precision f32
//!
//! ```text
//! magic   u32  = 0x4d49584e ("MIXN")
//! version u8   = 1
//! layers  u32
//! repeat layers times:
//!     len  u32
//!     data len × f32 (LE)
//! ```
//!
//! # Version 2 — affine int8 quantization, optional top-k sparsification
//!
//! A v2 **layer frame** opens with a sentinel no v1 layer can produce (a
//! length of `u32::MAX` would need 16 GiB of payload), so v1 and v2 frames
//! coexist and decoders auto-detect:
//!
//! ```text
//! sentinel u32  = 0xffffffff
//! version  u8   = 2
//! mode     u8          // 0 = dense int8, 1 = top-k int8
//! len      u32         // original parameter count
//! k        u32         // top-k only: kept parameter count
//! scale    f32 (LE)    // quantization step
//! zero     f32 (LE)    // zero point (value of quant level 0)
//! indices  k × 1..4 B  // top-k only: kept positions, ascending,
//!                      //   width = bytes needed for len-1
//! quants   len (dense) or k (top-k) × u8
//! ```
//!
//! Dequantization is `zero + q · scale` (f64 intermediate, so a
//! full-f32-range layer cannot overflow); positions a top-k frame dropped
//! decode to `0.0`.
//!
//! **Size determinism is a privacy requirement, not an optimization.** A
//! v2 frame's length is a pure function of `(len, CompressionConfig)` —
//! never of the parameter values: `k` derives from `len` and the
//! configured keep ratio, and the index width derives from `len` alone.
//! Per-layer envelope sizes are adversary-visible metadata in the cascade
//! (every hop and every wiretap sees them), so any content-dependent
//! length — entropy coding, value-dependent sparsity, varint indices —
//! would fingerprint clients by their update contents and shrink the
//! anonymity set the mix provides. [`encoded_layer_len_with`] is that
//! function, and the encoders `debug_assert` against it.
//!
//! **Decoders never trust a declared length.** A top-k header names a
//! `len` far larger than its payload (that is the point of
//! sparsification), so the decoders enforce the encode-side invariant
//! `len ≤ 1024·k` — the keep ratio is clamped to at least 1/1024, so
//! every frame a conforming encoder can emit satisfies it — before
//! allocating anything; a crafted ~30-byte frame can therefore never
//! name a multi-gigabyte allocation. All frame-size arithmetic is done
//! in `u64`, so a near-`u32::MAX` header cannot wrap a `usize`
//! computation on 32-bit targets either. Callers that know the round's
//! layer signature should prefer the `*_expecting` entry points
//! ([`decode_layer_expecting`], [`validate_layer_frame_expecting`],
//! [`decode_params_expecting`]), which reject any frame whose declared
//! geometry differs from the signature before a value buffer exists.

use crate::ProxyError;
use bytes::{Buf, BufMut};
use mixnn_nn::{LayerParams, ModelParams};
use serde::{Deserialize, Serialize};

/// Format magic: `"MIXN"` as a big-endian u32.
pub const MAGIC: u32 = 0x4d49_584e;
/// The full-precision f32 format version.
pub const VERSION: u8 = 1;
/// The quantized/sparsified format version.
pub const VERSION_V2: u8 = 2;
/// First four bytes of a v2 layer frame — an impossible v1 length.
pub const V2_SENTINEL: u32 = 0xffff_ffff;

/// Dense int8: every position carries one quantized byte.
const MODE_DENSE: u8 = 0;
/// Top-k int8: only the `k` largest-magnitude positions are kept.
const MODE_TOPK: u8 = 1;

/// v2 frame header bytes before the payload: sentinel + version + mode +
/// len + scale + zero.
const V2_DENSE_HEADER: usize = 4 + 1 + 1 + 4 + 4 + 4;
/// The top-k header additionally carries `k`.
const V2_TOPK_HEADER: usize = V2_DENSE_HEADER + 4;

/// How a participant compresses its update layers on the wire.
///
/// Every variant produces **signature-derived, content-independent**
/// encoded lengths: two updates with the same layer signature (and every
/// hop-generated dummy) encode to byte-length-identical frames, so sealing
/// them yields length-identical ciphertexts and compression adds no
/// linkability side channel (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CompressionConfig {
    /// Version 1: full-precision f32, `4 + 4·len` bytes per layer.
    #[default]
    F32,
    /// Version 2 dense: per-layer affine int8, `18 + len` bytes per layer.
    Int8,
    /// Version 2 top-k: affine int8 over the `k` largest-magnitude values,
    /// `k = max(1, ⌈len · keep_per_1024 / 1024⌉)`, with fixed-budget index
    /// encoding — `22 + k · (index_width(len) + 1)` bytes per layer.
    Int8TopK {
        /// Kept parameters per 1024, rounded up per layer (clamped to
        /// `1..=1024` at encode time so a zero keeps the floor of one).
        keep_per_1024: u16,
    },
}

impl CompressionConfig {
    /// The default top-k keep ratio: one parameter in four.
    pub const DEFAULT_KEEP_PER_1024: u16 = 256;

    /// Top-k at the default keep ratio (1/4).
    pub fn int8_top_k() -> Self {
        CompressionConfig::Int8TopK {
            keep_per_1024: Self::DEFAULT_KEEP_PER_1024,
        }
    }

    /// Whether this is the uncompressed v1 format.
    pub fn is_f32(self) -> bool {
        self == CompressionConfig::F32
    }

    /// Short label for experiment output.
    pub fn name(self) -> &'static str {
        match self {
            CompressionConfig::F32 => "f32",
            CompressionConfig::Int8 => "int8",
            CompressionConfig::Int8TopK { .. } => "int8+topk",
        }
    }

    /// Parameters kept for a layer of `len` values — a pure function of
    /// `(len, self)`, **never** of the values (size determinism).
    pub fn kept(self, len: usize) -> usize {
        match self {
            CompressionConfig::F32 | CompressionConfig::Int8 => len,
            CompressionConfig::Int8TopK { keep_per_1024 } => {
                if len == 0 {
                    return 0;
                }
                let keep = u64::from(keep_per_1024).clamp(1, 1024);
                (len as u64 * keep).div_ceil(1024).max(1).min(len as u64) as usize
            }
        }
    }
}

/// Bytes per stored index for a layer of `len` values: the smallest width
/// that addresses `0..len` — derived from `len` alone, never from which
/// indices an update actually keeps.
fn index_width(len: usize) -> usize {
    if len <= 1 << 8 {
        1
    } else if len <= 1 << 16 {
        2
    } else if len <= 1 << 24 {
        3
    } else {
        4
    }
}

/// Serialized size in bytes for a model with the given layer signature.
pub fn encoded_len(signature: &[usize]) -> usize {
    encoded_len_with(signature, CompressionConfig::F32)
}

/// Serialized size of [`encode_params_with`] output — signature-derived,
/// content-independent.
pub fn encoded_len_with(signature: &[usize], compression: CompressionConfig) -> usize {
    4 + 1
        + 4
        + signature
            .iter()
            .map(|&l| encoded_layer_len_with(l, compression))
            .sum::<usize>()
}

/// Serialized size in bytes of one layer under [`encode_layer`].
pub fn encoded_layer_len(layer_len: usize) -> usize {
    encoded_layer_len_with(layer_len, CompressionConfig::F32)
}

/// Serialized size of one layer frame under `compression` — a pure
/// function of `(layer_len, compression)`. This being content-independent
/// is what keeps every client's (and every dummy's) sealed envelopes
/// byte-length-identical per layer.
pub fn encoded_layer_len_with(layer_len: usize, compression: CompressionConfig) -> usize {
    match compression {
        CompressionConfig::F32 => 4 + 4 * layer_len,
        CompressionConfig::Int8 => V2_DENSE_HEADER + layer_len,
        CompressionConfig::Int8TopK { .. } => {
            let k = compression.kept(layer_len);
            V2_TOPK_HEADER + k * (index_width(layer_len) + 1)
        }
    }
}

/// Affine quantization range over the **finite** values: `(zero, scale)`
/// with `zero = min`, `scale = (max − min) / 255` (f64 intermediate so a
/// full-f32-range layer yields a finite scale). A layer with no finite
/// values (or none at all) gets `(0, 0)`; a constant layer gets scale `0`,
/// so every quant level dequantizes back to the constant.
fn quant_range(values: &[f32]) -> (f32, f32) {
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for &v in values {
        if v.is_finite() {
            min = min.min(v);
            max = max.max(v);
        }
    }
    if min > max {
        return (0.0, 0.0);
    }
    let scale = ((f64::from(max) - f64::from(min)) / 255.0) as f32;
    (min, scale)
}

/// `round((v − zero) / scale)` saturated into `0..=255`. The f64 cast's
/// saturating semantics give the edge cases for free: NaN → 0, −∞ (and
/// anything below `zero`) → 0, +∞ → 255, and a zero scale collapses every
/// finite value onto the zero point.
fn quantize(v: f32, zero: f32, scale: f32) -> u8 {
    ((f64::from(v) - f64::from(zero)) / f64::from(scale)).round() as u8
}

/// `zero + q · scale` in f64, rounded once to f32.
fn dequantize(q: u8, zero: f32, scale: f32) -> f32 {
    (f64::from(zero) + f64::from(q) * f64::from(scale)) as f32
}

/// Indices of the `k` largest-magnitude values, ascending. Deterministic:
/// ties break toward the lower index under a total order (`total_cmp` on
/// `|v|`, so NaN ranks above +∞ and is kept — it quantizes to the zero
/// point rather than silently vanishing).
fn top_k_indices(values: &[f32], k: usize) -> Vec<u32> {
    let rank = |a: u32, b: u32| {
        values[b as usize]
            .abs()
            .total_cmp(&values[a as usize].abs())
            .then(a.cmp(&b))
    };
    let mut idx: Vec<u32> = (0..values.len() as u32).collect();
    if k < idx.len() {
        // The comparator is a total order, so the *set* landing before
        // position k is unique however the partition shuffles internally.
        idx.select_nth_unstable_by(k, |&a, &b| rank(a, b));
        idx.truncate(k);
    }
    idx.sort_unstable();
    idx
}

/// Bulk LE write: `values` into `dst` (exactly `4 · values.len()` bytes),
/// 4-byte chunks instead of per-value `put_f32_le` calls — one bounds
/// check per chunk, vectorizable, no incremental capacity growth.
fn write_f32_le_bulk(dst: &mut [u8], values: &[f32]) {
    debug_assert_eq!(dst.len(), 4 * values.len());
    for (chunk, &v) in dst.chunks_exact_mut(4).zip(values) {
        chunk.copy_from_slice(&v.to_le_bytes());
    }
}

/// Bulk LE read: the inverse of [`write_f32_le_bulk`].
fn read_f32_le_bulk(src: &[u8]) -> Vec<f32> {
    debug_assert_eq!(src.len() % 4, 0);
    src.chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// Encodes model parameters into the v1 wire format.
///
/// # Example
///
/// ```
/// use mixnn_core::codec;
/// use mixnn_nn::{LayerParams, ModelParams};
///
/// # fn main() -> Result<(), mixnn_core::ProxyError> {
/// let params = ModelParams::from_layers(vec![LayerParams::from_values(vec![1.0, 2.0])]);
/// let bytes = codec::encode_params(&params);
/// assert_eq!(codec::decode_params(&bytes)?, params);
/// # Ok(())
/// # }
/// ```
pub fn encode_params(params: &ModelParams) -> Vec<u8> {
    encode_params_with(params, CompressionConfig::F32)
}

/// Encodes model parameters under `compression`: v1 for
/// [`CompressionConfig::F32`], otherwise a version-2 MIXN body whose
/// layers are self-delimiting v2 frames ([`encode_layer_with`]).
pub fn encode_params_with(params: &ModelParams, compression: CompressionConfig) -> Vec<u8> {
    let total = encoded_len_with(&params.signature(), compression);
    let mut out = Vec::with_capacity(total);
    out.put_u32(MAGIC);
    out.put_u8(if compression.is_f32() {
        VERSION
    } else {
        VERSION_V2
    });
    out.put_u32(params.num_layers() as u32);
    for layer in params.iter() {
        append_layer_with(&mut out, layer, compression);
    }
    debug_assert_eq!(out.len(), total, "encoded length must be content-free");
    out
}

/// Decodes model parameters from the wire format (v1 or v2,
/// auto-detected from the version byte).
///
/// # Errors
///
/// Returns [`ProxyError::UnsupportedCodecVersion`] for a version this
/// build does not speak, and [`ProxyError::Codec`] on truncation, bad
/// magic, malformed v2 frames or trailing garbage.
pub fn decode_params(bytes: &[u8]) -> Result<ModelParams, ProxyError> {
    decode_params_inner(bytes, None)
}

/// [`decode_params`], but the caller states the layer signature the body
/// must carry (from the round's configuration). The declared geometry of
/// every frame is walked structurally — headers only, no value buffer —
/// and compared to `expected_signature` **before** anything is decoded,
/// so a crafted body cannot force allocations the signature does not
/// authorize.
///
/// # Errors
///
/// [`ProxyError::SignatureMismatch`] (carrying the full expected and
/// declared signatures) when the declared layer lengths differ, plus
/// every condition of [`decode_params`]. Structural malformation is
/// reported as [`ProxyError::Codec`], taking precedence over the
/// signature comparison — exactly what decode-then-compare reported.
pub fn decode_params_expecting(
    bytes: &[u8],
    expected_signature: &[usize],
) -> Result<ModelParams, ProxyError> {
    decode_params_inner(bytes, Some(expected_signature))
}

fn decode_params_inner(
    mut bytes: &[u8],
    expected_signature: Option<&[usize]>,
) -> Result<ModelParams, ProxyError> {
    let fail = |reason: &str| ProxyError::Codec {
        reason: reason.to_string(),
    };
    if bytes.remaining() < 9 {
        return Err(fail("header truncated"));
    }
    if bytes.get_u32() != MAGIC {
        return Err(fail("bad magic"));
    }
    let version = bytes.get_u8();
    if version != VERSION && version != VERSION_V2 {
        return Err(ProxyError::UnsupportedCodecVersion { version });
    }
    let layer_count = bytes.get_u32() as usize;
    // Sanity bound: each declared layer needs at least its length header.
    if layer_count > bytes.remaining() / 4 + 1 {
        return Err(fail("implausible layer count"));
    }
    if let Some(expected) = expected_signature {
        // Pre-pass: walk every frame's declared geometry (headers only)
        // and pin it to the signature before any value buffer exists.
        let mut rest = bytes;
        let mut declared = Vec::with_capacity(layer_count);
        for _ in 0..layer_count {
            let (len, after) = skip_layer_frame(rest, version)?;
            declared.push(len);
            rest = after;
        }
        if rest.has_remaining() {
            return Err(fail("trailing bytes after last layer"));
        }
        if declared != expected {
            return Err(ProxyError::SignatureMismatch {
                expected: expected.to_vec(),
                actual: declared,
            });
        }
    }
    let mut layers = Vec::with_capacity(layer_count);
    for _ in 0..layer_count {
        let (layer, rest) = consume_layer_frame(bytes, version)?;
        layers.push(layer);
        bytes = rest;
    }
    if bytes.has_remaining() {
        return Err(fail("trailing bytes after last layer"));
    }
    Ok(ModelParams::from_layers(layers))
}

/// SHA-256 digest of a model's canonical wire encoding.
///
/// Two `ModelParams` share a digest exactly when [`encode_params`] produces
/// the same bytes — i.e. when every scalar is bit-identical.
pub fn params_digest(params: &ModelParams) -> [u8; 32] {
    mixnn_crypto::sha256::digest(&encode_params(params))
}

/// SHA-256 digest of a **single layer's** canonical encoding
/// ([`encode_layer`]).
///
/// This is the cascade's cover-stripping primitive: mixing permutes every
/// layer *independently* across a group's slots, so a cover update's
/// layers scatter over different output slots — a whole-model digest can
/// never find them again. Per-layer digests can: hops announce the digest
/// of each cover layer they generated, and the server drops matching layer
/// blobs from the mixed outputs without ever learning which slot (or which
/// co-arrived layers) the cover came from.
///
/// The digest is always over the **canonical v1 encoding** of the layer's
/// bit-exact values. Under a lossy wire codec the values the server
/// decodes are the *dequantized* ones, so announce
/// `layer_digest(&canonical_layer(layer, compression))` — the digest of
/// what the wire will deliver, not of the pre-quantization original.
pub fn layer_digest(layer: &LayerParams) -> [u8; 32] {
    mixnn_crypto::sha256::digest(&encode_layer(layer))
}

/// The value a decoder recovers after one encode/decode trip of `layer`
/// under `compression` — the *canonical post-wire form*.
///
/// For [`CompressionConfig::F32`] this is the identity (the v1 round trip
/// is bit-exact). For the lossy v2 modes it is the dequantized layer, and
/// it is **stable**: decoding is a deterministic function of the frame
/// bytes, so everyone who decodes the same frame — every server replica, a
/// coordinator pre-computing a cover digest — recovers bit-identical
/// values. (Re-*encoding* a decoded layer is not guaranteed to reproduce
/// the frame; canonicalize values, never frames.)
pub fn canonical_layer(layer: &LayerParams, compression: CompressionConfig) -> LayerParams {
    if compression.is_f32() {
        return layer.clone();
    }
    decode_layer(&encode_layer_with(layer, compression))
        .expect("a frame this codec just encoded decodes")
}

/// [`canonical_layer`] over every layer of a model.
pub fn canonical_params(params: &ModelParams, compression: CompressionConfig) -> ModelParams {
    if compression.is_f32() {
        return params.clone();
    }
    ModelParams::from_layers(
        params
            .iter()
            .map(|l| canonical_layer(l, compression))
            .collect(),
    )
}

/// Encodes a **single** layer's parameter vector in the v1 format:
/// `len u32` followed by `len` little-endian f32s.
///
/// This is the innermost plaintext of a cascade onion — each neural-network
/// layer travels as its own independently encrypted blob, so the per-layer
/// framing cannot reference the rest of the model.
pub fn encode_layer(layer: &LayerParams) -> Vec<u8> {
    let values = layer.values();
    let mut out = vec![0u8; encoded_layer_len(values.len())];
    out[..4].copy_from_slice(&(values.len() as u32).to_be_bytes());
    write_f32_le_bulk(&mut out[4..], values);
    out
}

/// Encodes a single layer under `compression`: the v1 frame for
/// [`CompressionConfig::F32`], otherwise a v2 frame (see the module docs).
/// The output length is exactly
/// `encoded_layer_len_with(layer.len(), compression)` for **any** values.
pub fn encode_layer_with(layer: &LayerParams, compression: CompressionConfig) -> Vec<u8> {
    if compression.is_f32() {
        return encode_layer(layer);
    }
    let mut out = Vec::with_capacity(encoded_layer_len_with(layer.len(), compression));
    append_layer_with(&mut out, layer, compression);
    out
}

/// Appends one layer frame to `out` (shared by the layer and params
/// encoders).
fn append_layer_with(out: &mut Vec<u8>, layer: &LayerParams, compression: CompressionConfig) {
    let values = layer.values();
    let start = out.len();
    match compression {
        CompressionConfig::F32 => {
            out.resize(start + encoded_layer_len(values.len()), 0);
            out[start..start + 4].copy_from_slice(&(values.len() as u32).to_be_bytes());
            write_f32_le_bulk(&mut out[start + 4..], values);
        }
        CompressionConfig::Int8 => {
            let (zero, scale) = quant_range(values);
            out.put_u32(V2_SENTINEL);
            out.put_u8(VERSION_V2);
            out.put_u8(MODE_DENSE);
            out.put_u32(values.len() as u32);
            out.put_f32_le(scale);
            out.put_f32_le(zero);
            out.extend(values.iter().map(|&v| quantize(v, zero, scale)));
        }
        CompressionConfig::Int8TopK { .. } => {
            let k = compression.kept(values.len());
            let kept = top_k_indices(values, k);
            let kept_values: Vec<f32> = kept.iter().map(|&i| values[i as usize]).collect();
            let (zero, scale) = quant_range(&kept_values);
            let width = index_width(values.len());
            out.put_u32(V2_SENTINEL);
            out.put_u8(VERSION_V2);
            out.put_u8(MODE_TOPK);
            out.put_u32(values.len() as u32);
            out.put_u32(k as u32);
            out.put_f32_le(scale);
            out.put_f32_le(zero);
            for &i in &kept {
                out.extend_from_slice(&i.to_be_bytes()[4 - width..]);
            }
            out.extend(kept_values.iter().map(|&v| quantize(v, zero, scale)));
        }
    }
    debug_assert_eq!(
        out.len() - start,
        encoded_layer_len_with(values.len(), compression),
        "encoded length must be content-free"
    );
}

/// Decodes a single layer frame, auto-detecting v1 vs v2 from the
/// sentinel.
///
/// # Errors
///
/// Returns [`ProxyError::UnsupportedCodecVersion`] for a sentinel-opened
/// frame with an unknown version byte, and [`ProxyError::Codec`] on
/// truncation, malformed v2 headers or trailing bytes.
pub fn decode_layer(bytes: &[u8]) -> Result<LayerParams, ProxyError> {
    let version = detect_layer_version(bytes)?;
    let (layer, rest) = consume_layer_frame(bytes, version)?;
    if !rest.is_empty() {
        return Err(ProxyError::Codec {
            reason: "trailing bytes after layer data".to_string(),
        });
    }
    Ok(layer)
}

/// Structurally validates one layer frame **without decompressing**: every
/// header field is checked, the frame's declared geometry must account for
/// exactly `bytes.len()`, and a top-k frame's indices must be in-range,
/// strictly ascending (the canonical encoding) — but no f32 is converted
/// and no value buffer is allocated. This is what an intermediate hop can
/// afford to run on every unwrapped blob at line rate.
///
/// Returns the frame's wire version.
///
/// # Errors
///
/// Same conditions as [`decode_layer`].
pub fn validate_layer_frame(bytes: &[u8]) -> Result<u8, ProxyError> {
    let fail = |reason: &str| ProxyError::Codec {
        reason: reason.to_string(),
    };
    let version = detect_layer_version(bytes)?;
    if version == VERSION {
        if bytes.len() < 4 {
            return Err(fail("layer header truncated"));
        }
        let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        // u64: `4 + 4·len` must not wrap usize on 32-bit targets.
        if (bytes.len() as u64) < 4 + 4 * len as u64 {
            return Err(fail("layer data truncated"));
        }
        if (bytes.len() as u64) > 4 + 4 * len as u64 {
            return Err(fail("trailing bytes after layer data"));
        }
        return Ok(VERSION);
    }
    let frame = parse_v2_frame(bytes)?;
    if bytes.len() != frame.total_len {
        return Err(fail("trailing bytes after layer data"));
    }
    Ok(VERSION_V2)
}

/// The parameter count a layer frame *declares* in its header — a cheap
/// header peek (no payload validation, no allocation) for checking a
/// frame against an expected signature before decoding it.
///
/// # Errors
///
/// Returns [`ProxyError::UnsupportedCodecVersion`] for an unknown
/// sentinel-opened version and [`ProxyError::Codec`] on a truncated
/// header.
pub fn declared_layer_len(bytes: &[u8]) -> Result<usize, ProxyError> {
    let fail = |reason: &str| ProxyError::Codec {
        reason: reason.to_string(),
    };
    let version = detect_layer_version(bytes)?;
    if version == VERSION {
        if bytes.len() < 4 {
            return Err(fail("layer header truncated"));
        }
        return Ok(u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize);
    }
    if bytes.len() < 10 {
        return Err(fail("v2 header truncated"));
    }
    Ok(u32::from_be_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]) as usize)
}

/// Rejects a frame whose declared parameter count differs from what the
/// round's signature says this layer must carry — checked from the
/// header alone, before any value buffer is allocated.
fn check_declared_len(bytes: &[u8], expected_len: usize) -> Result<(), ProxyError> {
    let declared = declared_layer_len(bytes)?;
    if declared != expected_len {
        return Err(ProxyError::SignatureMismatch {
            expected: vec![expected_len],
            actual: vec![declared],
        });
    }
    Ok(())
}

/// [`decode_layer`], but the caller states how many parameters the frame
/// must carry (from the round's layer signature). A mismatched declared
/// count is rejected as [`ProxyError::SignatureMismatch`] **before** any
/// allocation, so a crafted header can never force a buffer the
/// signature does not authorize.
///
/// # Errors
///
/// [`ProxyError::SignatureMismatch`] on a declared-length mismatch, plus
/// every condition of [`decode_layer`].
pub fn decode_layer_expecting(
    bytes: &[u8],
    expected_len: usize,
) -> Result<LayerParams, ProxyError> {
    check_declared_len(bytes, expected_len)?;
    decode_layer(bytes)
}

/// [`validate_layer_frame`], but additionally pins the frame's declared
/// parameter count to the round's signature — what the last hop runs on
/// every unwrapped blob, so a frame that would make the server allocate
/// anything other than `expected_len` values is charged to the ingest.
///
/// # Errors
///
/// [`ProxyError::SignatureMismatch`] on a declared-length mismatch, plus
/// every condition of [`validate_layer_frame`].
pub fn validate_layer_frame_expecting(bytes: &[u8], expected_len: usize) -> Result<u8, ProxyError> {
    check_declared_len(bytes, expected_len)?;
    validate_layer_frame(bytes)
}

/// Classifies the first bytes of a layer frame: v2 if (and only if) it
/// opens with the sentinel, v1 otherwise. A sentinel-opened frame whose
/// version byte is unknown is a *negotiation* failure, distinct from
/// malformed structure.
fn detect_layer_version(bytes: &[u8]) -> Result<u8, ProxyError> {
    if bytes.len() >= 5 && bytes[..4] == V2_SENTINEL.to_be_bytes() {
        let version = bytes[4];
        if version != VERSION_V2 {
            return Err(ProxyError::UnsupportedCodecVersion { version });
        }
        return Ok(VERSION_V2);
    }
    if bytes.len() >= 4 && bytes[..4] == V2_SENTINEL.to_be_bytes() {
        // Sentinel with no version byte: a truncated v2 header, not a v1
        // layer of u32::MAX values.
        return Err(ProxyError::Codec {
            reason: "v2 header truncated".to_string(),
        });
    }
    Ok(VERSION)
}

/// The parsed geometry of one v2 frame: everything needed to validate or
/// decode it, with the payload bounds already checked against the buffer.
struct V2Frame<'a> {
    mode: u8,
    len: usize,
    k: usize,
    scale: f32,
    zero: f32,
    width: usize,
    /// `k·width` index bytes (top-k) — empty for dense.
    index_bytes: &'a [u8],
    /// `len` (dense) or `k` (top-k) quant bytes.
    quant_bytes: &'a [u8],
    /// Total frame length in the underlying buffer.
    total_len: usize,
}

/// Parses a v2 frame's headers and payload bounds from the front of
/// `bytes` (which may extend past the frame). No value is dequantized.
fn parse_v2_frame(bytes: &[u8]) -> Result<V2Frame<'_>, ProxyError> {
    let fail = |reason: &str| ProxyError::Codec {
        reason: reason.to_string(),
    };
    // Sentinel and version were checked by `detect_layer_version`.
    if bytes.len() < V2_DENSE_HEADER {
        return Err(fail("v2 header truncated"));
    }
    let mode = bytes[5];
    if mode != MODE_DENSE && mode != MODE_TOPK {
        return Err(fail("unknown v2 layer mode"));
    }
    let len = u32::from_be_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]) as usize;
    let (k, header) = if mode == MODE_TOPK {
        if bytes.len() < V2_TOPK_HEADER {
            return Err(fail("v2 header truncated"));
        }
        let k = u32::from_be_bytes([bytes[10], bytes[11], bytes[12], bytes[13]]) as usize;
        if k > len {
            return Err(fail("top-k frame keeps more values than the layer holds"));
        }
        // Encode-side invariant: the keep ratio is clamped to ≥ 1/1024,
        // so every conforming frame has k ≥ ⌈len/1024⌉. Enforcing it here
        // bounds the decode allocation by the frame's actual payload — a
        // crafted header with a huge `len` and a tiny self-consistent `k`
        // must be rejected before any `len`-sized buffer exists.
        if len as u64 > 1024 * k as u64 {
            return Err(fail(
                "top-k frame declares more values than any keep ratio allows",
            ));
        }
        (k, V2_TOPK_HEADER)
    } else {
        (len, V2_DENSE_HEADER)
    };
    let scale = f32::from_le_bytes([
        bytes[header - 8],
        bytes[header - 7],
        bytes[header - 6],
        bytes[header - 5],
    ]);
    let zero = f32::from_le_bytes([
        bytes[header - 4],
        bytes[header - 3],
        bytes[header - 2],
        bytes[header - 1],
    ]);
    let width = index_width(len);
    // u64 frame-size arithmetic: a near-u32::MAX header must not wrap a
    // usize computation on 32-bit targets into a "valid" smaller size.
    let index_len64 = if mode == MODE_TOPK {
        k as u64 * width as u64
    } else {
        0
    };
    let total_len64 = header as u64 + index_len64 + k.min(len) as u64;
    // Dense payload is `len` quants; `k == len` there, so `k.min(len)`
    // covers both modes.
    if (bytes.len() as u64) < total_len64 {
        return Err(fail("v2 layer payload truncated"));
    }
    // Bounded by the buffer length, so these fit in usize.
    let index_len = index_len64 as usize;
    let total_len = total_len64 as usize;
    let index_bytes = &bytes[header..header + index_len];
    if mode == MODE_TOPK {
        // Canonical index encoding: strictly ascending, in range. Checked
        // here so the structural validation rejects what a decoder would.
        let mut prev: Option<usize> = None;
        for chunk in index_bytes.chunks_exact(width) {
            let mut idx = 0usize;
            for &b in chunk {
                idx = (idx << 8) | b as usize;
            }
            if idx >= len {
                return Err(fail("top-k index out of range"));
            }
            if prev.is_some_and(|p| idx <= p) {
                return Err(fail("top-k indices must be strictly ascending"));
            }
            prev = Some(idx);
        }
    }
    Ok(V2Frame {
        mode,
        len,
        k,
        scale,
        zero,
        width,
        index_bytes,
        quant_bytes: &bytes[header + index_len..total_len],
        total_len,
    })
}

/// Structurally steps over one layer frame of the given wire `version`
/// without decoding any value, returning the frame's declared parameter
/// count and the remaining bytes. Same rejection conditions as
/// [`consume_layer_frame`], minus the value work.
fn skip_layer_frame(bytes: &[u8], version: u8) -> Result<(usize, &[u8]), ProxyError> {
    let fail = |reason: &str| ProxyError::Codec {
        reason: reason.to_string(),
    };
    if version == VERSION {
        if bytes.len() < 4 {
            return Err(fail("layer header truncated"));
        }
        let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        if len == V2_SENTINEL as usize {
            return Err(fail("v1 layer length collides with the v2 sentinel"));
        }
        let rest = &bytes[4..];
        if (rest.len() as u64) < 4 * len as u64 {
            return Err(fail("layer data truncated"));
        }
        return Ok((len, &rest[4 * len..]));
    }
    if detect_layer_version(bytes)? != VERSION_V2 {
        return Err(fail("v2 body carries a layer without the v2 sentinel"));
    }
    let frame = parse_v2_frame(bytes)?;
    Ok((frame.len, &bytes[frame.total_len..]))
}

/// Consumes one layer frame of the given wire `version` from the front of
/// `bytes`, returning the decoded layer and the remaining bytes.
fn consume_layer_frame(bytes: &[u8], version: u8) -> Result<(LayerParams, &[u8]), ProxyError> {
    let fail = |reason: &str| ProxyError::Codec {
        reason: reason.to_string(),
    };
    if version == VERSION {
        if bytes.len() < 4 {
            return Err(fail("layer header truncated"));
        }
        let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        if len == V2_SENTINEL as usize {
            // Unreachable through `decode_params` v1 (the length check
            // below fails first) but kept explicit: a v2 frame must never
            // be misread as a v1 layer.
            return Err(fail("v1 layer length collides with the v2 sentinel"));
        }
        let rest = &bytes[4..];
        // u64 compare first: `4·len` may wrap usize on 32-bit targets.
        if (rest.len() as u64) < 4 * len as u64 {
            return Err(fail("layer data truncated"));
        }
        let (data, rest) = rest.split_at(4 * len);
        return Ok((LayerParams::from_values(read_f32_le_bulk(data)), rest));
    }
    if detect_layer_version(bytes)? != VERSION_V2 {
        return Err(fail("v2 body carries a layer without the v2 sentinel"));
    }
    let frame = parse_v2_frame(bytes)?;
    let mut values = vec![0.0f32; frame.len];
    if frame.mode == MODE_DENSE {
        for (slot, &q) in values.iter_mut().zip(frame.quant_bytes) {
            *slot = dequantize(q, frame.zero, frame.scale);
        }
    } else {
        for (chunk, &q) in frame
            .index_bytes
            .chunks_exact(frame.width)
            .zip(frame.quant_bytes)
        {
            let mut idx = 0usize;
            for &b in chunk {
                idx = (idx << 8) | b as usize;
            }
            values[idx] = dequantize(q, frame.zero, frame.scale);
        }
    }
    let _ = frame.k;
    Ok((LayerParams::from_values(values), &bytes[frame.total_len..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ModelParams {
        ModelParams::from_layers(vec![
            LayerParams::from_values(vec![1.0, -2.5, 3.25]),
            LayerParams::from_values(vec![0.0]),
            LayerParams::from_values(vec![f32::MIN_POSITIVE, f32::MAX]),
        ])
    }

    const MODES: [CompressionConfig; 3] = [
        CompressionConfig::F32,
        CompressionConfig::Int8,
        CompressionConfig::Int8TopK { keep_per_1024: 256 },
    ];

    #[test]
    fn round_trip_preserves_exact_bits() {
        let p = sample();
        let decoded = decode_params(&encode_params(&p)).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn encoded_len_matches_reality() {
        let p = sample();
        assert_eq!(encode_params(&p).len(), encoded_len(&p.signature()));
        for mode in MODES {
            assert_eq!(
                encode_params_with(&p, mode).len(),
                encoded_len_with(&p.signature(), mode),
                "{}",
                mode.name()
            );
        }
    }

    #[test]
    fn empty_model_round_trips() {
        let p = ModelParams::from_layers(vec![]);
        assert_eq!(decode_params(&encode_params(&p)).unwrap(), p);
        for mode in MODES {
            assert_eq!(
                decode_params(&encode_params_with(&p, mode)).unwrap(),
                p,
                "{}",
                mode.name()
            );
        }
    }

    #[test]
    fn truncation_anywhere_is_rejected() {
        for mode in MODES {
            let bytes = encode_params_with(&sample(), mode);
            for cut in 0..bytes.len() {
                assert!(
                    decode_params(&bytes[..cut]).is_err(),
                    "{}: truncation at {cut} accepted",
                    mode.name()
                );
            }
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = encode_params(&sample());
        bytes[0] ^= 0xff;
        assert!(matches!(
            decode_params(&bytes),
            Err(ProxyError::Codec { .. })
        ));
        let mut bytes = encode_params(&sample());
        bytes[4] = 99; // version
        let err = decode_params(&bytes).unwrap_err();
        assert!(matches!(
            err,
            ProxyError::UnsupportedCodecVersion { version: 99 }
        ));
        assert!(err.to_string().contains("version 99"));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        for mode in MODES {
            let mut bytes = encode_params_with(&sample(), mode);
            bytes.push(0);
            let err = decode_params(&bytes).unwrap_err();
            assert!(err.to_string().contains("trailing"), "{}", mode.name());
        }
    }

    #[test]
    fn empty_layers_round_trip() {
        // Zero-length layers are legal (e.g. a bias-free layer slot) and
        // must survive next to populated ones — in every mode.
        let p = ModelParams::from_layers(vec![
            LayerParams::from_values(vec![]),
            LayerParams::from_values(vec![1.5]),
            LayerParams::from_values(vec![]),
        ]);
        let bytes = encode_params(&p);
        assert_eq!(bytes.len(), encoded_len(&p.signature()));
        assert_eq!(decode_params(&bytes).unwrap(), p);
        for mode in MODES {
            let bytes = encode_params_with(&p, mode);
            assert_eq!(bytes.len(), encoded_len_with(&p.signature(), mode));
            let decoded = decode_params(&bytes).unwrap();
            assert_eq!(decoded.signature(), p.signature(), "{}", mode.name());
        }
    }

    #[test]
    fn large_layer_round_trips_at_size_edge() {
        // One deliberately large layer (64 Ki scalars ≈ 256 KiB on the
        // wire) — the biggest single allocation the tests exercise.
        let n = 1 << 16;
        let values: Vec<f32> = (0..n).map(|i| i as f32 * 0.5 - 1000.0).collect();
        let p = ModelParams::from_layers(vec![
            LayerParams::from_values(values),
            LayerParams::from_values(vec![]),
        ]);
        let bytes = encode_params(&p);
        assert_eq!(bytes.len(), encoded_len(&p.signature()));
        assert_eq!(decode_params(&bytes).unwrap(), p);
    }

    #[test]
    fn implausible_layer_count_is_rejected_without_allocating() {
        // A header advertising u32::MAX layers with no payload must be
        // rejected by the sanity bound, not die attempting a huge reserve.
        let mut bytes = Vec::new();
        bytes.put_u32(MAGIC);
        bytes.put_u8(VERSION);
        bytes.put_u32(u32::MAX);
        let err = decode_params(&bytes).unwrap_err();
        assert!(err.to_string().contains("implausible"));
    }

    #[test]
    fn single_layer_round_trips_bit_exactly() {
        for values in [vec![], vec![1.5f32], vec![f32::MAX, -0.0, 3.25]] {
            let layer = LayerParams::from_values(values);
            let bytes = encode_layer(&layer);
            assert_eq!(bytes.len(), encoded_layer_len(layer.len()));
            assert_eq!(decode_layer(&bytes).unwrap(), layer);
        }
    }

    #[test]
    fn single_layer_truncation_and_trailing_are_rejected() {
        for mode in MODES {
            let layer = LayerParams::from_values(vec![1.0, 2.0]);
            let bytes = encode_layer_with(&layer, mode);
            for cut in 0..bytes.len() {
                assert!(
                    decode_layer(&bytes[..cut]).is_err(),
                    "{}: truncation at {cut}",
                    mode.name()
                );
                assert!(
                    validate_layer_frame(&bytes[..cut]).is_err(),
                    "{}: truncated frame validated at {cut}",
                    mode.name()
                );
            }
            let mut extra = bytes.clone();
            extra.push(0);
            assert!(decode_layer(&extra)
                .unwrap_err()
                .to_string()
                .contains("trailing"));
            assert!(validate_layer_frame(&extra).is_err());
        }
    }

    #[test]
    fn params_digest_is_stable_and_bit_sensitive() {
        let p = sample();
        assert_eq!(params_digest(&p), params_digest(&sample()));
        let mut other = sample();
        other.layer_mut(0).unwrap().values_mut()[0] += 1.0;
        assert_ne!(params_digest(&p), params_digest(&other));
        // -0.0 and +0.0 compare equal but encode differently — the digest
        // follows the bytes, which is what content-stripping relies on.
        let neg = ModelParams::from_layers(vec![LayerParams::from_values(vec![-0.0])]);
        let pos = ModelParams::from_layers(vec![LayerParams::from_values(vec![0.0])]);
        assert_ne!(params_digest(&neg), params_digest(&pos));
    }

    #[test]
    fn layer_digest_is_stable_and_bit_sensitive() {
        let a = LayerParams::from_values(vec![1.0, 2.5]);
        assert_eq!(layer_digest(&a), layer_digest(&a.clone()));
        let b = LayerParams::from_values(vec![1.0, 2.500001]);
        assert_ne!(layer_digest(&a), layer_digest(&b));
        // A layer's digest matches the digest of the same bytes wherever
        // they travel — the property cover stripping relies on.
        assert_eq!(
            layer_digest(&a),
            mixnn_crypto::sha256::digest(&encode_layer(&a))
        );
    }

    #[test]
    fn nan_and_special_values_survive() {
        let p = ModelParams::from_layers(vec![LayerParams::from_values(vec![
            f32::INFINITY,
            f32::NEG_INFINITY,
            -0.0,
        ])]);
        let d = decode_params(&encode_params(&p)).unwrap();
        let v = d.layer(0).unwrap().values();
        assert_eq!(v[0], f32::INFINITY);
        assert_eq!(v[1], f32::NEG_INFINITY);
        assert!(v[2] == 0.0 && v[2].is_sign_negative());
    }

    // ---- v2: quantization semantics --------------------------------

    #[test]
    fn int8_dense_bounds_error_by_one_step() {
        let values: Vec<f32> = (0..512).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let layer = LayerParams::from_values(values.clone());
        let decoded = decode_layer(&encode_layer_with(&layer, CompressionConfig::Int8)).unwrap();
        let (min, max) = values
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        let step = (max - min) / 255.0;
        for (orig, deq) in values.iter().zip(decoded.values()) {
            assert!((orig - deq).abs() <= step, "|{orig} - {deq}| > step {step}");
        }
    }

    #[test]
    fn constant_layer_dequantizes_to_the_constant() {
        let layer = LayerParams::from_values(vec![0.75; 16]);
        let decoded = decode_layer(&encode_layer_with(&layer, CompressionConfig::Int8)).unwrap();
        assert_eq!(decoded, layer);
    }

    #[test]
    fn non_finite_values_quantize_without_poisoning_the_range() {
        let layer =
            LayerParams::from_values(vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1.0, -1.0]);
        for mode in [CompressionConfig::Int8, CompressionConfig::int8_top_k()] {
            let decoded = decode_layer(&encode_layer_with(&layer, mode)).unwrap();
            // The range derives from the finite values only, so every
            // dequantized value is finite and within a quantization step
            // of [-1, 1] (the f32 scale rounds, so the top level can land
            // one ULP past the true max).
            let step = 2.0 / 255.0;
            for &v in decoded.values() {
                assert!(v.is_finite(), "{}: {v}", mode.name());
                assert!(v.abs() <= 1.0 + step, "{}: {v}", mode.name());
            }
        }
        // An all-non-finite layer decodes to zeros, not a poisoned range.
        let wild = LayerParams::from_values(vec![f32::NAN, f32::INFINITY]);
        let decoded = decode_layer(&encode_layer_with(&wild, CompressionConfig::Int8)).unwrap();
        assert_eq!(decoded.values(), &[0.0, 0.0]);
    }

    #[test]
    fn top_k_keeps_the_largest_magnitudes_and_zeroes_the_rest() {
        let layer = LayerParams::from_values(vec![0.1, -8.0, 0.2, 6.0, -0.3, 0.05, 4.0, 0.0]);
        // 8 values at 256/1024 keep ratio -> k = 2.
        let decoded = decode_layer(&encode_layer_with(
            &layer,
            CompressionConfig::Int8TopK { keep_per_1024: 256 },
        ))
        .unwrap();
        let v = decoded.values();
        assert!(v[1] != 0.0 && v[3] != 0.0, "largest magnitudes kept: {v:?}");
        for (i, &x) in v.iter().enumerate() {
            if i != 1 && i != 3 {
                assert_eq!(x, 0.0, "dropped position {i} must decode to zero");
            }
        }
        // The kept values stay within a quantization step of the originals.
        assert!((v[1] + 8.0).abs() <= (6.0f32 - -8.0) / 255.0);
        assert!((v[3] - 6.0).abs() <= (6.0f32 - -8.0) / 255.0);
    }

    #[test]
    fn kept_count_is_content_independent() {
        let cfg = CompressionConfig::int8_top_k();
        for len in [0usize, 1, 2, 3, 4, 5, 130, 512, 1024, 2048, 1 << 20] {
            let k = cfg.kept(len);
            assert!(k <= len);
            if len > 0 {
                assert!(k >= 1, "non-empty layers keep at least one value");
            }
            // ceil(len/4) at the default ratio.
            assert_eq!(k, len.div_ceil(4).max(usize::from(len > 0)));
        }
    }

    #[test]
    fn v2_lengths_are_content_independent() {
        // Same length, wildly different contents -> byte-identical frame
        // lengths. This is the privacy property everything downstream
        // (route-group size uniformity, dummy indistinguishability)
        // inherits.
        for mode in MODES {
            for len in [0usize, 1, 7, 130, 256, 257, 2048] {
                let zeros = LayerParams::from_values(vec![0.0; len]);
                let ramp = LayerParams::from_values((0..len).map(|i| i as f32 * 123.456).collect());
                let wild = LayerParams::from_values(
                    (0..len)
                        .map(|i| if i % 3 == 0 { f32::NAN } else { -1e30 })
                        .collect(),
                );
                let expect = encoded_layer_len_with(len, mode);
                for layer in [&zeros, &ramp, &wild] {
                    assert_eq!(
                        encode_layer_with(layer, mode).len(),
                        expect,
                        "{} len {len}",
                        mode.name()
                    );
                }
            }
        }
    }

    #[test]
    fn canonical_layer_is_idempotent_through_the_wire() {
        let layer = LayerParams::from_values((0..300).map(|i| (i as f32).cos() * 2.5).collect());
        for mode in MODES {
            let canonical = canonical_layer(&layer, mode);
            // Decoding the frame the encoder produced yields the canonical
            // values bit-exactly — the property cover stripping relies on.
            let wire = encode_layer_with(&layer, mode);
            assert_eq!(decode_layer(&wire).unwrap(), canonical, "{}", mode.name());
            // And canonicalizing twice is a fixed point.
            assert_eq!(
                canonical_layer(&canonical, mode),
                canonical,
                "{}",
                mode.name()
            );
        }
    }

    #[test]
    fn structural_validation_matches_decodability() {
        for mode in MODES {
            let layer = LayerParams::from_values((0..64).map(|i| i as f32 - 31.5).collect());
            let bytes = encode_layer_with(&layer, mode);
            let expected_version = if mode.is_f32() { VERSION } else { VERSION_V2 };
            assert_eq!(validate_layer_frame(&bytes).unwrap(), expected_version);
        }
    }

    #[test]
    fn v2_rejects_unknown_version_mode_and_bad_indices() {
        let layer = LayerParams::from_values(vec![1.0, -2.0, 3.0, -4.0]);
        let good = encode_layer_with(&layer, CompressionConfig::int8_top_k());

        // Unknown version under the sentinel -> typed negotiation error.
        let mut bad = good.clone();
        bad[4] = 7;
        assert!(matches!(
            decode_layer(&bad),
            Err(ProxyError::UnsupportedCodecVersion { version: 7 })
        ));
        assert!(matches!(
            validate_layer_frame(&bad),
            Err(ProxyError::UnsupportedCodecVersion { version: 7 })
        ));

        // Unknown mode.
        let mut bad = good.clone();
        bad[5] = 9;
        assert!(decode_layer(&bad).unwrap_err().to_string().contains("mode"));

        // k > len.
        let mut bad = good.clone();
        bad[10..14].copy_from_slice(&100u32.to_be_bytes());
        assert!(decode_layer(&bad)
            .unwrap_err()
            .to_string()
            .contains("more values"));

        // Out-of-range index.
        let mut bad = good.clone();
        bad[V2_TOPK_HEADER] = 200; // 4-value layer, width 1
        assert!(decode_layer(&bad)
            .unwrap_err()
            .to_string()
            .contains("out of range"));

        // Non-ascending indices (canonical encoding violated).
        let layer8 = LayerParams::from_values(vec![5.0, 4.0, 3.0, 2.0, 1.0, 0.5, 0.25, 0.125]);
        let frame = encode_layer_with(&layer8, CompressionConfig::Int8TopK { keep_per_1024: 512 });
        let mut bad = frame.clone();
        // k = 4 here; swap the first two index bytes to break ordering.
        bad.swap(V2_TOPK_HEADER, V2_TOPK_HEADER + 1);
        assert!(decode_layer(&bad)
            .unwrap_err()
            .to_string()
            .contains("ascending"));
    }

    /// A structurally self-consistent top-k frame with arbitrary header
    /// geometry: valid sentinel/version/mode, ascending in-range indices
    /// `0..k`, `k` quant bytes.
    fn crafted_topk_frame(len: u32, k: u32) -> Vec<u8> {
        let width = index_width(len as usize);
        let mut frame = Vec::new();
        frame.put_u32(V2_SENTINEL);
        frame.put_u8(VERSION_V2);
        frame.put_u8(MODE_TOPK);
        frame.put_u32(len);
        frame.put_u32(k);
        frame.put_f32_le(1.0);
        frame.put_f32_le(0.0);
        for i in 0..k {
            frame.extend_from_slice(&i.to_be_bytes()[4 - width..]);
        }
        frame.extend(std::iter::repeat_n(0x7f, k as usize));
        frame
    }

    #[test]
    fn huge_len_topk_frame_is_rejected_without_allocating() {
        // The allocation-DoS shape: ~30 wire bytes declaring a ~16 GiB
        // layer. Structurally valid everywhere except the keep-ratio
        // invariant — every decode path must reject it from the header.
        let frame = crafted_topk_frame(u32::MAX - 1, 1);
        assert!(
            frame.len() < 32,
            "the attack is cheap: {} bytes",
            frame.len()
        );
        for err in [
            decode_layer(&frame).unwrap_err(),
            validate_layer_frame(&frame).unwrap_err(),
            decode_layer_expecting(&frame, (u32::MAX - 1) as usize).unwrap_err(),
            validate_layer_frame_expecting(&frame, (u32::MAX - 1) as usize).unwrap_err(),
        ] {
            assert!(err.to_string().contains("keep ratio"), "{err}");
        }
        // And through the params body decoder.
        let mut body = Vec::new();
        body.put_u32(MAGIC);
        body.put_u8(VERSION_V2);
        body.put_u32(1);
        body.extend_from_slice(&frame);
        assert!(decode_params(&body).is_err());
        assert!(decode_params_expecting(&body, &[(u32::MAX - 1) as usize]).is_err());
    }

    #[test]
    fn topk_len_is_accepted_exactly_up_to_the_keep_ratio_bound() {
        // len = 1024·k is what a keep_per_1024 = 1 encoder legitimately
        // produces; one more value has no conforming encoder.
        let ok = crafted_topk_frame(2048, 2);
        assert_eq!(validate_layer_frame(&ok).unwrap(), VERSION_V2);
        assert_eq!(decode_layer(&ok).unwrap().len(), 2048);
        assert!(decode_layer(&crafted_topk_frame(2049, 2)).is_err());
    }

    #[test]
    fn expecting_decoders_pin_the_declared_length() {
        for mode in MODES {
            let layer = LayerParams::from_values(vec![1.0, -2.0, 3.0]);
            let frame = encode_layer_with(&layer, mode);
            assert_eq!(declared_layer_len(&frame).unwrap(), 3, "{}", mode.name());
            assert_eq!(
                decode_layer_expecting(&frame, 3).unwrap(),
                decode_layer(&frame).unwrap(),
                "{}",
                mode.name()
            );
            assert!(validate_layer_frame_expecting(&frame, 3).is_ok());
            // Any other expected length is the typed signature error,
            // reported before any value buffer is allocated.
            let err = decode_layer_expecting(&frame, 4).unwrap_err();
            assert!(
                matches!(
                    err,
                    ProxyError::SignatureMismatch { ref expected, ref actual }
                        if expected == &[4] && actual == &[3]
                ),
                "{}: {err}",
                mode.name()
            );
            assert!(validate_layer_frame_expecting(&frame, 4).is_err());
        }
    }

    #[test]
    fn decode_params_expecting_pins_the_signature() {
        let p = sample();
        let signature = p.signature();
        for mode in MODES {
            let bytes = encode_params_with(&p, mode);
            assert_eq!(
                decode_params_expecting(&bytes, &signature).unwrap(),
                decode_params(&bytes).unwrap(),
                "{}",
                mode.name()
            );
            let err = decode_params_expecting(&bytes, &[9, 9, 9]).unwrap_err();
            assert!(
                matches!(
                    err,
                    ProxyError::SignatureMismatch { ref expected, ref actual }
                        if expected == &[9, 9, 9] && actual == &signature
                ),
                "{}: {err}",
                mode.name()
            );
            // Malformation still takes precedence over the mismatch.
            let mut truncated = bytes.clone();
            truncated.pop();
            assert!(matches!(
                decode_params_expecting(&truncated, &signature).unwrap_err(),
                ProxyError::Codec { .. }
            ));
        }
    }

    #[test]
    fn bare_sentinel_is_a_truncated_v2_header_not_a_v1_layer() {
        let bytes = V2_SENTINEL.to_be_bytes();
        let err = decode_layer(&bytes).unwrap_err();
        assert!(err.to_string().contains("v2 header truncated"));
    }

    #[test]
    fn v2_params_round_trip_is_stable() {
        // decode(encode(p)) is lossy, but decode is a pure function of the
        // frame bytes: re-decoding yields bit-identical values, and the
        // decoded values match `canonical_params`.
        let p = sample();
        for mode in [CompressionConfig::Int8, CompressionConfig::int8_top_k()] {
            let wire = encode_params_with(&p, mode);
            let once = decode_params(&wire).unwrap();
            let twice = decode_params(&wire).unwrap();
            assert_eq!(once, twice, "{}", mode.name());
            assert_eq!(once, canonical_params(&p, mode), "{}", mode.name());
        }
    }

    #[test]
    fn reference_model_meets_the_compression_budget() {
        // The §6 reference signature must compress ≥4x against v1 at the
        // default top-k ratio — the acceptance gate of the v2 codec, pinned
        // here at the frame level (the load experiment re-checks it with
        // seal and burst overhead included).
        let signature = [2048usize, 2048, 1024, 512, 130];
        let f32_bytes: usize = signature.iter().map(|&l| encoded_layer_len(l)).sum();
        let topk: usize = signature
            .iter()
            .map(|&l| encoded_layer_len_with(l, CompressionConfig::int8_top_k()))
            .sum();
        assert!(
            f32_bytes as f64 / topk as f64 >= 4.0,
            "{f32_bytes} / {topk} < 4x"
        );
    }
}
