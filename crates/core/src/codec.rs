//! Wire format for model updates.
//!
//! Participants serialize their per-layer parameter vectors with this codec
//! before sealing them to the enclave; the proxy decodes inside the
//! enclave. The format is versioned and explicitly little-endian:
//!
//! ```text
//! magic   u32  = 0x4d49584e ("MIXN")
//! version u8   = 1
//! layers  u32
//! repeat layers times:
//!     len  u32
//!     data len × f32 (LE)
//! ```

use crate::ProxyError;
use bytes::{Buf, BufMut};
use mixnn_nn::{LayerParams, ModelParams};

/// Format magic: `"MIXN"` as a big-endian u32.
pub const MAGIC: u32 = 0x4d49_584e;
/// Current format version.
pub const VERSION: u8 = 1;

/// Serialized size in bytes for a model with the given layer signature.
pub fn encoded_len(signature: &[usize]) -> usize {
    4 + 1 + 4 + signature.iter().map(|l| 4 + 4 * l).sum::<usize>()
}

/// Encodes model parameters into the wire format.
///
/// # Example
///
/// ```
/// use mixnn_core::codec;
/// use mixnn_nn::{LayerParams, ModelParams};
///
/// # fn main() -> Result<(), mixnn_core::ProxyError> {
/// let params = ModelParams::from_layers(vec![LayerParams::from_values(vec![1.0, 2.0])]);
/// let bytes = codec::encode_params(&params);
/// assert_eq!(codec::decode_params(&bytes)?, params);
/// # Ok(())
/// # }
/// ```
pub fn encode_params(params: &ModelParams) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_len(&params.signature()));
    out.put_u32(MAGIC);
    out.put_u8(VERSION);
    out.put_u32(params.num_layers() as u32);
    for layer in params.iter() {
        out.put_u32(layer.len() as u32);
        for &v in layer.values() {
            out.put_f32_le(v);
        }
    }
    out
}

/// Decodes model parameters from the wire format.
///
/// # Errors
///
/// Returns [`ProxyError::Codec`] on truncation, bad magic, unknown version
/// or trailing garbage.
pub fn decode_params(mut bytes: &[u8]) -> Result<ModelParams, ProxyError> {
    let fail = |reason: &str| ProxyError::Codec {
        reason: reason.to_string(),
    };
    if bytes.remaining() < 9 {
        return Err(fail("header truncated"));
    }
    if bytes.get_u32() != MAGIC {
        return Err(fail("bad magic"));
    }
    let version = bytes.get_u8();
    if version != VERSION {
        return Err(ProxyError::Codec {
            reason: format!("unsupported version {version}"),
        });
    }
    let layer_count = bytes.get_u32() as usize;
    // Sanity bound: each declared layer needs at least its length header.
    if layer_count > bytes.remaining() / 4 + 1 {
        return Err(fail("implausible layer count"));
    }
    let mut layers = Vec::with_capacity(layer_count);
    for _ in 0..layer_count {
        if bytes.remaining() < 4 {
            return Err(fail("layer header truncated"));
        }
        let len = bytes.get_u32() as usize;
        if bytes.remaining() < 4 * len {
            return Err(fail("layer data truncated"));
        }
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push(bytes.get_f32_le());
        }
        layers.push(LayerParams::from_values(values));
    }
    if bytes.has_remaining() {
        return Err(fail("trailing bytes after last layer"));
    }
    Ok(ModelParams::from_layers(layers))
}

/// SHA-256 digest of a model's canonical wire encoding.
///
/// Two `ModelParams` share a digest exactly when [`encode_params`] produces
/// the same bytes — i.e. when every scalar is bit-identical.
pub fn params_digest(params: &ModelParams) -> [u8; 32] {
    mixnn_crypto::sha256::digest(&encode_params(params))
}

/// SHA-256 digest of a **single layer's** canonical encoding
/// ([`encode_layer`]).
///
/// This is the cascade's cover-stripping primitive: mixing permutes every
/// layer *independently* across a group's slots, so a cover update's
/// layers scatter over different output slots — a whole-model digest can
/// never find them again. Per-layer digests can: hops announce the digest
/// of each cover layer they generated, and the server drops matching layer
/// blobs from the mixed outputs without ever learning which slot (or which
/// co-arrived layers) the cover came from.
pub fn layer_digest(layer: &LayerParams) -> [u8; 32] {
    mixnn_crypto::sha256::digest(&encode_layer(layer))
}

/// Serialized size in bytes of one layer under [`encode_layer`].
pub fn encoded_layer_len(layer_len: usize) -> usize {
    4 + 4 * layer_len
}

/// Encodes a **single** layer's parameter vector: `len u32` followed by
/// `len` little-endian f32s.
///
/// This is the innermost plaintext of a cascade onion — each neural-network
/// layer travels as its own independently encrypted blob, so the per-layer
/// framing cannot reference the rest of the model.
pub fn encode_layer(layer: &LayerParams) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_layer_len(layer.len()));
    out.put_u32(layer.len() as u32);
    for &v in layer.values() {
        out.put_f32_le(v);
    }
    out
}

/// Decodes a single layer encoded by [`encode_layer`].
///
/// # Errors
///
/// Returns [`ProxyError::Codec`] on truncation or trailing bytes.
pub fn decode_layer(mut bytes: &[u8]) -> Result<LayerParams, ProxyError> {
    let fail = |reason: &str| ProxyError::Codec {
        reason: reason.to_string(),
    };
    if bytes.remaining() < 4 {
        return Err(fail("layer header truncated"));
    }
    let len = bytes.get_u32() as usize;
    if bytes.remaining() < 4 * len {
        return Err(fail("layer data truncated"));
    }
    let mut values = Vec::with_capacity(len);
    for _ in 0..len {
        values.push(bytes.get_f32_le());
    }
    if bytes.has_remaining() {
        return Err(fail("trailing bytes after layer data"));
    }
    Ok(LayerParams::from_values(values))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ModelParams {
        ModelParams::from_layers(vec![
            LayerParams::from_values(vec![1.0, -2.5, 3.25]),
            LayerParams::from_values(vec![0.0]),
            LayerParams::from_values(vec![f32::MIN_POSITIVE, f32::MAX]),
        ])
    }

    #[test]
    fn round_trip_preserves_exact_bits() {
        let p = sample();
        let decoded = decode_params(&encode_params(&p)).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn encoded_len_matches_reality() {
        let p = sample();
        assert_eq!(encode_params(&p).len(), encoded_len(&p.signature()));
    }

    #[test]
    fn empty_model_round_trips() {
        let p = ModelParams::from_layers(vec![]);
        assert_eq!(decode_params(&encode_params(&p)).unwrap(), p);
    }

    #[test]
    fn truncation_anywhere_is_rejected() {
        let bytes = encode_params(&sample());
        for cut in 0..bytes.len() {
            assert!(
                decode_params(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = encode_params(&sample());
        bytes[0] ^= 0xff;
        assert!(matches!(
            decode_params(&bytes),
            Err(ProxyError::Codec { .. })
        ));
        let mut bytes = encode_params(&sample());
        bytes[4] = 99; // version
        let err = decode_params(&bytes).unwrap_err();
        assert!(err.to_string().contains("version 99"));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_params(&sample());
        bytes.push(0);
        let err = decode_params(&bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn empty_layers_round_trip() {
        // Zero-length layers are legal (e.g. a bias-free layer slot) and
        // must survive next to populated ones.
        let p = ModelParams::from_layers(vec![
            LayerParams::from_values(vec![]),
            LayerParams::from_values(vec![1.5]),
            LayerParams::from_values(vec![]),
        ]);
        let bytes = encode_params(&p);
        assert_eq!(bytes.len(), encoded_len(&p.signature()));
        assert_eq!(decode_params(&bytes).unwrap(), p);
    }

    #[test]
    fn large_layer_round_trips_at_size_edge() {
        // One deliberately large layer (64 Ki scalars ≈ 256 KiB on the
        // wire) — the biggest single allocation the tests exercise.
        let n = 1 << 16;
        let values: Vec<f32> = (0..n).map(|i| i as f32 * 0.5 - 1000.0).collect();
        let p = ModelParams::from_layers(vec![
            LayerParams::from_values(values),
            LayerParams::from_values(vec![]),
        ]);
        let bytes = encode_params(&p);
        assert_eq!(bytes.len(), encoded_len(&p.signature()));
        assert_eq!(decode_params(&bytes).unwrap(), p);
    }

    #[test]
    fn implausible_layer_count_is_rejected_without_allocating() {
        // A header advertising u32::MAX layers with no payload must be
        // rejected by the sanity bound, not die attempting a huge reserve.
        let mut bytes = Vec::new();
        bytes.put_u32(MAGIC);
        bytes.put_u8(VERSION);
        bytes.put_u32(u32::MAX);
        let err = decode_params(&bytes).unwrap_err();
        assert!(err.to_string().contains("implausible"));
    }

    #[test]
    fn single_layer_round_trips_bit_exactly() {
        for values in [vec![], vec![1.5f32], vec![f32::MAX, -0.0, 3.25]] {
            let layer = LayerParams::from_values(values);
            let bytes = encode_layer(&layer);
            assert_eq!(bytes.len(), encoded_layer_len(layer.len()));
            assert_eq!(decode_layer(&bytes).unwrap(), layer);
        }
    }

    #[test]
    fn single_layer_truncation_and_trailing_are_rejected() {
        let layer = LayerParams::from_values(vec![1.0, 2.0]);
        let bytes = encode_layer(&layer);
        for cut in 0..bytes.len() {
            assert!(decode_layer(&bytes[..cut]).is_err(), "truncation at {cut}");
        }
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode_layer(&extra)
            .unwrap_err()
            .to_string()
            .contains("trailing"));
    }

    #[test]
    fn params_digest_is_stable_and_bit_sensitive() {
        let p = sample();
        assert_eq!(params_digest(&p), params_digest(&sample()));
        let mut other = sample();
        other.layer_mut(0).unwrap().values_mut()[0] += 1.0;
        assert_ne!(params_digest(&p), params_digest(&other));
        // -0.0 and +0.0 compare equal but encode differently — the digest
        // follows the bytes, which is what content-stripping relies on.
        let neg = ModelParams::from_layers(vec![LayerParams::from_values(vec![-0.0])]);
        let pos = ModelParams::from_layers(vec![LayerParams::from_values(vec![0.0])]);
        assert_ne!(params_digest(&neg), params_digest(&pos));
    }

    #[test]
    fn layer_digest_is_stable_and_bit_sensitive() {
        let a = LayerParams::from_values(vec![1.0, 2.5]);
        assert_eq!(layer_digest(&a), layer_digest(&a.clone()));
        let b = LayerParams::from_values(vec![1.0, 2.500001]);
        assert_ne!(layer_digest(&a), layer_digest(&b));
        // A layer's digest matches the digest of the same bytes wherever
        // they travel — the property cover stripping relies on.
        assert_eq!(
            layer_digest(&a),
            mixnn_crypto::sha256::digest(&encode_layer(&a))
        );
    }

    #[test]
    fn nan_and_special_values_survive() {
        let p = ModelParams::from_layers(vec![LayerParams::from_values(vec![
            f32::INFINITY,
            f32::NEG_INFINITY,
            -0.0,
        ])]);
        let d = decode_params(&encode_params(&p)).unwrap();
        let v = d.layer(0).unwrap().values();
        assert_eq!(v[0], f32::INFINITY);
        assert_eq!(v[1], f32::NEG_INFINITY);
        assert!(v[2] == 0.0 && v[2].is_sign_negative());
    }
}
