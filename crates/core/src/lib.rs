//! **MixNN** — the paper's contribution: a proxy that mixes neural-network
//! layers between federated-learning participants before they reach the
//! aggregation server.
//!
//! # How it works
//!
//! Participants send their per-layer model updates to the proxy instead of
//! the server, encrypted to the proxy's (simulated) SGX enclave. The proxy
//! reshuffles **whole layers across participants** — the update forwarded
//! in slot *i* contains layer 1 from one participant, layer 2 from another,
//! and so on — then forwards the mixed updates. Because FedAvg averages
//! each layer across all updates and the mix is a per-layer permutation,
//! **the aggregated global model is bit-for-bit identical** to classic FL
//! (§4.2 of the paper; encoded here as tests and properties). What changes
//! is that no forwarded update is the gradient of any single participant,
//! which destroys the per-user fingerprint that attribute-inference attacks
//! like ∇Sim exploit.
//!
//! # Crate layout
//!
//! * [`BatchMixer`] / [`StreamingMixer`] — the two mixing strategies: the
//!   paper's formal L=C batch construction, and the §4.3 streaming
//!   algorithm with per-layer lists of size `k`;
//! * [`MixnnProxy`] — the deployed object: enclave-resident, attested,
//!   decrypts sealed updates, mixes, exposes §6.5-style cost statistics;
//!   ingest is split into a stateless decrypt/decode stage and a
//!   serialized store stage;
//! * [`ParallelIngest`] — fans the stateless ingest stage across worker
//!   threads (decryption dominates §6.5's budget and is per-update
//!   independent), bit-identical to sequential ingest at any worker count;
//! * [`Parallelism`] / [`map_chunked`] — the workspace's shared
//!   concurrency core (worker knobs and the order-preserving bounded
//!   worker pool), re-exported by `mixnn_fl` under its historical path;
//! * [`MixnnTransport`] — plugs the proxy into the `mixnn-fl` round loop
//!   (the `UpdateTransport` impl itself lives in `mixnn_fl`, which depends
//!   on this crate);
//! * [`codec`] — the serialized update wire format.
//!
//! # Quickstart
//!
//! ```
//! use mixnn_core::{MixingStrategy, MixnnProxy, MixnnProxyConfig, MixnnTransport};
//! use mixnn_enclave::AttestationService;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), mixnn_core::ProxyError> {
//! let mut rng = StdRng::seed_from_u64(0);
//! let attestation = AttestationService::new(&mut rng);
//! let config = MixnnProxyConfig {
//!     expected_signature: vec![6, 4], // two layers: 6 and 4 parameters
//!     ..MixnnProxyConfig::default()
//! };
//! let proxy = MixnnProxy::launch(config, &attestation, &mut rng);
//!
//! // Participants verify the enclave before trusting it:
//! assert!(proxy.verify_against(&attestation));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod codec;
mod error;
mod ingest;
mod link;
mod mixer;
mod parallel;
mod proxy;
mod transport;

pub use error::ProxyError;
pub use ingest::ParallelIngest;
pub use link::{Endpoint, InProcessLink, LinkError, RoundLink};
pub use mixer::{shard_seed, BatchMixer, MixPlan, MixingStrategy, StreamingMixer};
pub use parallel::{map_chunked, map_chunked_batched, Parallelism};
pub use proxy::{MixnnProxy, MixnnProxyConfig, ProxyStats, StagedUpdate};
pub use transport::{MixnnTransport, TransportMode};
