//! Plugging the proxy into the federated round loop.

use crate::codec::CompressionConfig;
use crate::{codec, MixingStrategy, MixnnProxy, ParallelIngest, ProxyError};
use mixnn_crypto::SealedBox;
use mixnn_nn::ModelParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Whether the transport exercises the full cryptographic pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportMode {
    /// Participants seal updates to the enclave key; the proxy decrypts
    /// inside the enclave (full §4 pipeline — what the §6.5 benches
    /// measure).
    Encrypted,
    /// Updates enter the proxy unencrypted. Mixing semantics are
    /// identical; use for large parameter sweeps where sealing every
    /// update would dominate runtime without affecting the result.
    Plaintext,
}

/// Routes each round's updates through a [`MixnnProxy`].
///
/// In the federated loop this serves as an `UpdateTransport` (the trait
/// impl lives in `mixnn_fl`, which depends on this crate): the observed
/// updates keep the **slot ids** of the incoming ones (the server still
/// sees one connection per participant slot); their *contents* are the
/// mixed updates. With batch mixing this is exactly the paper's
/// deployment: the server receives C updates it cannot attribute.
///
/// # Example
///
/// ```
/// use mixnn_core::{MixnnProxy, MixnnProxyConfig, MixnnTransport, TransportMode};
/// use mixnn_enclave::AttestationService;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let service = AttestationService::new(&mut rng);
/// let proxy = MixnnProxy::launch(MixnnProxyConfig::default(), &service, &mut rng);
/// let transport = MixnnTransport::new(proxy, TransportMode::Encrypted, 1);
/// assert!(transport.proxy().stats().updates_received == 0);
/// ```
#[derive(Debug)]
pub struct MixnnTransport {
    proxy: MixnnProxy,
    mode: TransportMode,
    compression: CompressionConfig,
    /// RNG standing in for the participants' sealing entropy.
    participant_rng: StdRng,
}

impl MixnnTransport {
    /// Wraps a launched proxy.
    pub fn new(proxy: MixnnProxy, mode: TransportMode, seed: u64) -> Self {
        MixnnTransport {
            proxy,
            mode,
            compression: CompressionConfig::F32,
            participant_rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Sets the wire compression participants encode with before sealing.
    /// Round-wide, like the mixing strategy: every participant of a round
    /// must share it or envelope sizes become a fingerprint.
    #[must_use]
    pub fn with_compression(mut self, compression: CompressionConfig) -> Self {
        self.compression = compression;
        self
    }

    /// The wire compression this transport seals with.
    pub fn compression(&self) -> CompressionConfig {
        self.compression
    }

    /// Access to the proxy (stats, memory, last plan).
    pub fn proxy(&self) -> &MixnnProxy {
        &self.proxy
    }

    /// The configured mode.
    pub fn mode(&self) -> TransportMode {
        self.mode
    }

    /// Runs one proxy round over plain parameters, returning the mixed
    /// updates in slot order — the transport core `mixnn_fl`'s
    /// `UpdateTransport` impl (and any other caller) builds on.
    ///
    /// # Errors
    ///
    /// Propagates the proxy's rejection of any update in the round.
    pub fn relay_round(
        &mut self,
        params: Vec<ModelParams>,
    ) -> Result<Vec<ModelParams>, ProxyError> {
        let mixed: Vec<ModelParams> = match self.mode {
            TransportMode::Plaintext => self.proxy.mix_plaintext_round(params)?,
            TransportMode::Encrypted => {
                // Sealing stays serialized (one RNG stands in for all
                // participants' entropy); ingest fans out across the
                // proxy's configured worker count, with the store stage
                // committed in submission order — same result as the
                // sequential loop at every worker count.
                let sealed: Vec<Vec<u8>> = params
                    .iter()
                    .map(|p| {
                        SealedBox::seal(
                            &codec::encode_params_with(p, self.compression),
                            self.proxy.public_key(),
                            &mut self.participant_rng,
                        )
                        .expect("attested enclave keys are never low-order")
                    })
                    .collect();
                let ingest = ParallelIngest::from_parallelism(self.proxy.parallelism());
                let mut streamed = Vec::new();
                for result in ingest.submit_all(&mut self.proxy, &sealed) {
                    if let Some(out) = result? {
                        streamed.push(out);
                    }
                }
                match self.proxy.strategy() {
                    MixingStrategy::Batch => self.proxy.mix_batch()?,
                    MixingStrategy::Streaming { .. } => {
                        // Within a round the proxy drains its lists so the
                        // server aggregates exactly C updates (L = C).
                        streamed.extend(self.proxy.flush()?);
                        streamed
                    }
                }
            }
        };

        Ok(mixed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MixnnProxyConfig;
    use mixnn_enclave::AttestationService;
    use mixnn_nn::LayerParams;

    // Slot preservation and the `UpdateTransport` impl itself are covered
    // in `mixnn_fl::transport` (which hosts the impl); these tests pin the
    // round core.

    fn updates(c: usize) -> Vec<ModelParams> {
        (0..c)
            .map(|i| {
                ModelParams::from_layers(vec![
                    LayerParams::from_values(vec![i as f32; 2]),
                    LayerParams::from_values(vec![-(i as f32); 3]),
                ])
            })
            .collect()
    }

    fn transport(strategy: MixingStrategy, mode: TransportMode) -> MixnnTransport {
        let mut rng = StdRng::seed_from_u64(5);
        let service = AttestationService::new(&mut rng);
        let proxy = MixnnProxy::launch(
            MixnnProxyConfig {
                strategy,
                expected_signature: vec![2, 3],
                seed: 3,
                ..MixnnProxyConfig::default()
            },
            &service,
            &mut rng,
        );
        MixnnTransport::new(proxy, mode, 77)
    }

    #[test]
    fn encrypted_batch_preserves_aggregate_and_count() {
        let mut t = transport(MixingStrategy::Batch, TransportMode::Encrypted);
        let ins = updates(6);
        let outs = t.relay_round(ins.clone()).unwrap();
        assert_eq!(outs.len(), 6);
        assert_eq!(ModelParams::mean(&ins), ModelParams::mean(&outs));
    }

    #[test]
    fn plaintext_mode_matches_aggregate_too() {
        let mut t = transport(MixingStrategy::Batch, TransportMode::Plaintext);
        let ins = updates(5);
        let outs = t.relay_round(ins.clone()).unwrap();
        assert_eq!(ModelParams::mean(&ins), ModelParams::mean(&outs));
    }

    #[test]
    fn streaming_round_conserves_count() {
        let mut t = transport(MixingStrategy::Streaming { k: 2 }, TransportMode::Encrypted);
        let ins = updates(7);
        let outs = t.relay_round(ins.clone()).unwrap();
        assert_eq!(outs.len(), 7);
        // Multiset conservation implies the mean is preserved.
        assert_eq!(ModelParams::mean(&ins), ModelParams::mean(&outs));
    }

    #[test]
    fn updates_are_actually_mixed() {
        let mut t = transport(MixingStrategy::Batch, TransportMode::Encrypted);
        let ins = updates(8);
        let outs = t.relay_round(ins.clone()).unwrap();
        let changed = ins.iter().zip(&outs).filter(|(a, b)| a != b).count();
        assert!(changed > 0, "no update changed content after mixing");
    }
}
