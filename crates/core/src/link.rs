//! The wire-delivery trait surface between update-path stages.
//!
//! Every exchange on the MixNN update path moves a *round batch* — one
//! `Vec<u8>` wire blob per client slot, in slot order — between two
//! [`Endpoint`]s: the client population into the first proxy, proxy to
//! proxy along a cascade route, and the last proxy into the aggregation
//! server. [`RoundLink`] abstracts that segment delivery so the same
//! coordinator code drives rounds over an in-process call
//! ([`InProcessLink`]) or over a simulated network (`mixnn-net`'s
//! `SimLink`) — and so delivery failures (timeouts, dropped connections)
//! surface as typed [`LinkError`]s the cascade's failure policy can act
//! on.
//!
//! The contract that keeps network transport a pure *cost* knob, never a
//! semantics knob: a successful [`RoundLink::deliver`] returns exactly the
//! messages it was handed, byte-for-byte, **in their original order** —
//! the wire may delay, batch, fragment or reorder packets internally, but
//! reassembly restores the logical batch before the receiving stage sees
//! it (sequence-numbered frames, exactly like a TCP stream restores byte
//! order). Anything else is a failed delivery.

use std::error::Error;
use std::fmt;

/// A logical endpoint on the update path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// The client population (sender of the round's initial onions).
    Clients,
    /// Mixing proxy `hop` (cascade hop index; `Hop(0)` is the single
    /// proxy in a one-proxy deployment).
    Hop(usize),
    /// The aggregation server.
    Server,
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Clients => write!(f, "clients"),
            Endpoint::Hop(h) => write!(f, "hop {h}"),
            Endpoint::Server => write!(f, "server"),
        }
    }
}

/// A failed segment delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// Not every message of the batch arrived before the deadline —
    /// packets were lost or the link stalled past its timeout.
    Timeout {
        /// Sending endpoint of the failed segment.
        from: Endpoint,
        /// Receiving endpoint of the failed segment.
        to: Endpoint,
        /// Messages that did arrive in time.
        delivered: usize,
        /// Messages the batch carried.
        expected: usize,
    },
    /// The connection refused the batch outright (no route, closed peer,
    /// or a frame the receiver could not parse).
    Connection {
        /// Sending endpoint of the failed segment.
        from: Endpoint,
        /// Receiving endpoint of the failed segment.
        to: Endpoint,
        /// Human-readable failure description.
        reason: String,
    },
}

impl LinkError {
    /// The endpoint pair of the failed segment.
    pub fn segment(&self) -> (Endpoint, Endpoint) {
        match self {
            LinkError::Timeout { from, to, .. } | LinkError::Connection { from, to, .. } => {
                (*from, *to)
            }
        }
    }

    /// Whether the failure was a delivery timeout (lost or stalled
    /// packets) rather than an outright connection failure.
    pub fn is_timeout(&self) -> bool {
        matches!(self, LinkError::Timeout { .. })
    }
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Timeout {
                from,
                to,
                delivered,
                expected,
            } => write!(
                f,
                "delivery {from} -> {to} timed out: {delivered}/{expected} messages arrived"
            ),
            LinkError::Connection { from, to, reason } => {
                write!(f, "connection {from} -> {to} failed: {reason}")
            }
        }
    }
}

impl Error for LinkError {}

/// Delivery of one round batch between two update-path stages.
///
/// Implementations must be **order- and content-preserving on success**
/// (see the module docs); they are free to model any cost — latency,
/// queueing, framing — and to fail with a typed [`LinkError`] when the
/// wire loses or stalls the batch.
pub trait RoundLink {
    /// Delivers `messages` from `from` to `to`, returning the batch as
    /// the receiver observes it (equal to `messages` on success).
    ///
    /// # Errors
    ///
    /// Returns a [`LinkError`] when the batch does not arrive complete —
    /// lost packets, a stalled connection past its timeout, or a refused
    /// connection.
    fn deliver(
        &mut self,
        from: Endpoint,
        to: Endpoint,
        messages: Vec<Vec<u8>>,
    ) -> Result<Vec<Vec<u8>>, LinkError>;

    /// `true` when delivery is the identity at zero cost (no queueing, no
    /// mutable wire state), so callers may bypass per-segment delivery
    /// calls from concurrent workers without observable difference.
    /// Real network links return `false` (the default): their queue and
    /// clock state must observe segments in the canonical sequential
    /// order.
    fn is_transparent(&self) -> bool {
        false
    }
}

/// The in-process link: delivery is the identity function, the wire
/// costs nothing and never fails — the reference semantics every real
/// link must reproduce on its success path.
#[derive(Debug, Clone, Copy, Default)]
pub struct InProcessLink;

impl RoundLink for InProcessLink {
    fn deliver(
        &mut self,
        _from: Endpoint,
        _to: Endpoint,
        messages: Vec<Vec<u8>>,
    ) -> Result<Vec<Vec<u8>>, LinkError> {
        Ok(messages)
    }

    fn is_transparent(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_link_is_identity_and_transparent() {
        let mut link = InProcessLink;
        let batch = vec![vec![1u8, 2, 3], vec![4u8]];
        let out = link
            .deliver(Endpoint::Clients, Endpoint::Hop(0), batch.clone())
            .unwrap();
        assert_eq!(out, batch);
        assert!(link.is_transparent());
    }

    #[test]
    fn link_error_reports_segment_and_kind() {
        let e = LinkError::Timeout {
            from: Endpoint::Hop(1),
            to: Endpoint::Hop(2),
            delivered: 3,
            expected: 8,
        };
        assert!(e.is_timeout());
        assert_eq!(e.segment(), (Endpoint::Hop(1), Endpoint::Hop(2)));
        assert!(e.to_string().contains("3/8"));
        assert!(e.to_string().contains("hop 1"));

        let c = LinkError::Connection {
            from: Endpoint::Hop(0),
            to: Endpoint::Server,
            reason: "closed".into(),
        };
        assert!(!c.is_timeout());
        assert!(c.to_string().contains("server"));
    }

    #[test]
    fn endpoints_display() {
        assert_eq!(Endpoint::Clients.to_string(), "clients");
        assert_eq!(Endpoint::Hop(3).to_string(), "hop 3");
        assert_eq!(Endpoint::Server.to_string(), "server");
    }

    #[test]
    fn link_error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinkError>();
    }
}
