use mixnn_enclave::EnclaveError;
use std::error::Error;
use std::fmt;

/// Error type for the MixNN proxy.
#[derive(Debug, Clone, PartialEq)]
pub enum ProxyError {
    /// The enclave rejected an operation (decryption failure, memory
    /// exhaustion, …).
    Enclave(EnclaveError),
    /// An update could not be decoded from its wire format.
    Codec {
        /// Human-readable decode failure.
        reason: String,
    },
    /// The wire carried a codec version this build does not speak.
    /// Distinct from [`ProxyError::Codec`] so deployments rolling out a
    /// newer format can tell "peer is ahead of us" from "peer is sending
    /// garbage".
    UnsupportedCodecVersion {
        /// The version byte observed on the wire.
        version: u8,
    },
    /// An update's layer signature does not match the model this proxy was
    /// configured for.
    SignatureMismatch {
        /// Signature the proxy expects.
        expected: Vec<usize>,
        /// Signature observed in the update.
        actual: Vec<usize>,
    },
    /// Batch mixing requires at least as many updates as configured
    /// participants (the L = C assumption of §4.2).
    InsufficientUpdates {
        /// Updates available.
        have: usize,
        /// Updates required.
        need: usize,
    },
}

impl fmt::Display for ProxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProxyError::Enclave(e) => write!(f, "enclave failure in proxy: {e}"),
            ProxyError::Codec { reason } => write!(f, "malformed update on the wire: {reason}"),
            ProxyError::UnsupportedCodecVersion { version } => {
                write!(f, "unsupported codec version {version} on the wire")
            }
            ProxyError::SignatureMismatch { expected, actual } => write!(
                f,
                "update signature {actual:?} does not match proxy model {expected:?}"
            ),
            ProxyError::InsufficientUpdates { have, need } => {
                write!(f, "batch mixing needs {need} updates, got {have}")
            }
        }
    }
}

impl Error for ProxyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProxyError::Enclave(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EnclaveError> for ProxyError {
    fn from(e: EnclaveError) -> Self {
        ProxyError::Enclave(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enclave_error_converts_with_source() {
        let e: ProxyError = EnclaveError::MeasurementMismatch.into();
        assert!(e.source().is_some());
    }

    // The `From<ProxyError> for FlError` conversion moved to `mixnn_fl`
    // (this crate can no longer depend on it); its test lives there.

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProxyError>();
    }
}
