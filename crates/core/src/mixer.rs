//! The mixing algorithms.
//!
//! Mixing operates on [`ModelParams`] — one flat vector per trainable layer
//! — and never looks inside the vectors, so it is architecture-agnostic.
//!
//! Two strategies, matching the paper:
//!
//! * [`BatchMixer`] — the formal §4.2 construction: the proxy waits for all
//!   `C` participants, then emits `L = C` mixed updates described by a
//!   matrix `M` in which every (participant, layer) pair appears **exactly
//!   once**, each column (layer) is a permutation, and each row (outgoing
//!   update) draws every layer from a **different** participant.
//! * [`StreamingMixer`] — the §4.3 implementation: one list of size `k` per
//!   layer; after warm-up, each incoming update obliviously swaps a random
//!   element out of every list, and the extracted elements form the
//!   outgoing update.
//!
//! Both conserve the per-layer multiset of updates, which is exactly why
//! FedAvg aggregation is unaffected.
//!
//! # Sharding
//!
//! The §4.2 plan treats each layer's column independently, so applying a
//! plan (and streaming-swapping the per-layer lists) is embarrassingly
//! parallel **across layers**. Both mixers therefore accept a shard count:
//! layers are partitioned into contiguous shard tasks run on scoped
//! threads. Randomness is derived per layer ([`shard_seed`]) rather than
//! drawn from one serial stream, so the output is bit-identical at every
//! shard count — including 1 — for a fixed seed.

use crate::parallel::{map_chunked, Parallelism};
use crate::ProxyError;
use mixnn_enclave::ObliviousBuffer;
use mixnn_nn::{LayerParams, ModelParams};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Below this many scalar touches per push (`total parameters x k`, the
/// cost of the oblivious scans), a streaming push runs its swap pass
/// inline: the work would not repay a thread spawn/join.
const STREAM_SHARD_MIN_WORK: usize = 1 << 16;

/// Deterministic per-layer seed derivation (SplitMix64-style): shard `l`
/// of a mixer seeded with `seed` always draws from the same stream, no
/// matter how layers are partitioned onto worker threads.
pub fn shard_seed(seed: u64, layer: usize) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(layer as u64 + 1))
        .wrapping_add(0xa076_1d64_78bd_642f);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Which mixing algorithm a proxy runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MixingStrategy {
    /// Wait for all `C` participants, then mix with a Latin-rectangle plan
    /// (the paper's L = C assumption; used for the main experiments).
    #[default]
    Batch,
    /// Streaming lists of size `k` (the paper's §4.3 implementation).
    Streaming {
        /// Per-layer list capacity (the paper's `k`).
        k: usize,
    },
}

/// A concrete mixing assignment: `assignments[l][i]` is the index of the
/// participant whose layer `l` goes into outgoing update `i`.
///
/// The paper's matrix `M` transposed into per-layer rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixPlan {
    assignments: Vec<Vec<usize>>,
    participants: usize,
}

impl MixPlan {
    /// Builds a plan satisfying **both** §4.2 conditions:
    /// every column (fixed layer, across outputs) is a permutation of the
    /// participants, and every row (fixed output, across layers) uses
    /// pairwise-distinct participants.
    ///
    /// Construction: pick a random participant relabelling σ, a random
    /// output relabelling τ, and `layers` **distinct** offsets `o_l`; then
    /// `assignments[l][i] = σ((τ(i) + o_l) mod c)`. Distinct offsets give
    /// row-distinctness; modular shifts of a permutation give
    /// column-bijectivity.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::InsufficientUpdates`] when `layers >
    /// participants` (row-distinctness is then impossible — there are more
    /// layers than distinct participants to draw from).
    pub fn latin(participants: usize, layers: usize, rng: &mut StdRng) -> Result<Self, ProxyError> {
        if participants == 0 || layers > participants {
            return Err(ProxyError::InsufficientUpdates {
                have: participants,
                need: layers.max(1),
            });
        }
        let mut sigma: Vec<usize> = (0..participants).collect();
        sigma.shuffle(rng);
        let mut tau: Vec<usize> = (0..participants).collect();
        tau.shuffle(rng);
        let mut offsets: Vec<usize> = (0..participants).collect();
        offsets.shuffle(rng);
        offsets.truncate(layers);

        let assignments = offsets
            .iter()
            .map(|&o| {
                (0..participants)
                    .map(|i| sigma[(tau[i] + o) % participants])
                    .collect()
            })
            .collect();
        Ok(MixPlan {
            assignments,
            participants,
        })
    }

    /// Builds a plan with an independent uniform permutation per layer.
    ///
    /// Column-bijective (so still utility-equivalent) but rows may repeat a
    /// participant by chance. Used as a fallback when a model has more
    /// layers than there are participants, and as an ablation baseline.
    pub fn independent(participants: usize, layers: usize, rng: &mut StdRng) -> Self {
        let assignments = (0..layers)
            .map(|_| {
                let mut perm: Vec<usize> = (0..participants).collect();
                perm.shuffle(rng);
                perm
            })
            .collect();
        MixPlan {
            assignments,
            participants,
        }
    }

    /// The plan policy every mixing round in this workspace uses — the
    /// single proxy's `BatchMixer` and each cascade hop alike: the §4.2
    /// Latin construction when the model has no more layers than there are
    /// participants, otherwise the independent per-layer fallback (still
    /// column-bijective, so still utility-equivalent).
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::InsufficientUpdates`] for an empty round.
    pub fn for_round(
        participants: usize,
        layers: usize,
        rng: &mut StdRng,
    ) -> Result<Self, ProxyError> {
        if layers <= participants {
            Self::latin(participants, layers, rng)
        } else if participants == 0 {
            Err(ProxyError::InsufficientUpdates { have: 0, need: 1 })
        } else {
            Ok(Self::independent(participants, layers, rng))
        }
    }

    /// The degenerate identity plan (no mixing) — the classic-FL baseline
    /// expressed in the same machinery, for ablations.
    pub fn identity(participants: usize, layers: usize) -> Self {
        MixPlan {
            assignments: vec![(0..participants).collect(); layers],
            participants,
        }
    }

    /// Number of outgoing updates (equals participants).
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// Number of layers covered by the plan.
    pub fn layers(&self) -> usize {
        self.assignments.len()
    }

    /// Source participant for layer `l` of output `i`.
    pub fn source(&self, layer: usize, output: usize) -> Option<usize> {
        self.assignments.get(layer)?.get(output).copied()
    }

    /// Checks the §4.2 column condition: for every layer, the assignment
    /// across outputs is a permutation (each participant's layer used
    /// exactly once).
    pub fn is_column_bijective(&self) -> bool {
        self.assignments.iter().all(|col| {
            let mut seen = vec![false; self.participants];
            col.len() == self.participants
                && col.iter().all(|&p| {
                    if p >= self.participants || seen[p] {
                        false
                    } else {
                        seen[p] = true;
                        true
                    }
                })
        })
    }

    /// Checks the §4.2 row condition: every outgoing update draws each
    /// layer from a different participant.
    pub fn is_row_distinct(&self) -> bool {
        (0..self.participants).all(|i| {
            let mut seen = std::collections::HashSet::new();
            self.assignments.iter().all(|col| seen.insert(col[i]))
        })
    }

    /// Fraction of (output, layer) cells whose source differs from the
    /// identity plan — 0.0 means no mixing, values near `1 - 1/C` are
    /// typical for uniform plans. Used by the ablation benches.
    pub fn displacement(&self) -> f64 {
        let total = self.participants * self.assignments.len();
        if total == 0 {
            return 0.0;
        }
        let moved: usize = self
            .assignments
            .iter()
            .map(|col| col.iter().enumerate().filter(|&(i, &p)| i != p).count())
            .sum();
        moved as f64 / total as f64
    }

    /// Applies the plan: `out[i].layer[l] = updates[assignments[l][i]].layer[l]`.
    ///
    /// Equivalent to [`MixPlan::apply_sharded`] with one shard.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::InsufficientUpdates`] if the update count does
    /// not match the plan, or [`ProxyError::SignatureMismatch`] if the
    /// updates disagree on layer structure.
    pub fn apply(&self, updates: &[ModelParams]) -> Result<Vec<ModelParams>, ProxyError> {
        self.apply_sharded(updates, 1)
    }

    /// Applies the plan to opaque per-item rows, consuming them.
    ///
    /// `rows[p][l]` is participant `p`'s item for layer `l`; the output's
    /// `out[i][l]` is `rows[assignments[l][i]][l]`, **moved**, never
    /// cloned. The plan machinery only relocates things, so the same
    /// construction that mixes plaintext [`ModelParams`] serves the mix
    /// cascade, whose intermediate hops shuffle per-layer **ciphertext
    /// blobs** they cannot decrypt.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::InsufficientUpdates`] if the row count does
    /// not match the plan's participants, or
    /// [`ProxyError::SignatureMismatch`] if any row's length differs from
    /// the plan's layer count.
    pub fn apply_owned<T>(&self, rows: Vec<Vec<T>>) -> Result<Vec<Vec<T>>, ProxyError> {
        if rows.len() != self.participants {
            return Err(ProxyError::InsufficientUpdates {
                have: rows.len(),
                need: self.participants,
            });
        }
        let layers = self.assignments.len();
        for row in &rows {
            if row.len() != layers {
                return Err(ProxyError::SignatureMismatch {
                    expected: vec![layers],
                    actual: vec![row.len()],
                });
            }
        }
        let mut cells: Vec<Vec<Option<T>>> = rows
            .into_iter()
            .map(|row| row.into_iter().map(Some).collect())
            .collect();
        let outputs = (0..self.participants)
            .map(|i| {
                self.assignments
                    .iter()
                    .enumerate()
                    .map(|(l, col)| {
                        cells[col[i]][l]
                            .take()
                            .expect("plan columns are permutations (all constructors guarantee it)")
                    })
                    .collect()
            })
            .collect();
        Ok(outputs)
    }

    /// Applies the plan with up to `shards` parallel per-layer tasks.
    ///
    /// Each layer's output column depends only on that layer's assignment
    /// row and the (read-only) input updates, so layers are gathered in
    /// parallel and the result is **bit-identical at every shard count**.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MixPlan::apply`].
    pub fn apply_sharded(
        &self,
        updates: &[ModelParams],
        shards: usize,
    ) -> Result<Vec<ModelParams>, ProxyError> {
        if updates.len() != self.participants {
            return Err(ProxyError::InsufficientUpdates {
                have: updates.len(),
                need: self.participants,
            });
        }
        let signature = check_common_signature(updates)?;
        if signature.len() != self.assignments.len() {
            return Err(ProxyError::SignatureMismatch {
                expected: vec![self.assignments.len()],
                actual: vec![signature.len()],
            });
        }
        // Gather layer-major (one task per layer), then transpose into
        // outgoing updates by moving the gathered columns.
        let layer_indices: Vec<usize> = (0..self.assignments.len()).collect();
        let columns: Vec<Vec<LayerParams>> = map_chunked(&layer_indices, shards, |&l| {
            let col = &self.assignments[l];
            (0..self.participants)
                .map(|i| {
                    updates[col[i]]
                        .layer(l)
                        .expect("signature verified")
                        .clone()
                })
                .collect()
        });
        let mut column_iters: Vec<_> = columns.into_iter().map(Vec::into_iter).collect();
        let outputs = (0..self.participants)
            .map(|_| {
                ModelParams::from_layers(
                    column_iters
                        .iter_mut()
                        .map(|it| it.next().expect("column length equals participants"))
                        .collect(),
                )
            })
            .collect();
        Ok(outputs)
    }
}

/// Verifies all updates share one signature and returns it.
pub(crate) fn check_common_signature(updates: &[ModelParams]) -> Result<Vec<usize>, ProxyError> {
    let first = updates
        .first()
        .ok_or(ProxyError::InsufficientUpdates { have: 0, need: 1 })?;
    let signature = first.signature();
    for u in updates {
        if u.signature() != signature {
            return Err(ProxyError::SignatureMismatch {
                expected: signature,
                actual: u.signature(),
            });
        }
    }
    Ok(signature)
}

/// Batch (L = C) mixer: the proxy-side object that draws a fresh
/// [`MixPlan`] per round.
///
/// # Example
///
/// ```
/// use mixnn_core::BatchMixer;
/// use mixnn_nn::{LayerParams, ModelParams};
///
/// # fn main() -> Result<(), mixnn_core::ProxyError> {
/// let updates: Vec<ModelParams> = (0..4)
///     .map(|i| ModelParams::from_layers(vec![
///         LayerParams::from_values(vec![i as f32]),
///         LayerParams::from_values(vec![10.0 + i as f32]),
///     ]))
///     .collect();
/// let mut mixer = BatchMixer::new(7);
/// let (mixed, plan) = mixer.mix(&updates)?;
/// assert_eq!(mixed.len(), 4);
/// assert!(plan.is_column_bijective());
/// // Aggregation is unchanged:
/// assert_eq!(ModelParams::mean(&updates), ModelParams::mean(&mixed));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchMixer {
    rng: StdRng,
}

impl BatchMixer {
    /// Creates a batch mixer with a seeded RNG (the enclave's entropy).
    pub fn new(seed: u64) -> Self {
        BatchMixer {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Mixes one round of updates, returning the mixed updates and the plan
    /// used (the plan never leaves the enclave in a deployment; it is
    /// returned here for verification and experiments).
    ///
    /// Uses the Latin construction when the model has no more layers than
    /// there are participants, otherwise falls back to independent
    /// per-layer permutations. Equivalent to [`BatchMixer::mix_sharded`]
    /// with one shard.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::InsufficientUpdates`] for an empty round or
    /// [`ProxyError::SignatureMismatch`] for inconsistent updates.
    pub fn mix(
        &mut self,
        updates: &[ModelParams],
    ) -> Result<(Vec<ModelParams>, MixPlan), ProxyError> {
        self.mix_sharded(updates, 1)
    }

    /// Mixes one round with up to `shards` parallel per-layer gather tasks.
    ///
    /// Plan generation stays serialized (it is O(C + L) on the mixer's own
    /// RNG stream, so parallelizing it would buy nothing and cost
    /// reproducibility); only the plan *application* — the O(total
    /// parameters) copy — is sharded. The plan and the mixed updates are
    /// therefore bit-identical to [`BatchMixer::mix`] at every shard count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BatchMixer::mix`].
    pub fn mix_sharded(
        &mut self,
        updates: &[ModelParams],
        shards: usize,
    ) -> Result<(Vec<ModelParams>, MixPlan), ProxyError> {
        let signature = check_common_signature(updates)?;
        let plan = MixPlan::for_round(updates.len(), signature.len(), &mut self.rng)?;
        let mixed = plan.apply_sharded(updates, shards)?;
        Ok((mixed, plan))
    }
}

/// One layer's streaming state: its oblivious list and its own RNG stream.
///
/// Giving every layer an independent, deterministically derived RNG
/// (rather than drawing all layers' swap indices from one serial stream)
/// is what makes the per-layer shard tasks order-independent: however the
/// layers are partitioned onto threads, layer `l` always draws the same
/// index sequence.
#[derive(Debug)]
struct LayerShard {
    rng: StdRng,
    buffer: ObliviousBuffer<LayerParams>,
}

impl LayerShard {
    fn swap(&mut self, incoming: LayerParams, k: usize) -> LayerParams {
        let idx = self.rng.gen_range(0..k);
        self.buffer
            .sample_swap(idx, incoming)
            .expect("index drawn within capacity")
    }
}

/// Streaming mixer: the §4.3 algorithm with per-layer lists of size `k`
/// backed by [`ObliviousBuffer`]s (access-pattern hiding).
///
/// The first `k` updates fill the lists and produce no output; every
/// further update swaps a uniformly random element out of each list and the
/// extracted elements form the outgoing update. [`StreamingMixer::flush`]
/// drains the lists at shutdown so the layer multiset is conserved overall.
///
/// The per-layer lists are independent shards: with
/// [`StreamingMixer::with_shards`] the swap pass runs on up to that many
/// scoped threads, and because each layer owns its RNG stream (see
/// [`shard_seed`]) the emitted updates are bit-identical at every shard
/// count.
#[derive(Debug)]
pub struct StreamingMixer {
    k: usize,
    signature: Vec<usize>,
    warmup: Vec<ModelParams>,
    shards: Option<Vec<LayerShard>>,
    seed: u64,
    mix_shards: usize,
    // Promotions completed so far. Folded into the per-layer seed
    // derivation so that after a flush the next fill draws *fresh* index
    // streams: re-deriving the same streams every epoch would replay the
    // same swap pattern round after round — a silent privacy regression
    // for a proxy that persists across rounds.
    epoch: u64,
    received: u64,
    emitted: u64,
}

impl StreamingMixer {
    /// Creates a streaming mixer for models with the given layer signature.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or the signature is empty — a configuration
    /// bug, not a runtime condition.
    pub fn new(signature: Vec<usize>, k: usize, seed: u64) -> Self {
        assert!(k > 0, "list size k must be positive");
        assert!(!signature.is_empty(), "model must have at least one layer");
        StreamingMixer {
            k,
            signature,
            warmup: Vec::new(),
            shards: None,
            seed,
            mix_shards: 1,
            epoch: 0,
            received: 0,
            emitted: 0,
        }
    }

    /// Sets how many parallel per-layer shard tasks a push may use. Purely
    /// a throughput knob: outputs are identical at every setting.
    pub fn with_shards(mut self, mix_shards: usize) -> Self {
        self.mix_shards = mix_shards.max(1);
        self
    }

    /// The configured list size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The configured shard-task budget.
    pub fn mix_shards(&self) -> usize {
        self.mix_shards
    }

    /// Updates received so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Updates emitted so far (excluding flush).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Updates currently buffered in the lists.
    pub fn buffered(&self) -> usize {
        if self.shards.is_some() {
            self.k
        } else {
            self.warmup.len()
        }
    }

    /// Feeds one update into the lists. Returns `None` during warm-up,
    /// `Some(mixed update)` afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::SignatureMismatch`] if the update does not
    /// match the configured model.
    pub fn push(&mut self, update: ModelParams) -> Result<Option<ModelParams>, ProxyError> {
        if update.signature() != self.signature {
            return Err(ProxyError::SignatureMismatch {
                expected: self.signature.clone(),
                actual: update.signature(),
            });
        }
        self.received += 1;

        match &mut self.shards {
            None => {
                self.warmup.push(update);
                if self.warmup.len() == self.k {
                    // Lists are full: promote to per-layer shards, each
                    // with its own oblivious buffer and derived RNG.
                    let layers = self.signature.len();
                    let mut per_layer: Vec<Vec<LayerParams>> =
                        (0..layers).map(|_| Vec::with_capacity(self.k)).collect();
                    for u in self.warmup.drain(..) {
                        for (l, lp) in u.into_layers().into_iter().enumerate() {
                            per_layer[l].push(lp);
                        }
                    }
                    let epoch_seed = shard_seed(self.seed, self.epoch as usize);
                    self.epoch += 1;
                    self.shards = Some(
                        per_layer
                            .into_iter()
                            .enumerate()
                            .map(|(l, slots)| LayerShard {
                                rng: StdRng::seed_from_u64(shard_seed(epoch_seed, l)),
                                buffer: ObliviousBuffer::new(slots),
                            })
                            .collect(),
                    );
                }
                Ok(None)
            }
            Some(shards) => {
                let k = self.k;
                let mut workers = Parallelism::effective(self.mix_shards, shards.len());
                // Spawning threads costs more than a handful of small
                // swaps: only fan out when the per-push work (an O(k)
                // oblivious scan over every layer) is worth a spawn/join
                // round-trip. Depends only on the model, never on the
                // worker count, so determinism is unaffected.
                let total_params: usize = self.signature.iter().sum();
                if total_params * self.k < STREAM_SHARD_MIN_WORK {
                    workers = 1;
                }
                let outgoing: Vec<LayerParams> = if workers <= 1 {
                    shards
                        .iter_mut()
                        .zip(update.into_layers())
                        .map(|(shard, incoming)| shard.swap(incoming, k))
                        .collect()
                } else {
                    // Pair each shard with its incoming layer, then hand
                    // contiguous chunks of pairs to scoped workers; every
                    // shard's swap uses only its own RNG and buffer, so
                    // the partitioning is invisible in the output.
                    let mut pairs: Vec<(&mut LayerShard, Option<LayerParams>)> = shards
                        .iter_mut()
                        .zip(update.into_layers().into_iter().map(Some))
                        .collect();
                    let chunk = pairs.len().div_ceil(workers);
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = pairs
                            .chunks_mut(chunk)
                            .map(|c| {
                                scope.spawn(move || {
                                    c.iter_mut()
                                        .map(|(shard, slot)| {
                                            let incoming =
                                                slot.take().expect("layer consumed once");
                                            shard.swap(incoming, k)
                                        })
                                        .collect::<Vec<LayerParams>>()
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .flat_map(|h| h.join().expect("mix shard task panicked"))
                            .collect()
                    })
                };
                self.emitted += 1;
                Ok(Some(ModelParams::from_layers(outgoing)))
            }
        }
    }

    /// Drains the lists into final updates (position-wise), resetting the
    /// mixer to the warm-up state. Together with the streamed outputs this
    /// conserves the layer multiset exactly.
    pub fn flush(&mut self) -> Vec<ModelParams> {
        match self.shards.take() {
            Some(mut shards) => {
                let per_layer: Vec<Vec<LayerParams>> =
                    shards.iter_mut().map(|s| s.buffer.drain_clone()).collect();
                (0..self.k)
                    .map(|i| {
                        ModelParams::from_layers(per_layer.iter().map(|l| l[i].clone()).collect())
                    })
                    .collect()
            }
            None => {
                // Still warming up: emit what we have, unmixed pairing.
                std::mem::take(&mut self.warmup)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn updates(c: usize, layers: &[usize]) -> Vec<ModelParams> {
        (0..c)
            .map(|i| {
                ModelParams::from_layers(
                    layers
                        .iter()
                        .enumerate()
                        .map(|(l, &len)| LayerParams::from_values(vec![(i * 100 + l) as f32; len]))
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn latin_plan_satisfies_both_conditions() {
        let mut rng = StdRng::seed_from_u64(0);
        for (c, n) in [(5, 5), (8, 3), (20, 5), (3, 1)] {
            let plan = MixPlan::latin(c, n, &mut rng).unwrap();
            assert!(plan.is_column_bijective(), "c={c} n={n}");
            assert!(plan.is_row_distinct(), "c={c} n={n}");
        }
    }

    #[test]
    fn latin_rejects_more_layers_than_participants() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            MixPlan::latin(3, 4, &mut rng),
            Err(ProxyError::InsufficientUpdates { .. })
        ));
        assert!(MixPlan::latin(0, 1, &mut rng).is_err());
    }

    #[test]
    fn independent_plan_is_column_bijective() {
        let mut rng = StdRng::seed_from_u64(1);
        let plan = MixPlan::independent(6, 10, &mut rng);
        assert!(plan.is_column_bijective());
        assert_eq!(plan.layers(), 10);
    }

    #[test]
    fn identity_plan_does_not_mix() {
        let plan = MixPlan::identity(4, 3);
        assert!(plan.is_column_bijective());
        assert!(!plan.is_row_distinct()); // every row repeats one source
        assert_eq!(plan.displacement(), 0.0);
        let ups = updates(4, &[2, 3, 1]);
        assert_eq!(plan.apply(&ups).unwrap(), ups);
    }

    #[test]
    fn apply_moves_layers_according_to_plan() {
        let mut rng = StdRng::seed_from_u64(2);
        let ups = updates(5, &[2, 3]);
        let plan = MixPlan::latin(5, 2, &mut rng).unwrap();
        let mixed = plan.apply(&ups).unwrap();
        for (i, m) in mixed.iter().enumerate() {
            for l in 0..2 {
                let src = plan.source(l, i).unwrap();
                assert_eq!(m.layer(l), ups[src].layer(l));
            }
        }
    }

    #[test]
    fn apply_owned_matches_apply_on_layer_params() {
        let mut rng = StdRng::seed_from_u64(7);
        let ups = updates(6, &[2, 3, 1]);
        let plan = MixPlan::latin(6, 3, &mut rng).unwrap();
        let expected = plan.apply(&ups).unwrap();
        let rows: Vec<Vec<LayerParams>> = ups.into_iter().map(ModelParams::into_layers).collect();
        let moved = plan.apply_owned(rows).unwrap();
        let moved: Vec<ModelParams> = moved.into_iter().map(ModelParams::from_layers).collect();
        assert_eq!(expected, moved);
    }

    #[test]
    fn apply_owned_works_on_opaque_blobs() {
        // The cascade's use case: items the plan cannot interpret.
        let mut rng = StdRng::seed_from_u64(9);
        let plan = MixPlan::latin(4, 2, &mut rng).unwrap();
        let rows: Vec<Vec<Vec<u8>>> = (0..4)
            .map(|p| (0..2).map(|l| vec![p as u8, l as u8]).collect())
            .collect();
        let mixed = plan.apply_owned(rows).unwrap();
        for (i, out) in mixed.iter().enumerate() {
            for (l, blob) in out.iter().enumerate() {
                let src = plan.source(l, i).unwrap();
                assert_eq!(blob, &vec![src as u8, l as u8]);
            }
        }
    }

    #[test]
    fn apply_owned_rejects_bad_dimensions() {
        let mut rng = StdRng::seed_from_u64(10);
        let plan = MixPlan::latin(3, 2, &mut rng).unwrap();
        let too_few: Vec<Vec<u8>> = vec![vec![0, 1]; 2];
        assert!(matches!(
            plan.apply_owned(too_few),
            Err(ProxyError::InsufficientUpdates { .. })
        ));
        let ragged: Vec<Vec<u8>> = vec![vec![0, 1], vec![0, 1], vec![0]];
        assert!(matches!(
            plan.apply_owned(ragged),
            Err(ProxyError::SignatureMismatch { .. })
        ));
    }

    #[test]
    fn batch_mixer_preserves_aggregation_exactly() {
        let mut mixer = BatchMixer::new(3);
        let ups = updates(7, &[4, 2, 3]);
        let (mixed, plan) = mixer.mix(&ups).unwrap();
        assert!(plan.is_column_bijective());
        assert!(plan.is_row_distinct());
        // The theorem of §4.2: Agr(A) == Agr(B), bitwise.
        assert_eq!(ModelParams::mean(&ups), ModelParams::mean(&mixed));
    }

    #[test]
    fn batch_mixer_actually_mixes() {
        let mut mixer = BatchMixer::new(4);
        let ups = updates(10, &[2, 2, 2]);
        let (mixed, plan) = mixer.mix(&ups).unwrap();
        assert!(plan.displacement() > 0.0, "plan was the identity");
        assert_ne!(mixed, ups, "updates unchanged after mixing");
    }

    #[test]
    fn batch_mixer_falls_back_when_layers_exceed_participants() {
        let mut mixer = BatchMixer::new(5);
        let ups = updates(2, &[1, 1, 1, 1]); // 4 layers, 2 participants
        let (mixed, plan) = mixer.mix(&ups).unwrap();
        assert!(plan.is_column_bijective());
        assert_eq!(ModelParams::mean(&ups), ModelParams::mean(&mixed));
    }

    #[test]
    fn batch_mixer_rejects_mismatched_signatures() {
        let mut mixer = BatchMixer::new(6);
        let mut ups = updates(3, &[2, 2]);
        ups.push(ModelParams::from_layers(vec![LayerParams::from_values(
            vec![0.0],
        )]));
        assert!(matches!(
            mixer.mix(&ups),
            Err(ProxyError::SignatureMismatch { .. })
        ));
    }

    #[test]
    fn shard_seed_is_deterministic_and_layer_dependent() {
        assert_eq!(shard_seed(7, 3), shard_seed(7, 3));
        assert_ne!(shard_seed(7, 3), shard_seed(7, 4));
        assert_ne!(shard_seed(7, 3), shard_seed(8, 3));
    }

    #[test]
    fn sharded_batch_mix_matches_sequential_at_every_shard_count() {
        let ups = updates(9, &[4, 2, 3, 1]);
        let (seq, seq_plan) = BatchMixer::new(11).mix(&ups).unwrap();
        for shards in [2, 3, 4, 8, 16] {
            let (par, par_plan) = BatchMixer::new(11).mix_sharded(&ups, shards).unwrap();
            assert_eq!(seq, par, "shards={shards}");
            assert_eq!(seq_plan, par_plan, "shards={shards}");
        }
    }

    #[test]
    fn sharded_streaming_matches_sequential_at_every_shard_count() {
        let run = |shards: usize| {
            let mut mixer = StreamingMixer::new(vec![1, 2, 3], 4, 21).with_shards(shards);
            let mut out = Vec::new();
            for u in updates(12, &[1, 2, 3]) {
                if let Some(m) = mixer.push(u).unwrap() {
                    out.push(m);
                }
            }
            out.extend(mixer.flush());
            out
        };
        let sequential = run(1);
        for shards in [2, 3, 8] {
            assert_eq!(sequential, run(shards), "shards={shards}");
        }
    }

    #[test]
    fn streaming_epochs_draw_fresh_randomness_after_flush() {
        // A proxy persists across rounds and flushes between them; if each
        // re-fill replayed the same swap-index streams, one deanonymized
        // round would deanonymize them all. Feed the identical inputs to
        // consecutive epochs and require different emissions.
        let mut mixer = StreamingMixer::new(vec![1], 4, 3);
        let inputs = updates(16, &[1]);
        let mut epochs = Vec::new();
        for _ in 0..2 {
            let mut out = Vec::new();
            for u in inputs.clone() {
                if let Some(m) = mixer.push(u).unwrap() {
                    out.push(m);
                }
            }
            mixer.flush();
            epochs.push(out);
        }
        assert_eq!(epochs[0].len(), epochs[1].len());
        assert_ne!(
            epochs[0], epochs[1],
            "streaming epochs replayed the same swap pattern"
        );
    }

    #[test]
    fn streaming_warmup_emits_nothing() {
        let mut mixer = StreamingMixer::new(vec![2, 3], 4, 0);
        let ups = updates(4, &[2, 3]);
        for u in ups {
            assert!(mixer.push(u).unwrap().is_none());
        }
        assert_eq!(mixer.buffered(), 4);
    }

    #[test]
    fn streaming_emits_after_warmup_and_conserves_multiset() {
        let k = 3;
        let mut mixer = StreamingMixer::new(vec![1], k, 1);
        let ups = updates(10, &[1]);
        let mut out = Vec::new();
        for u in ups.clone() {
            if let Some(m) = mixer.push(u).unwrap() {
                out.push(m);
            }
        }
        assert_eq!(out.len(), 10 - k);
        out.extend(mixer.flush());
        assert_eq!(out.len(), 10);
        // Multiset conservation on the single layer.
        let mut sent: Vec<f32> = ups.iter().map(|u| u.flatten()[0]).collect();
        let mut got: Vec<f32> = out.iter().map(|u| u.flatten()[0]).collect();
        sent.sort_by(f32::total_cmp);
        got.sort_by(f32::total_cmp);
        assert_eq!(sent, got);
    }

    #[test]
    fn streaming_rejects_bad_signature() {
        let mut mixer = StreamingMixer::new(vec![2], 2, 0);
        let bad = ModelParams::from_layers(vec![LayerParams::from_values(vec![0.0; 3])]);
        assert!(matches!(
            mixer.push(bad),
            Err(ProxyError::SignatureMismatch { .. })
        ));
    }

    #[test]
    fn streaming_flush_during_warmup_returns_buffered() {
        let mut mixer = StreamingMixer::new(vec![1], 5, 0);
        mixer.push(updates(1, &[1]).pop().unwrap()).unwrap();
        let out = mixer.flush();
        assert_eq!(out.len(), 1);
        assert_eq!(mixer.buffered(), 0);
    }

    #[test]
    fn streaming_mixes_layers_across_participants() {
        // With 2 layers and enough traffic, some emitted update must
        // combine layers originating from different participants.
        let mut mixer = StreamingMixer::new(vec![1, 1], 4, 42);
        let ups = updates(30, &[1, 1]);
        let mut crossed = false;
        for u in ups {
            if let Some(m) = mixer.push(u).unwrap() {
                let flat = m.flatten();
                // Layer values encode participant: i*100 + layer.
                let p0 = (flat[0] as usize) / 100;
                let p1 = ((flat[1] as usize).saturating_sub(1)) / 100;
                if p0 != p1 {
                    crossed = true;
                }
            }
        }
        assert!(crossed, "streaming never crossed participants");
    }
}
