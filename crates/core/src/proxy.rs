//! The deployed MixNN proxy.
//!
//! # Pipeline stages
//!
//! Ingest is split into two stages so the expensive half can run on many
//! threads (§6.5: decryption is 0.17 s of the 0.19 s per-update budget):
//!
//! 1. [`MixnnProxy::ingest_stage`] — **stateless** per-update work:
//!    decrypt, decode, validate against a known signature and charge the
//!    EPC footprint. Takes `&self`; safe to call from any number of
//!    workers at once (see [`crate::ParallelIngest`]).
//! 2. [`MixnnProxy::commit_staged`] — **stateful** hand-off into the
//!    per-layer lists (or the batch buffer), stats accounting included.
//!    Takes `&mut self`; callers serialize commits in submission order,
//!    which is what keeps the parallel pipeline bit-identical to the
//!    sequential one.

use crate::mixer::check_common_signature;
use crate::parallel::Parallelism;
use crate::{codec, BatchMixer, MixPlan, MixingStrategy, ProxyError, StreamingMixer};
use mixnn_crypto::PublicKey;
use mixnn_enclave::{AttestationService, Enclave, EnclaveConfig, Measurement, Quote};
use mixnn_nn::ModelParams;
use mixnn_telemetry::{Component, Counter, Distribution, Span, Telemetry, TraceKind};
use rand::Rng;
use std::time::Instant;

/// Configuration of a MixNN proxy instance.
#[derive(Debug, Clone)]
pub struct MixnnProxyConfig {
    /// Mixing strategy (batch by default, matching the paper's formal
    /// model).
    pub strategy: MixingStrategy,
    /// Layer signature of the model being proxied. Empty = adopt the
    /// signature of the first update received (§4.3 notes the memory
    /// allocation "according to the considered neural network models \[is\]
    /// initialized at the creation of the enclave"; pre-configuring the
    /// signature is the faithful mode, inference is a convenience).
    pub expected_signature: Vec<usize>,
    /// Enclave settings (EPC limit, code identity).
    pub enclave: EnclaveConfig,
    /// RNG seed for mixing decisions inside the enclave.
    pub seed: u64,
    /// Worker/shard counts for the concurrent pipeline. The proxy consumes
    /// `ingest_workers` (decrypt/decode fan-out) and `mix_shards`
    /// (per-layer mixing tasks); results are identical at every setting.
    pub parallelism: Parallelism,
}

impl Default for MixnnProxyConfig {
    fn default() -> Self {
        MixnnProxyConfig {
            strategy: MixingStrategy::Batch,
            expected_signature: Vec::new(),
            enclave: EnclaveConfig::default(),
            seed: 0,
            parallelism: Parallelism::sequential(),
        }
    }
}

/// §6.5-style cost accounting for the proxy pipeline.
///
/// The paper reports per-update decryption (0.17 s), storage (0.02 s) and
/// mixing (0.03 s) times for its models; these counters regenerate that
/// breakdown for ours.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProxyStats {
    /// Encrypted updates received.
    pub updates_received: u64,
    /// Mixed updates forwarded to the server.
    pub updates_forwarded: u64,
    /// Updates rejected (bad ciphertext, wrong signature).
    pub updates_rejected: u64,
    /// Ciphertext bytes received.
    pub bytes_received: u64,
    /// Ciphertext bytes belonging to rejected updates (a subset of
    /// [`ProxyStats::bytes_received`]).
    pub bytes_rejected: u64,
    /// Total seconds spent decrypting.
    pub decrypt_seconds: f64,
    /// Total seconds spent decoding and storing into the layer lists.
    pub store_seconds: f64,
    /// Total seconds spent mixing.
    pub mix_seconds: f64,
}

impl ProxyStats {
    /// Adds another record into this one, field by field.
    ///
    /// Concurrent pipelines (the cascade's staged hop ingest and its
    /// route-group pool) accumulate per-stage deltas off to the side and
    /// merge them in a canonical order, so the counters stay identical to
    /// the sequential path at every worker count (the `*_seconds` fields
    /// are wall-clock and never deterministic).
    pub fn absorb(&mut self, other: &ProxyStats) {
        self.updates_received += other.updates_received;
        self.updates_forwarded += other.updates_forwarded;
        self.updates_rejected += other.updates_rejected;
        self.bytes_received += other.bytes_received;
        self.bytes_rejected += other.bytes_rejected;
        self.decrypt_seconds += other.decrypt_seconds;
        self.store_seconds += other.store_seconds;
        self.mix_seconds += other.mix_seconds;
    }

    /// Mean per-update decryption time in seconds.
    pub fn mean_decrypt_seconds(&self) -> f64 {
        if self.updates_received == 0 {
            0.0
        } else {
            self.decrypt_seconds / self.updates_received as f64
        }
    }

    /// Mean per-update store time in seconds.
    pub fn mean_store_seconds(&self) -> f64 {
        if self.updates_received == 0 {
            0.0
        } else {
            self.store_seconds / self.updates_received as f64
        }
    }

    /// Mean per-forwarded-update mixing time in seconds.
    pub fn mean_mix_seconds(&self) -> f64 {
        if self.updates_forwarded == 0 {
            0.0
        } else {
            self.mix_seconds / self.updates_forwarded as f64
        }
    }

    /// Total per-update processing time (decrypt + store), §6.5's "0.19 s"
    /// figure.
    pub fn mean_process_seconds(&self) -> f64 {
        self.mean_decrypt_seconds() + self.mean_store_seconds()
    }

    /// Accepted-update ingest rate over a measured wall-clock interval.
    ///
    /// The per-stage counters above are summed across workers, so under
    /// parallel ingest they exceed wall-clock; rates must therefore be
    /// computed against an externally measured `elapsed` (the throughput
    /// experiment times the whole ingest of a round).
    pub fn throughput_updates_per_sec(&self, elapsed_seconds: f64) -> f64 {
        if elapsed_seconds <= 0.0 {
            0.0
        } else {
            self.updates_received as f64 / elapsed_seconds
        }
    }
}

/// The outcome of the stateless ingest stage for one sealed update:
/// decrypted, decoded, (where possible) validated, and charged against the
/// EPC budget. Produced by [`MixnnProxy::ingest_stage`] and consumed in
/// submission order by [`MixnnProxy::commit_staged`].
#[derive(Debug)]
pub struct StagedUpdate {
    params: ModelParams,
    footprint: usize,
    decrypt_seconds: f64,
    decode_seconds: f64,
}

impl StagedUpdate {
    /// The decoded update's layer signature.
    pub fn signature(&self) -> Vec<usize> {
        self.params.signature()
    }

    /// EPC bytes charged for this update while it sits in the lists.
    pub fn footprint(&self) -> usize {
        self.footprint
    }
}

/// The MixNN proxy: an enclave-resident service that receives encrypted
/// per-layer model updates, mixes layers across participants and forwards
/// the mixed updates to the aggregation server.
///
/// See the crate docs for the privacy argument. The proxy's public surface
/// mirrors a deployment: participants fetch [`MixnnProxy::quote`] and
/// [`MixnnProxy::public_key`], verify, then submit sealed updates via
/// [`MixnnProxy::submit_encrypted`] (or in bulk through
/// [`crate::ParallelIngest`]); the server-facing side emits mixed updates.
#[derive(Debug)]
pub struct MixnnProxy {
    enclave: Enclave,
    expected_measurement: Measurement,
    strategy: MixingStrategy,
    signature: Vec<usize>,
    batch_buffer: Vec<ModelParams>,
    batch_mixer: BatchMixer,
    streaming: Option<StreamingMixer>,
    last_plan: Option<MixPlan>,
    stats: ProxyStats,
    seed: u64,
    parallelism: Parallelism,
    telemetry: Telemetry,
}

impl MixnnProxy {
    /// Launches the proxy inside a fresh enclave and obtains its
    /// attestation quote.
    pub fn launch<R: Rng + ?Sized>(
        config: MixnnProxyConfig,
        attestation: &AttestationService,
        rng: &mut R,
    ) -> Self {
        let expected_measurement = Enclave::expected_measurement(&config.enclave);
        let enclave = Enclave::launch(config.enclave, attestation, rng);
        let streaming = match config.strategy {
            MixingStrategy::Streaming { k } if !config.expected_signature.is_empty() => Some(
                StreamingMixer::new(
                    config.expected_signature.clone(),
                    k,
                    Self::streaming_seed(config.seed),
                )
                .with_shards(config.parallelism.mix_shards),
            ),
            _ => None,
        };
        MixnnProxy {
            enclave,
            expected_measurement,
            strategy: config.strategy,
            signature: config.expected_signature,
            batch_buffer: Vec::new(),
            batch_mixer: BatchMixer::new(config.seed),
            streaming,
            last_plan: None,
            stats: ProxyStats::default(),
            seed: config.seed,
            parallelism: config.parallelism,
            telemetry: mixnn_telemetry::noop(),
        }
    }

    /// Attaches a telemetry registry. Hooks are always wired (the default
    /// handle is the shared no-op registry); counters fire only from
    /// serialized accounting paths, so recorded values are independent of
    /// the [`Parallelism`] knobs.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The attached telemetry handle (the no-op registry by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The enclave public key participants encrypt to (`k_pub`).
    pub fn public_key(&self) -> &PublicKey {
        self.enclave.public_key()
    }

    /// The enclave's attestation quote.
    pub fn quote(&self) -> &Quote {
        self.enclave.quote()
    }

    /// The configured mixing strategy.
    pub fn strategy(&self) -> MixingStrategy {
        self.strategy
    }

    /// The configured pipeline worker/shard counts.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Full participant-side verification: the quote is signed by the
    /// platform, attests the expected code, and binds this proxy's public
    /// key.
    pub fn verify_against(&self, attestation: &AttestationService) -> bool {
        attestation.verify_quote(self.quote(), &self.expected_measurement)
            && self.enclave.quote_binds_key()
    }

    /// Cost statistics (the §6.5 numbers).
    pub fn stats(&self) -> ProxyStats {
        self.stats
    }

    /// Enclave memory statistics (per-update consumption, high-water mark).
    pub fn memory_stats(&self) -> mixnn_enclave::MemoryStats {
        self.enclave.memory().stats()
    }

    /// The mixing plan of the most recent **batch** round — the one drawn
    /// by [`MixnnProxy::mix_batch`] or [`MixnnProxy::mix_plaintext_round`]
    /// — for experiments and audits (never exposed in a deployment).
    ///
    /// Streaming emission and [`MixnnProxy::flush`] never produce a
    /// [`MixPlan`] (the §4.3 algorithm has no round-level matrix), so in
    /// streaming mode this stays `None` / stays at the last batch plan.
    pub fn last_plan(&self) -> Option<&MixPlan> {
        self.last_plan.as_ref()
    }

    /// Updates currently buffered inside the enclave.
    pub fn buffered(&self) -> usize {
        if let Some(streaming) = &self.streaming {
            streaming.buffered()
        } else {
            self.batch_buffer.len()
        }
    }

    fn check_signature(&mut self, params: &ModelParams) -> Result<(), ProxyError> {
        if self.signature.is_empty() {
            self.signature = params.signature();
            if let MixingStrategy::Streaming { k } = self.strategy {
                self.streaming = Some(
                    StreamingMixer::new(self.signature.clone(), k, Self::streaming_seed(self.seed))
                        .with_shards(self.parallelism.mix_shards),
                );
            }
            return Ok(());
        }
        if params.signature() != self.signature {
            return Err(ProxyError::SignatureMismatch {
                expected: self.signature.clone(),
                actual: params.signature(),
            });
        }
        Ok(())
    }

    /// Seed of the streaming mixer's per-layer RNG streams, derived from
    /// the proxy's configured seed so a mixer bound late (signature adopted
    /// from the first update) draws exactly the same streams as one
    /// configured up front.
    fn streaming_seed(seed: u64) -> u64 {
        seed ^ 0x57
    }

    /// Ingests one encrypted update. In batch mode it is buffered until
    /// [`MixnnProxy::mix_batch`]; in streaming mode a mixed update may be
    /// emitted immediately.
    ///
    /// The plaintext is charged against the enclave's EPC budget while
    /// buffered. Equivalent to [`MixnnProxy::ingest_stage`] followed by
    /// [`MixnnProxy::commit_staged`].
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::Enclave`] for decryption/memory failures,
    /// [`ProxyError::Codec`] for malformed plaintext and
    /// [`ProxyError::SignatureMismatch`] for foreign models. Rejected
    /// updates are counted and leave the proxy state unchanged.
    pub fn submit_encrypted(&mut self, sealed: &[u8]) -> Result<Option<ModelParams>, ProxyError> {
        let staged = self.ingest_stage(sealed);
        self.commit_staged(sealed.len(), staged)
    }

    /// Stage 1 of ingest: decrypt, decode, validate against the configured
    /// signature (when one is known) and charge the update's EPC
    /// footprint. **Stateless** — takes `&self` and touches only the
    /// enclave's atomic memory accounting, so any number of workers may
    /// run it concurrently on different sealed updates.
    ///
    /// The returned [`StagedUpdate`] owns its EPC charge; it must be handed
    /// to [`MixnnProxy::commit_staged`] (which stores it or releases the
    /// charge on rejection).
    ///
    /// # Errors
    ///
    /// Same conditions as [`MixnnProxy::submit_encrypted`], except that a
    /// signature mismatch can also surface later, in the commit stage, when
    /// the proxy infers its signature from the first committed update.
    pub fn ingest_stage(&self, sealed: &[u8]) -> Result<StagedUpdate, ProxyError> {
        let t0 = Instant::now();
        let plaintext = self.enclave.decrypt(sealed)?;
        let decrypt_seconds = t0.elapsed().as_secs_f64();
        self.stage_plaintext(&plaintext, decrypt_seconds)
    }

    /// Batched stage 1: opens every sealed update with the enclave's
    /// batched kernels (one X25519 pass over the whole batch), then stages
    /// each plaintext in submission order.
    ///
    /// Element-wise equivalent to calling [`MixnnProxy::ingest_stage`] on
    /// each update: the EPC operations of each item — transient decrypt
    /// charge, then footprint allocation — are replayed in the same
    /// per-item order, so accept/reject patterns under tight budgets match
    /// the sequential path exactly. Each result must still go through
    /// [`MixnnProxy::commit_staged`].
    pub fn ingest_stage_batch<T: AsRef<[u8]>>(
        &self,
        sealed: &[T],
    ) -> Vec<Result<StagedUpdate, ProxyError>> {
        let t0 = Instant::now();
        let opened = self.enclave.open_batch(sealed);
        // The batch shares one decryption pass; attribute it evenly.
        let decrypt_seconds = t0.elapsed().as_secs_f64() / sealed.len().max(1) as f64;
        opened
            .into_iter()
            .zip(sealed)
            .map(|(opened, sealed)| {
                let plaintext = self.enclave.charge_opened(sealed.as_ref().len(), opened)?;
                self.stage_plaintext(&plaintext, decrypt_seconds)
            })
            .collect()
    }

    /// Decode + validate + footprint-charge shared by the scalar and
    /// batched stage-1 paths.
    fn stage_plaintext(
        &self,
        plaintext: &[u8],
        decrypt_seconds: f64,
    ) -> Result<StagedUpdate, ProxyError> {
        let t1 = Instant::now();
        // With a configured signature, decode through the expecting path:
        // the declared geometry is pinned to the signature before any
        // value buffer is allocated, so a crafted header cannot name an
        // allocation the round never authorized.
        let params = if self.signature.is_empty() {
            codec::decode_params(plaintext)?
        } else {
            codec::decode_params_expecting(plaintext, &self.signature)?
        };
        // Charge the decoded update against the EPC while it sits in a
        // list (4 bytes per scalar, as in §6.5's per-update footprint).
        let footprint = params.total_len() * std::mem::size_of::<f32>();
        self.enclave.memory().allocate(footprint)?;
        Ok(StagedUpdate {
            params,
            footprint,
            decrypt_seconds,
            decode_seconds: t1.elapsed().as_secs_f64(),
        })
    }

    /// Stage 2 of ingest: the serialized hand-off of a staged update into
    /// the mixing state, plus all stats accounting. `sealed_len` is the
    /// ciphertext length of the corresponding submission (stats count it
    /// whether or not the update was accepted, as the sequential path
    /// always has).
    ///
    /// Accepts the stage-1 *result* so rejected updates flow through the
    /// same accounting: pass the error through and it is counted (and its
    /// ciphertext bytes recorded in [`ProxyStats::bytes_rejected`]).
    ///
    /// # Errors
    ///
    /// Propagates the staged error, or returns
    /// [`ProxyError::SignatureMismatch`] when signature inference rejects
    /// the update at commit time; either way the EPC charge is released and
    /// the proxy state is unchanged.
    pub fn commit_staged(
        &mut self,
        sealed_len: usize,
        staged: Result<StagedUpdate, ProxyError>,
    ) -> Result<Option<ModelParams>, ProxyError> {
        self.stats.bytes_received += sealed_len as u64;
        let staged = match staged {
            Ok(staged) => staged,
            Err(e) => {
                self.stats.updates_rejected += 1;
                self.stats.bytes_rejected += sealed_len as u64;
                self.telemetry.incr(Counter::CoreUpdatesRejected, 1);
                return Err(e);
            }
        };
        // The staged result only exists if the sealed envelope opened.
        self.telemetry.incr(Counter::CoreEnvelopesOpened, 1);

        let t0 = Instant::now();
        if let Err(e) = self.check_signature(&staged.params) {
            // Stage 1 could not validate (signature still being inferred):
            // release the staged charge and reject.
            self.enclave.memory().free(staged.footprint)?;
            self.stats.updates_rejected += 1;
            self.stats.bytes_rejected += sealed_len as u64;
            self.telemetry.incr(Counter::CoreUpdatesRejected, 1);
            return Err(e);
        }
        let emitted = if let Some(streaming) = &mut self.streaming {
            let out = streaming.push(staged.params)?;
            if out.is_some() {
                // One update left the lists for every one that entered.
                self.enclave.memory().free(staged.footprint)?;
            }
            out
        } else {
            self.batch_buffer.push(staged.params);
            None
        };
        self.stats.decrypt_seconds += staged.decrypt_seconds;
        self.stats.store_seconds += staged.decode_seconds + t0.elapsed().as_secs_f64();
        self.stats.updates_received += 1;
        self.telemetry.incr(Counter::CoreUpdatesCommitted, 1);
        self.telemetry
            .incr(Counter::CoreBytesReceived, sealed_len as u64);

        if let Some(out) = emitted {
            self.stats.updates_forwarded += 1;
            Ok(Some(out))
        } else {
            Ok(None)
        }
    }

    /// Releases the EPC charge of a staged update that will **not** be
    /// committed. The parallel front-end uses this when it discards staged
    /// work to degrade to sequential ingest under memory pressure; any
    /// other holder of a [`StagedUpdate`] it decides not to commit should
    /// do the same.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::Enclave`] if the accounting underflows (a
    /// proxy bug, surfaced rather than hidden).
    pub fn discard_staged(&self, staged: StagedUpdate) -> Result<(), ProxyError> {
        self.enclave.memory().free(staged.footprint)?;
        Ok(())
    }

    /// Batch mode: mixes everything buffered and returns the mixed updates
    /// in slot order, freeing the enclave memory they occupied. The mix is
    /// sharded per layer across up to `parallelism.mix_shards` threads;
    /// the result is identical at every shard count.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::InsufficientUpdates`] if nothing is buffered.
    pub fn mix_batch(&mut self) -> Result<Vec<ModelParams>, ProxyError> {
        let _span = self.telemetry.span(Span::CoreMixBatch);
        let t0 = Instant::now();
        let updates = std::mem::take(&mut self.batch_buffer);
        let result = self
            .batch_mixer
            .mix_sharded(&updates, self.parallelism.mix_shards);
        match result {
            Ok((mixed, plan)) => {
                let footprint: usize = updates
                    .iter()
                    .map(|u| u.total_len() * std::mem::size_of::<f32>())
                    .sum();
                self.enclave.memory().free(footprint)?;
                self.stats.mix_seconds += t0.elapsed().as_secs_f64();
                self.stats.updates_forwarded += mixed.len() as u64;
                self.last_plan = Some(plan);
                self.telemetry.incr(Counter::CoreBatchesMixed, 1);
                self.telemetry
                    .observe(Distribution::CoreMixBatchUpdates, mixed.len() as u64);
                self.telemetry.trace(
                    Component::Core,
                    None,
                    TraceKind::BatchMixed {
                        updates: mixed.len() as u64,
                    },
                );
                Ok(mixed)
            }
            Err(e) => {
                // Restore the buffer on failure.
                self.batch_buffer = updates;
                Err(e)
            }
        }
    }

    /// Streaming mode: drains the lists at shutdown.
    ///
    /// Flushing emits the residual list contents position-wise; it draws no
    /// [`MixPlan`], so [`MixnnProxy::last_plan`] — which describes only
    /// batch rounds — is deliberately left untouched.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::Enclave`] if the memory accounting
    /// underflows (a proxy bug, surfaced rather than hidden).
    pub fn flush(&mut self) -> Result<Vec<ModelParams>, ProxyError> {
        match &mut self.streaming {
            Some(streaming) => {
                let out = streaming.flush();
                let footprint: usize = out
                    .iter()
                    .map(|u| u.total_len() * std::mem::size_of::<f32>())
                    .sum();
                self.enclave.memory().free(footprint)?;
                self.stats.updates_forwarded += out.len() as u64;
                Ok(out)
            }
            None => Ok(Vec::new()),
        }
    }

    /// The whole batch path without transport encryption: validate, mix,
    /// account. Used by the plaintext transport mode for large sweeps where
    /// per-update sealing would dominate runtime without affecting the
    /// experiment (encryption never changes the mixing semantics).
    ///
    /// # Errors
    ///
    /// Same conditions as [`MixnnProxy::mix_batch`].
    pub fn mix_plaintext_round(
        &mut self,
        updates: Vec<ModelParams>,
    ) -> Result<Vec<ModelParams>, ProxyError> {
        check_common_signature(&updates)?;
        for u in &updates {
            self.check_signature(u)?;
            self.stats.updates_received += 1;
        }
        let t0 = Instant::now();
        let (mixed, plan) = self
            .batch_mixer
            .mix_sharded(&updates, self.parallelism.mix_shards)?;
        self.stats.mix_seconds += t0.elapsed().as_secs_f64();
        self.stats.updates_forwarded += mixed.len() as u64;
        self.last_plan = Some(plan);
        Ok(mixed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixnn_crypto::SealedBox;
    use mixnn_nn::LayerParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params(i: usize) -> ModelParams {
        ModelParams::from_layers(vec![
            LayerParams::from_values(vec![i as f32; 3]),
            LayerParams::from_values(vec![(i * 10) as f32; 2]),
        ])
    }

    fn launch(strategy: MixingStrategy) -> (MixnnProxy, AttestationService, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let service = AttestationService::new(&mut rng);
        let config = MixnnProxyConfig {
            strategy,
            expected_signature: vec![3, 2],
            seed: 11,
            ..MixnnProxyConfig::default()
        };
        let proxy = MixnnProxy::launch(config, &service, &mut rng);
        (proxy, service, rng)
    }

    fn seal(proxy: &MixnnProxy, p: &ModelParams, rng: &mut StdRng) -> Vec<u8> {
        SealedBox::seal(&codec::encode_params(p), proxy.public_key(), rng).unwrap()
    }

    #[test]
    fn launch_produces_verifiable_proxy() {
        let (proxy, service, _) = launch(MixingStrategy::Batch);
        assert!(proxy.verify_against(&service));
    }

    #[test]
    fn batch_pipeline_end_to_end() {
        let (mut proxy, _, mut rng) = launch(MixingStrategy::Batch);
        let originals: Vec<ModelParams> = (0..5).map(params).collect();
        for p in &originals {
            let sealed = seal(&proxy, p, &mut rng);
            assert!(proxy.submit_encrypted(&sealed).unwrap().is_none());
        }
        assert_eq!(proxy.buffered(), 5);
        let mixed = proxy.mix_batch().unwrap();
        assert_eq!(mixed.len(), 5);
        assert_eq!(ModelParams::mean(&originals), ModelParams::mean(&mixed));
        // Memory was charged and released.
        assert_eq!(proxy.memory_stats().allocated, 0);
        assert!(proxy.memory_stats().high_water >= 5 * 5 * 4);
        let stats = proxy.stats();
        assert_eq!(stats.updates_received, 5);
        assert_eq!(stats.updates_forwarded, 5);
        assert!(stats.decrypt_seconds > 0.0);
    }

    #[test]
    fn streaming_pipeline_emits_after_warmup() {
        let (mut proxy, _, mut rng) = launch(MixingStrategy::Streaming { k: 2 });
        let mut emitted = 0;
        for i in 0..6 {
            let sealed = seal(&proxy, &params(i), &mut rng);
            if proxy.submit_encrypted(&sealed).unwrap().is_some() {
                emitted += 1;
            }
        }
        assert_eq!(emitted, 4);
        let flushed = proxy.flush().unwrap();
        assert_eq!(flushed.len(), 2);
        assert_eq!(proxy.memory_stats().allocated, 0);
    }

    #[test]
    fn garbage_ciphertext_is_rejected_and_counted() {
        let (mut proxy, _, _) = launch(MixingStrategy::Batch);
        assert!(proxy.submit_encrypted(&[0u8; 80]).is_err());
        let stats = proxy.stats();
        assert_eq!(stats.updates_rejected, 1);
        assert_eq!(stats.bytes_rejected, 80);
        assert_eq!(stats.bytes_received, 80);
        assert_eq!(proxy.buffered(), 0);
    }

    #[test]
    fn wrong_signature_is_rejected() {
        let (mut proxy, _, mut rng) = launch(MixingStrategy::Batch);
        let alien = ModelParams::from_layers(vec![LayerParams::from_values(vec![1.0])]);
        let sealed = seal(&proxy, &alien, &mut rng);
        let sealed_len = sealed.len() as u64;
        assert!(matches!(
            proxy.submit_encrypted(&sealed),
            Err(ProxyError::SignatureMismatch { .. })
        ));
        // Rejected update must not leak memory, and its bytes are counted.
        assert_eq!(proxy.memory_stats().allocated, 0);
        assert_eq!(proxy.stats().bytes_rejected, sealed_len);
    }

    #[test]
    fn empty_batch_mix_fails_cleanly() {
        let (mut proxy, _, _) = launch(MixingStrategy::Batch);
        assert!(matches!(
            proxy.mix_batch(),
            Err(ProxyError::InsufficientUpdates { .. })
        ));
    }

    #[test]
    fn signature_inference_from_first_update() {
        let mut rng = StdRng::seed_from_u64(1);
        let service = AttestationService::new(&mut rng);
        let mut proxy = MixnnProxy::launch(MixnnProxyConfig::default(), &service, &mut rng);
        let sealed = seal(&proxy, &params(0), &mut rng);
        proxy.submit_encrypted(&sealed).unwrap();
        // Second update with a different signature is now rejected.
        let alien = ModelParams::from_layers(vec![LayerParams::from_values(vec![1.0])]);
        let sealed = seal(&proxy, &alien, &mut rng);
        assert!(proxy.submit_encrypted(&sealed).is_err());
        // The rejected update's staged EPC charge was released.
        let accepted_footprint = params(0).total_len() * std::mem::size_of::<f32>();
        assert_eq!(proxy.memory_stats().allocated, accepted_footprint);
    }

    #[test]
    fn plaintext_round_matches_batch_semantics() {
        let (mut proxy, _, _) = launch(MixingStrategy::Batch);
        let originals: Vec<ModelParams> = (0..6).map(params).collect();
        let mixed = proxy.mix_plaintext_round(originals.clone()).unwrap();
        assert_eq!(ModelParams::mean(&originals), ModelParams::mean(&mixed));
        let plan = proxy.last_plan().unwrap();
        assert!(plan.is_column_bijective());
        assert!(plan.is_row_distinct());
    }

    #[test]
    fn memory_exhaustion_propagates() {
        let mut rng = StdRng::seed_from_u64(2);
        let service = AttestationService::new(&mut rng);
        let config = MixnnProxyConfig {
            expected_signature: vec![3, 2],
            enclave: mixnn_enclave::EnclaveConfig {
                epc_limit: 30, // fits one 20-byte update + decrypt buffer, not three
                ..Default::default()
            },
            ..MixnnProxyConfig::default()
        };
        let mut proxy = MixnnProxy::launch(config, &service, &mut rng);
        let mut failures = 0;
        for i in 0..3 {
            let sealed = seal(&proxy, &params(i), &mut rng);
            if matches!(
                proxy.submit_encrypted(&sealed),
                Err(ProxyError::Enclave(
                    mixnn_enclave::EnclaveError::MemoryExhausted { .. }
                ))
            ) {
                failures += 1;
            }
        }
        assert!(failures > 0, "EPC limit was never enforced");
    }

    #[test]
    fn late_bound_streaming_mixer_matches_preconfigured_seed_derivation() {
        // Regression for the hardcoded `0x57` streaming seed: a proxy that
        // adopts its signature from the first update must derive the same
        // `seed ^ 0x57` streams as one configured with the signature up
        // front — identical emissions, update for update.
        let run = |preconfigure: bool| {
            let mut rng = StdRng::seed_from_u64(9);
            let service = AttestationService::new(&mut rng);
            let config = MixnnProxyConfig {
                strategy: MixingStrategy::Streaming { k: 3 },
                expected_signature: if preconfigure { vec![3, 2] } else { Vec::new() },
                seed: 1234,
                ..MixnnProxyConfig::default()
            };
            let mut proxy = MixnnProxy::launch(config, &service, &mut rng);
            let mut out = Vec::new();
            for i in 0..10 {
                let sealed = seal(&proxy, &params(i), &mut rng);
                if let Some(m) = proxy.submit_encrypted(&sealed).unwrap() {
                    out.push(m);
                }
            }
            out.extend(proxy.flush().unwrap());
            out
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn staged_ingest_matches_submit_encrypted() {
        // ingest_stage + commit_staged is exactly submit_encrypted.
        let (mut split, _, mut rng) = launch(MixingStrategy::Batch);
        let (mut fused, _, mut rng2) = launch(MixingStrategy::Batch);
        for i in 0..4 {
            let sealed = seal(&split, &params(i), &mut rng);
            let staged = split.ingest_stage(&sealed);
            split.commit_staged(sealed.len(), staged).unwrap();
            let sealed = seal(&fused, &params(i), &mut rng2);
            fused.submit_encrypted(&sealed).unwrap();
        }
        assert_eq!(split.mix_batch().unwrap(), fused.mix_batch().unwrap());
        assert_eq!(split.stats().updates_received, 4);
        assert_eq!(split.last_plan(), fused.last_plan());
    }
}
