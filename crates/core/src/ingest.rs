//! Staged, parallel ingest of sealed updates.
//!
//! §6.5's cost breakdown makes decryption the proxy's bottleneck (0.17 s
//! of the 0.19 s per-update budget), and decryption is per-update
//! independent. [`ParallelIngest`] exploits exactly that split: the
//! stateless stage ([`MixnnProxy::ingest_stage`] — decrypt, decode,
//! validate, charge the EPC) fans out across scoped worker threads, while
//! the stateful stage ([`MixnnProxy::commit_staged`] — the ordered
//! hand-off into the mixing lists) stays serialized in submission order.
//!
//! Because the workers perform only order-independent work and commits
//! happen in input order, the observable outcome — accepted/rejected
//! updates, streaming emissions, buffered batch, eventual [`crate::MixPlan`]
//! — is **bit-identical at every worker count** for a fixed proxy seed.

use crate::parallel::{map_chunked_batched, Parallelism};
use crate::{MixnnProxy, ProxyError};
use mixnn_nn::ModelParams;
use mixnn_telemetry::{Component, TraceKind};

/// Fans the stateless half of ingest across worker threads, then commits
/// in submission order.
///
/// # Example
///
/// ```
/// use mixnn_core::{codec, MixnnProxy, MixnnProxyConfig, ParallelIngest};
/// use mixnn_crypto::SealedBox;
/// use mixnn_enclave::AttestationService;
/// use mixnn_nn::{LayerParams, ModelParams};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let service = AttestationService::new(&mut rng);
/// let config = MixnnProxyConfig {
///     expected_signature: vec![2],
///     ..MixnnProxyConfig::default()
/// };
/// let mut proxy = MixnnProxy::launch(config, &service, &mut rng);
/// let sealed: Vec<Vec<u8>> = (0..4)
///     .map(|i| {
///         let p = ModelParams::from_layers(vec![LayerParams::from_values(vec![i as f32; 2])]);
///         SealedBox::seal(&codec::encode_params(&p), proxy.public_key(), &mut rng).unwrap()
///     })
///     .collect();
/// let results = ParallelIngest::new(4).submit_all(&mut proxy, &sealed);
/// assert!(results.iter().all(Result::is_ok));
/// assert_eq!(proxy.buffered(), 4);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ParallelIngest {
    workers: usize,
}

impl ParallelIngest {
    /// Creates a front-end using up to `workers` ingest threads (clamped
    /// to at least one; one means fully sequential).
    pub fn new(workers: usize) -> Self {
        ParallelIngest {
            workers: workers.max(1),
        }
    }

    /// A front-end sized from a [`Parallelism`] config.
    pub fn from_parallelism(parallelism: Parallelism) -> Self {
        Self::new(parallelism.ingest_workers)
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Ingests a whole round of sealed updates: stage 1 in parallel
    /// (bounded chunks, so at most one chunk of EPC charges is staged but
    /// uncommitted), stage 2 serialized in submission order.
    ///
    /// Returns one result per input, in input order — exactly what a loop
    /// over [`MixnnProxy::submit_encrypted`] would have produced (streaming
    /// emissions included), independent of the worker count. That includes
    /// EPC exhaustion: staged charges transiently exceed what the
    /// sequential loop would hold, so the moment a staged update reports
    /// `MemoryExhausted` the front-end discards every not-yet-committed
    /// staged charge and degrades to sequential ingest for the rest of the
    /// call — re-running each remaining update under exactly the
    /// sequential loop's memory conditions. Accept/reject outcomes are
    /// therefore identical to sequential at every worker count; the only
    /// cost of pressure is losing the fan-out.
    pub fn submit_all(
        &self,
        proxy: &mut MixnnProxy,
        sealed: &[Vec<u8>],
    ) -> Vec<Result<Option<ModelParams>, ProxyError>> {
        fn is_memory_exhausted<T>(r: &Result<T, ProxyError>) -> bool {
            matches!(
                r,
                Err(ProxyError::Enclave(
                    mixnn_enclave::EnclaveError::MemoryExhausted { .. }
                ))
            )
        }

        proxy.telemetry().trace(
            Component::Core,
            None,
            TraceKind::IngestStaged {
                updates: sealed.len() as u64,
            },
        );
        let mut results = Vec::with_capacity(sealed.len());
        // Sticky once EPC pressure is seen: sequential from here on.
        let mut degraded = false;
        let chunk_len = self.workers.saturating_mul(STAGING_DEPTH).max(1);
        for chunk in sealed.chunks(chunk_len) {
            if degraded {
                for s in chunk {
                    let staged = proxy.ingest_stage(s);
                    results.push(proxy.commit_staged(s.len(), staged));
                }
                continue;
            }
            let mut staged: Vec<Option<Result<crate::StagedUpdate, ProxyError>>> = {
                let shared: &MixnnProxy = proxy;
                // Each worker opens its whole sub-chunk through the batched
                // sealed-box kernels — one X25519 pass per worker instead
                // of one per update.
                map_chunked_batched(chunk, self.workers, |sub| shared.ingest_stage_batch(sub))
                    .into_iter()
                    .map(Some)
                    .collect()
            };
            for (i, s) in chunk.iter().enumerate() {
                let result = match staged[i].take() {
                    Some(result) if !degraded => {
                        if is_memory_exhausted(&result) {
                            // Staged charges ahead of this update inflated
                            // the budget; drop them and retry under the
                            // sequential loop's exact conditions.
                            degraded = true;
                            for slot in staged.iter_mut().skip(i + 1) {
                                if let Some(Ok(ahead)) = slot.take() {
                                    proxy
                                        .discard_staged(ahead)
                                        .expect("EPC accounting underflow while discarding");
                                }
                            }
                            proxy.ingest_stage(s)
                        } else {
                            result
                        }
                    }
                    // Degraded mid-chunk: the staged result (and its EPC
                    // charge, if any) was discarded above — re-ingest now,
                    // when the budget matches the sequential loop's.
                    _ => proxy.ingest_stage(s),
                };
                results.push(proxy.commit_staged(s.len(), result));
            }
        }
        let accepted = results.iter().filter(|r| r.is_ok()).count() as u64;
        proxy.telemetry().trace(
            Component::Core,
            None,
            TraceKind::IngestCommitted {
                accepted,
                rejected: results.len() as u64 - accepted,
            },
        );
        results
    }
}

/// Staged-but-uncommitted updates are capped at `workers * STAGING_DEPTH`
/// per chunk: deep enough to amortize thread spawns, shallow enough to
/// bound the transient EPC overshoot parallel staging can add.
const STAGING_DEPTH: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{codec, MixingStrategy, MixnnProxyConfig};
    use mixnn_crypto::SealedBox;
    use mixnn_enclave::AttestationService;
    use mixnn_nn::LayerParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn proxy(strategy: MixingStrategy, seed: u64) -> (MixnnProxy, StdRng) {
        let mut rng = StdRng::seed_from_u64(3);
        let service = AttestationService::new(&mut rng);
        let proxy = MixnnProxy::launch(
            MixnnProxyConfig {
                strategy,
                expected_signature: vec![2, 4],
                seed,
                ..MixnnProxyConfig::default()
            },
            &service,
            &mut rng,
        );
        (proxy, rng)
    }

    fn sealed_updates(proxy: &MixnnProxy, c: usize, rng: &mut StdRng) -> Vec<Vec<u8>> {
        (0..c)
            .map(|i| {
                let p = ModelParams::from_layers(vec![
                    LayerParams::from_values(vec![i as f32; 2]),
                    LayerParams::from_values(vec![-(i as f32); 4]),
                ]);
                SealedBox::seal(&codec::encode_params(&p), proxy.public_key(), rng).unwrap()
            })
            .collect()
    }

    #[test]
    fn parallel_batch_ingest_matches_sequential() {
        let run = |workers: usize| {
            let (mut p, mut rng) = proxy(MixingStrategy::Batch, 5);
            let sealed = sealed_updates(&p, 13, &mut rng);
            let results = ParallelIngest::new(workers).submit_all(&mut p, &sealed);
            assert!(results.iter().all(Result::is_ok));
            (p.mix_batch().unwrap(), p.last_plan().cloned(), p.stats())
        };
        let (seq_mixed, seq_plan, seq_stats) = run(1);
        for workers in [2, 4, 7] {
            let (mixed, plan, stats) = run(workers);
            assert_eq!(seq_mixed, mixed, "workers={workers}");
            assert_eq!(seq_plan, plan, "workers={workers}");
            assert_eq!(stats.updates_received, seq_stats.updates_received);
            assert_eq!(stats.bytes_received, seq_stats.bytes_received);
        }
    }

    #[test]
    fn parallel_streaming_ingest_matches_sequential() {
        let run = |workers: usize| {
            let (mut p, mut rng) = proxy(MixingStrategy::Streaming { k: 3 }, 6);
            let sealed = sealed_updates(&p, 11, &mut rng);
            let mut out: Vec<ModelParams> = ParallelIngest::new(workers)
                .submit_all(&mut p, &sealed)
                .into_iter()
                .filter_map(|r| r.unwrap())
                .collect();
            out.extend(p.flush().unwrap());
            out
        };
        let sequential = run(1);
        for workers in [2, 3, 8] {
            assert_eq!(sequential, run(workers), "workers={workers}");
        }
    }

    #[test]
    fn tight_epc_budget_matches_sequential_accept_reject_pattern() {
        // Staged charges transiently exceed what the sequential loop would
        // hold; under a budget tight enough that this matters, the
        // front-end must degrade so that accept/reject outcomes still
        // match the sequential loop exactly — at every worker count.
        let build = || {
            let mut rng = StdRng::seed_from_u64(8);
            let service = AttestationService::new(&mut rng);
            let p = MixnnProxy::launch(
                MixnnProxyConfig {
                    strategy: MixingStrategy::Streaming { k: 2 },
                    expected_signature: vec![2, 4],
                    seed: 13,
                    enclave: mixnn_enclave::EnclaveConfig {
                        // Fits the k=2 warm-up lists (48 B of footprints)
                        // plus one 41 B decrypt buffer — but not the 89 B
                        // steady-state peak, and certainly not a staged
                        // chunk: sequential accepts the two warm-up
                        // updates and rejects the rest, and the parallel
                        // front-end must reproduce that exactly.
                        epc_limit: 80,
                        ..Default::default()
                    },
                    ..MixnnProxyConfig::default()
                },
                &service,
                &mut rng,
            );
            (p, rng)
        };
        let pattern = |results: Vec<Result<Option<ModelParams>, ProxyError>>| {
            results
                .into_iter()
                .map(|r| match r {
                    Ok(out) => format!("ok:{}", out.is_some()),
                    Err(e) => format!("err:{e}"),
                })
                .collect::<Vec<_>>()
        };
        let (seq_proxy, mut rng) = build();
        let sealed = sealed_updates(&seq_proxy, 20, &mut rng);

        let mut seq_proxy = seq_proxy;
        let sequential: Vec<_> = sealed
            .iter()
            .map(|s| seq_proxy.submit_encrypted(s))
            .collect();
        let sequential = pattern(sequential);
        assert!(
            sequential.iter().any(|r| r.starts_with("err")),
            "budget was not tight enough to exercise exhaustion"
        );
        assert!(
            sequential.iter().any(|r| r.starts_with("ok")),
            "budget rejected everything; test proves nothing"
        );

        for workers in [2, 4, 8] {
            let (mut par_proxy, _) = build();
            let results = ParallelIngest::new(workers).submit_all(&mut par_proxy, &sealed);
            assert_eq!(sequential, pattern(results), "workers={workers}");
            assert_eq!(
                seq_proxy.memory_stats().allocated,
                par_proxy.memory_stats().allocated,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn rejected_updates_surface_in_order_and_leak_nothing() {
        let (mut p, mut rng) = proxy(MixingStrategy::Batch, 7);
        let mut sealed = sealed_updates(&p, 4, &mut rng);
        sealed.insert(2, vec![0u8; 64]); // garbage ciphertext mid-round
        let results = ParallelIngest::new(4).submit_all(&mut p, &sealed);
        assert!(results[2].is_err());
        assert_eq!(results.iter().filter(|r| r.is_ok()).count(), 4);
        assert_eq!(p.stats().updates_rejected, 1);
        assert_eq!(p.stats().bytes_rejected, 64);
        let mixed = p.mix_batch().unwrap();
        assert_eq!(mixed.len(), 4);
        assert_eq!(p.memory_stats().allocated, 0);
    }
}
