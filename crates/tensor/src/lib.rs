//! Row-major `f32` tensor and linear-algebra substrate for the MixNN
//! reproduction.
//!
//! This crate provides the numerical foundation used by every other crate in
//! the workspace: the [`Tensor`] type with shape-checked element-wise and
//! matrix operations, flat-vector helpers in [`vecmath`] (dot products,
//! cosine similarity, Euclidean distance — the metrics the ∇Sim attack and
//! the robustness analysis of the paper are built on), and weight
//! initialisers in [`init`].
//!
//! The design goal is *determinism*: all randomness is injected through
//! caller-supplied [`rand::Rng`] values so that federated-learning runs are
//! reproducible bit-for-bit, which in turn is what makes the paper's
//! utility-equivalence claim (classic FL and MixNN produce the *same*
//! aggregated model) testable exactly.
//!
//! # Example
//!
//! ```
//! use mixnn_tensor::Tensor;
//!
//! # fn main() -> Result<(), mixnn_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod error;
pub mod init;
mod shape;
mod tensor;
pub mod vecmath;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;
