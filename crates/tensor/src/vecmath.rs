//! Flat-vector numeric helpers.
//!
//! Model updates in federated learning are, at the transport level, flat
//! `f32` vectors (one per layer). The ∇Sim attack of the paper scores
//! participants by **cosine similarity** between their update and reference
//! directions, and the robustness analysis (Fig. 9) counts neighbours within
//! a **Euclidean** radius. Those primitives live here so that the attack,
//! the proxy and the benches all share one audited implementation.
//!
//! All functions operate on slices and make no allocation unless the result
//! is a vector.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length (programming error on a hot path).
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn euclidean_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "euclidean_distance: length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum::<f32>()
        .sqrt()
}

/// Cosine similarity between two equal-length slices.
///
/// Returns `0.0` when either vector has zero norm: a zero update carries no
/// directional information, and treating it as orthogonal keeps ∇Sim's
/// argmax well-defined instead of propagating NaN.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine_similarity: length mismatch");
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// `y ← y + alpha * x` (BLAS `axpy`).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Scales a slice in place by `alpha`.
pub fn scale(alpha: f32, x: &mut [f32]) {
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

/// Element-wise mean of a non-empty set of equal-length vectors.
///
/// This is exactly the FedAvg aggregation function `Agr` of the paper
/// (Section 4.2): the column-wise mean over participant updates. The
/// utility-equivalence theorem is the statement that this function is
/// invariant under per-column permutations of its inputs.
///
/// Returns `None` if `vectors` is empty or the lengths disagree.
pub fn mean_of(vectors: &[&[f32]]) -> Option<Vec<f32>> {
    let first = vectors.first()?;
    let len = first.len();
    if vectors.iter().any(|v| v.len() != len) {
        return None;
    }
    let mut acc = vec![0.0f32; len];
    for v in vectors {
        for (a, &x) in acc.iter_mut().zip(v.iter()) {
            *a += x;
        }
    }
    let inv = 1.0 / vectors.len() as f32;
    scale(inv, &mut acc);
    Some(acc)
}

/// Index of the maximum element; ties resolve to the first maximal index.
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn argmax(a: &[f32]) -> usize {
    assert!(!a.is_empty(), "argmax of empty slice");
    let mut best = 0;
    let mut best_v = a[0];
    for (i, &v) in a.iter().enumerate().skip(1) {
        if v > best_v {
            best = i;
            best_v = v;
        }
    }
    best
}

/// Numerically stable softmax of a slice.
///
/// Subtracts the maximum before exponentiating; an all-`-inf` input yields a
/// uniform distribution rather than NaN.
pub fn softmax(a: &[f32]) -> Vec<f32> {
    if a.is_empty() {
        return Vec::new();
    }
    let max = a.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = a
        .iter()
        .map(|&v| {
            let e = (v - max).exp();
            if e.is_nan() {
                0.0
            } else {
                e
            }
        })
        .collect();
    let sum: f32 = exps.iter().sum();
    if sum == 0.0 {
        return vec![1.0 / a.len() as f32; a.len()];
    }
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1., 2., 3.], &[4., 5., 6.]), 32.0);
        assert_eq!(norm(&[3., 4.]), 5.0);
    }

    #[test]
    fn euclidean_distance_basics() {
        assert_eq!(euclidean_distance(&[0., 0.], &[3., 4.]), 5.0);
        assert_eq!(euclidean_distance(&[1., 1.], &[1., 1.]), 0.0);
    }

    #[test]
    fn cosine_parallel_orthogonal_antiparallel() {
        assert!((cosine_similarity(&[1., 0.], &[2., 0.]) - 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&[1., 0.], &[0., 1.]).abs() < 1e-6);
        assert!((cosine_similarity(&[1., 0.], &[-3., 0.]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0., 0.], &[1., 2.]), 0.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut y = vec![1., 1., 1.];
        axpy(2.0, &[1., 2., 3.], &mut y);
        assert_eq!(y, vec![3., 5., 7.]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![1.5, 2.5, 3.5]);
    }

    #[test]
    fn mean_of_vectors() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 6.0];
        let m = mean_of(&[&a, &b]).unwrap();
        assert_eq!(m, vec![2.0, 4.0]);
        assert!(mean_of(&[]).is_none());
        let c = [1.0f32];
        assert!(mean_of(&[&a, &c]).is_none());
    }

    #[test]
    fn mean_is_permutation_invariant() {
        // The heart of the paper's utility-equivalence argument.
        let vs: Vec<Vec<f32>> = vec![vec![1., 5.], vec![2., 6.], vec![3., 7.]];
        let refs: Vec<&[f32]> = vs.iter().map(|v| v.as_slice()).collect();
        let permuted: Vec<&[f32]> = vec![&vs[2], &vs[0], &vs[1]];
        assert_eq!(mean_of(&refs), mean_of(&permuted));
    }

    #[test]
    fn argmax_basics() {
        assert_eq!(argmax(&[1., 3., 2.]), 1);
        assert_eq!(argmax(&[5., 5.]), 0);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let s = softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = s.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(s[2] > s[1] && s[1] > s[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_inputs() {
        let s = softmax(&[1000.0, 1000.0]);
        assert!((s[0] - 0.5).abs() < 1e-6);
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_of_empty_is_empty() {
        assert!(softmax(&[]).is_empty());
    }
}
