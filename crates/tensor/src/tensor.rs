use self::rand_distr_shim::StandardNormalShim;
use crate::{Shape, TensorError};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major tensor of `f32` values.
///
/// `Tensor` is the carrier type for model inputs, activations, weights and
/// gradients across the workspace. It deliberately stays small: dense
/// storage, shape-checked operations, no views or broadcasting magic — the
/// reproduction favours auditable numerics over generality.
///
/// # Example
///
/// ```
/// use mixnn_tensor::Tensor;
///
/// # fn main() -> Result<(), mixnn_tensor::TensorError> {
/// let x = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.])?;
/// assert_eq!(x.at(&[1, 2])?, 6.0);
/// let doubled = x.map(|v| v * 2.0);
/// assert_eq!(doubled.at(&[0, 0])?, 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ---------------------------------------------------------------------
    // Constructors
    // ---------------------------------------------------------------------

    /// Creates a tensor of the given shape filled with zeros.
    pub fn zeros(dims: Vec<usize>) -> Self {
        let shape = Shape::new(dims);
        let data = vec![0.0; shape.volume()];
        Tensor { shape, data }
    }

    /// Creates a tensor of the given shape filled with ones.
    pub fn ones(dims: Vec<usize>) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(dims: Vec<usize>, value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.volume()];
        Tensor { shape, data }
    }

    /// Creates a tensor from a flat `data` buffer interpreted row-major with
    /// the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the shape volume.
    pub fn from_vec(dims: Vec<usize>, data: Vec<f32>) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if shape.volume() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor whose element at flat offset `i` is `f(i)`.
    pub fn from_fn(dims: Vec<usize>, mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.volume()).map(&mut f).collect();
        Tensor { shape, data }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(vec![n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor with i.i.d. standard-normal entries scaled by
    /// `std` and shifted by `mean`, drawn from `rng`.
    pub fn randn<R: Rng + ?Sized>(dims: Vec<usize>, mean: f32, std: f32, rng: &mut R) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.volume())
            .map(|_| mean + std * StandardNormalShim::sample(rng))
            .collect();
        Tensor { shape, data }
    }

    /// Creates a tensor with i.i.d. uniform entries in `[lo, hi)` drawn from
    /// `rng`.
    pub fn rand_uniform<R: Rng + ?Sized>(dims: Vec<usize>, lo: f32, hi: f32, rng: &mut R) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.volume()).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { shape, data }
    }

    // ---------------------------------------------------------------------
    // Accessors
    // ---------------------------------------------------------------------

    /// The shape of the tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flat row-major data buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat row-major data buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index has the wrong
    /// rank or exceeds any dimension.
    pub fn at(&self, index: &[usize]) -> Result<f32, TensorError> {
        self.shape
            .offset(index)
            .map(|o| self.data[o])
            .ok_or_else(|| TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.dims().to_vec(),
            })
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index has the wrong
    /// rank or exceeds any dimension.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        match self.shape.offset(index) {
            Some(o) => {
                self.data[o] = value;
                Ok(())
            }
            None => Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.dims().to_vec(),
            }),
        }
    }

    // ---------------------------------------------------------------------
    // Shape manipulation
    // ---------------------------------------------------------------------

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the new shape's volume
    /// differs from the element count.
    pub fn reshape(&self, dims: Vec<usize>) -> Result<Tensor, TensorError> {
        let shape = Shape::new(dims);
        if shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Transposes a 2-D tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleMatmul`] if the tensor is not 2-D
    /// (the error carries the offending shape on both sides).
    pub fn transpose2d(&self) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::IncompatibleMatmul {
                left: self.dims().to_vec(),
                right: self.dims().to_vec(),
            });
        }
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = Tensor::zeros(vec![c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Returns row `i` of a 2-D tensor as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `i` is out of bounds; this is an
    /// internal hot-path accessor used after shapes are validated.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.rank(), 2, "row() requires a 2-D tensor");
        let c = self.dims()[1];
        &self.data[i * c..(i + 1) * c]
    }

    /// Returns a new 2-D tensor consisting of the given rows (by index) of a
    /// 2-D tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if any row index is out of
    /// range, or [`TensorError::IncompatibleMatmul`] if the tensor is not
    /// 2-D.
    pub fn select_rows(&self, rows: &[usize]) -> Result<Tensor, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::IncompatibleMatmul {
                left: self.dims().to_vec(),
                right: self.dims().to_vec(),
            });
        }
        let c = self.dims()[1];
        let mut data = Vec::with_capacity(rows.len() * c);
        for &r in rows {
            if r >= self.dims()[0] {
                return Err(TensorError::IndexOutOfBounds {
                    index: vec![r],
                    shape: self.dims().to_vec(),
                });
            }
            data.extend_from_slice(self.row(r));
        }
        Tensor::from_vec(vec![rows.len(), c], data)
    }

    // ---------------------------------------------------------------------
    // Element-wise operations
    // ---------------------------------------------------------------------

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two same-shaped tensors element-wise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_map(
        &self,
        other: &Tensor,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor, TensorError> {
        self.check_same_shape(other)?;
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<(), TensorError> {
        self.check_same_shape(other)?;
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// Multiplies every element by `s`, returning a new tensor.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_in_place(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    // ---------------------------------------------------------------------
    // Linear algebra
    // ---------------------------------------------------------------------

    /// Matrix multiplication of two 2-D tensors: `(m×k) · (k×n) → (m×n)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleMatmul`] if either operand is not
    /// 2-D or the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.rank() != 2 || other.rank() != 2 || self.dims()[1] != other.dims()[0] {
            return Err(TensorError::IncompatibleMatmul {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let n = other.dims()[1];
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(Tensor {
            shape: Shape::new(vec![m, n]),
            data: out,
        })
    }

    /// `self · otherᵀ` for 2-D tensors: `(m×k) · (n×k)ᵀ → (m×n)`.
    ///
    /// This avoids materialising the transpose in backprop hot paths.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleMatmul`] if either operand is not
    /// 2-D or the `k` dimensions disagree.
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.rank() != 2 || other.rank() != 2 || self.dims()[1] != other.dims()[1] {
            return Err(TensorError::IncompatibleMatmul {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let n = other.dims()[0];
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &other.data[j * k..(j + 1) * k];
                out[i * n + j] = crate::vecmath::dot(a_row, b_row);
            }
        }
        Ok(Tensor {
            shape: Shape::new(vec![m, n]),
            data: out,
        })
    }

    /// `selfᵀ · other` for 2-D tensors: `(k×m)ᵀ · (k×n) → (m×n)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleMatmul`] if either operand is not
    /// 2-D or the `k` dimensions disagree.
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.rank() != 2 || other.rank() != 2 || self.dims()[0] != other.dims()[0] {
            return Err(TensorError::IncompatibleMatmul {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let n = other.dims()[1];
        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            let a_row = &self.data[p * m..(p + 1) * m];
            let b_row = &other.data[p * n..(p + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(Tensor {
            shape: Shape::new(vec![m, n]),
            data: out,
        })
    }

    // ---------------------------------------------------------------------
    // Reductions
    // ---------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    ///
    /// Returns `0.0` for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for an empty tensor.
    pub fn max(&self) -> Result<f32, TensorError> {
        self.data
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
            .ok_or(TensorError::EmptyTensor)
    }

    /// Index of the maximum element in each row of a 2-D tensor.
    ///
    /// Ties resolve to the first maximal index, matching common argmax
    /// semantics.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleMatmul`] if the tensor is not 2-D.
    pub fn argmax_rows(&self) -> Result<Vec<usize>, TensorError> {
        if self.rank() != 2 {
            return Err(TensorError::IncompatibleMatmul {
                left: self.dims().to_vec(),
                right: self.dims().to_vec(),
            });
        }
        Ok((0..self.dims()[0])
            .map(|i| {
                let row = self.row(i);
                crate::vecmath::argmax(row)
            })
            .collect())
    }

    /// Frobenius (L2) norm of the whole tensor.
    pub fn norm(&self) -> f32 {
        crate::vecmath::norm(&self.data)
    }

    fn check_same_shape(&self, other: &Tensor) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} [", self.shape)?;
        const PREVIEW: usize = 8;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > PREVIEW {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

/// Minimal Box–Muller standard-normal sampler.
///
/// The `rand` crate alone does not ship a normal distribution (that lives in
/// `rand_distr`, which is outside the allowed dependency set), so we carry a
/// tiny shim. Box–Muller is numerically fine for the f32 scales used here.
mod rand_distr_shim {
    use rand::Rng;

    pub struct StandardNormalShim;

    impl StandardNormalShim {
        pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
            // Draw u1 in (0, 1] to avoid ln(0).
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            (r * theta.cos()) as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 4]).is_ok());
        let err = Tensor::from_vec(vec![2, 2], vec![1.0; 3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros(vec![2, 3]);
        t.set(&[1, 2], 7.5).unwrap();
        assert_eq!(t.at(&[1, 2]).unwrap(), 7.5);
        assert_eq!(t.at(&[0, 0]).unwrap(), 0.0);
        assert!(t.at(&[2, 0]).is_err());
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_nt_equals_matmul_with_transpose() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::randn(vec![3, 4], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(vec![5, 4], 0.0, 1.0, &mut rng);
        let direct = a.matmul_nt(&b).unwrap();
        let via_t = a.matmul(&b.transpose2d().unwrap()).unwrap();
        for (x, y) in direct.data().iter().zip(via_t.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_tn_equals_transpose_then_matmul() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = Tensor::randn(vec![4, 3], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(vec![4, 5], 0.0, 1.0, &mut rng);
        let direct = a.matmul_tn(&b).unwrap();
        let via_t = a.transpose2d().unwrap().matmul(&b).unwrap();
        for (x, y) in direct.data().iter().zip(via_t.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_rejects_incompatible() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![2, 3]);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::IncompatibleMatmul { .. })
        ));
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Tensor::randn(vec![3, 5], 0.0, 1.0, &mut rng);
        let tt = a.transpose2d().unwrap().transpose2d().unwrap();
        assert_eq!(a, tt);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![3], vec![1., 2., 3.]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![10., 20., 30.]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[11., 22., 33.]);
        assert_eq!(b.sub(&a).unwrap().data(), &[9., 18., 27.]);
        assert_eq!(a.mul(&b).unwrap().data(), &[10., 40., 90.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6.]);
    }

    #[test]
    fn elementwise_shape_mismatch() {
        let a = Tensor::zeros(vec![2]);
        let b = Tensor::zeros(vec![3]);
        assert!(matches!(a.add(&b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]).unwrap();
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.max().unwrap(), 4.0);
        assert_eq!(t.argmax_rows().unwrap(), vec![1, 1]);
    }

    #[test]
    fn argmax_prefers_first_on_ties() {
        let t = Tensor::from_vec(vec![1, 3], vec![5., 5., 1.]).unwrap();
        assert_eq!(t.argmax_rows().unwrap(), vec![0]);
    }

    #[test]
    fn select_rows_works_and_validates() {
        let t = Tensor::from_vec(vec![3, 2], vec![0., 1., 2., 3., 4., 5.]).unwrap();
        let s = t.select_rows(&[2, 0]).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.data(), &[4., 5., 0., 1.]);
        assert!(t.select_rows(&[3]).is_err());
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let a = Tensor::randn(vec![16], 0.0, 1.0, &mut r1);
        let b = Tensor::randn(vec![16], 0.0, 1.0, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn randn_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = Tensor::randn(vec![20_000], 0.0, 1.0, &mut rng);
        assert!(t.mean().abs() < 0.05, "mean {} too far from 0", t.mean());
        let var = t.map(|v| v * v).mean() - t.mean() * t.mean();
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn display_previews_elements() {
        let t = Tensor::from_vec(vec![2], vec![1.0, 2.0]).unwrap();
        let s = t.to_string();
        assert!(s.contains("1.0000"));
        assert!(s.contains("(2)"));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let r = t.reshape(vec![3, 2]).unwrap();
        assert_eq!(r.dims(), &[3, 2]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(vec![7]).is_err());
    }
}
