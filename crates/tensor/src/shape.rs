use serde::{Deserialize, Serialize};
use std::fmt;

/// A tensor shape: the extent of each dimension, outermost first.
///
/// `Shape` is a thin newtype over `Vec<usize>` that carries the row-major
/// stride computation used throughout the workspace. It exists so that
/// shape-level invariants (volume, stride arithmetic) live in one place.
///
/// # Example
///
/// ```
/// use mixnn_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents, outermost first.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// Returns the dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions (rank) of the shape.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements a tensor of this shape holds.
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides for this shape.
    ///
    /// The stride of dimension `i` is the number of elements to skip to move
    /// one step along dimension `i`.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat row-major offset, or
    /// `None` if the index is out of bounds or of the wrong rank.
    pub fn offset(&self, index: &[usize]) -> Option<usize> {
        if index.len() != self.0.len() {
            return None;
        }
        let mut off = 0;
        for ((&i, &d), s) in index.iter().zip(self.0.iter()).zip(self.strides()) {
            if i >= d {
                return None;
            }
            off += i * s;
        }
        Some(off)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_of_empty_shape_is_one() {
        // A rank-0 shape describes a scalar.
        assert_eq!(Shape::new(vec![]).volume(), 1);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(vec![4, 3, 2]);
        assert_eq!(s.strides(), vec![6, 2, 1]);
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::new(vec![2, 3, 4]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let off = s.offset(&[i, j, k]).unwrap();
                    assert!(off < s.volume());
                    assert!(seen.insert(off), "offsets must be unique");
                }
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn offset_rejects_bad_rank_and_bounds() {
        let s = Shape::new(vec![2, 2]);
        assert_eq!(s.offset(&[0]), None);
        assert_eq!(s.offset(&[2, 0]), None);
        assert_eq!(s.offset(&[0, 2]), None);
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(vec![2, 3]).to_string(), "(2x3)");
    }
}
