//! Weight initialisers.
//!
//! The paper trains small convolutional/dense networks with TensorFlow
//! defaults; we provide the two initialisation families those defaults map
//! to — Glorot (Xavier) uniform for dense/conv kernels and He normal as an
//! alternative for ReLU stacks — plus a zero initialiser for biases.
//!
//! # Example
//!
//! ```
//! use mixnn_tensor::init;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let w = init::glorot_uniform(64, 32, vec![32, 64], &mut rng);
//! assert_eq!(w.len(), 32 * 64);
//! ```

use crate::Tensor;
use rand::Rng;

/// Glorot (Xavier) uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
///
/// `dims` is the shape of the produced tensor; `fan_in`/`fan_out` are passed
/// separately because for convolution kernels they include the receptive
/// field size, not just the matrix dimensions.
pub fn glorot_uniform<R: Rng + ?Sized>(
    fan_in: usize,
    fan_out: usize,
    dims: Vec<usize>,
    rng: &mut R,
) -> Tensor {
    let denom = (fan_in + fan_out).max(1) as f32;
    let a = (6.0 / denom).sqrt();
    Tensor::rand_uniform(dims, -a, a, rng)
}

/// He (Kaiming) normal initialisation: `N(0, sqrt(2 / fan_in))`.
pub fn he_normal<R: Rng + ?Sized>(fan_in: usize, dims: Vec<usize>, rng: &mut R) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    Tensor::randn(dims, 0.0, std, rng)
}

/// Zero initialisation, conventionally used for biases.
pub fn zeros(dims: Vec<usize>) -> Tensor {
    Tensor::zeros(dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn glorot_respects_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        let fan_in = 50;
        let fan_out = 30;
        let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
        let w = glorot_uniform(fan_in, fan_out, vec![fan_in * fan_out], &mut rng);
        assert!(w.data().iter().all(|&v| v > -a && v < a));
    }

    #[test]
    fn glorot_handles_zero_fans() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = glorot_uniform(0, 0, vec![4], &mut rng);
        assert!(w.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn he_normal_std_is_plausible() {
        let mut rng = StdRng::seed_from_u64(4);
        let fan_in = 128;
        let w = he_normal(fan_in, vec![40_000], &mut rng);
        let expected_std = (2.0 / fan_in as f32).sqrt();
        let mean = w.mean();
        let var = w.map(|v| v * v).mean() - mean * mean;
        assert!(mean.abs() < 0.01);
        assert!((var.sqrt() - expected_std).abs() / expected_std < 0.1);
    }

    #[test]
    fn zeros_is_all_zero() {
        assert!(zeros(vec![5]).data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn initialisers_are_deterministic_per_seed() {
        let a = glorot_uniform(4, 4, vec![8], &mut StdRng::seed_from_u64(11));
        let b = glorot_uniform(4, 4, vec![8], &mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
    }
}
