use std::error::Error;
use std::fmt;

/// Error type for all fallible tensor operations.
///
/// Every public constructor and operation on [`crate::Tensor`] that can be
/// misused returns this type instead of panicking, so callers (the NN layers,
/// the FL aggregation, the proxy) can surface shape bugs as recoverable
/// errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by the shape does not match the data
    /// buffer length.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors that must have identical shapes do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// A matrix operation was attempted on a tensor that is not 2-D, or with
    /// incompatible inner dimensions.
    IncompatibleMatmul {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Vec<usize>,
    },
    /// A zero-sized dimension or empty shape was supplied where it is not
    /// meaningful.
    EmptyTensor,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape volume {expected}"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch between {left:?} and {right:?}")
            }
            TensorError::IncompatibleMatmul { left, right } => {
                write!(f, "incompatible matmul operands {left:?} x {right:?}")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::EmptyTensor => write!(f, "operation not defined on an empty tensor"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            TensorError::LengthMismatch {
                expected: 4,
                actual: 3,
            },
            TensorError::ShapeMismatch {
                left: vec![2],
                right: vec![3],
            },
            TensorError::IncompatibleMatmul {
                left: vec![2, 2],
                right: vec![3, 3],
            },
            TensorError::IndexOutOfBounds {
                index: vec![5],
                shape: vec![2],
            },
            TensorError::EmptyTensor,
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
