//! Property-based tests for the tensor substrate.
//!
//! These encode the algebraic laws the rest of the workspace silently relies
//! on, most importantly the permutation invariance of the mean (the formal
//! core of MixNN's utility-equivalence theorem).

use mixnn_tensor::{vecmath, Tensor};
use proptest::prelude::*;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, len)
}

proptest! {
    #[test]
    fn add_commutes(a in small_vec(16), b in small_vec(16)) {
        let ta = Tensor::from_vec(vec![16], a).unwrap();
        let tb = Tensor::from_vec(vec![16], b).unwrap();
        prop_assert_eq!(ta.add(&tb).unwrap(), tb.add(&ta).unwrap());
    }

    #[test]
    fn sub_then_add_restores(a in small_vec(8), b in small_vec(8)) {
        let ta = Tensor::from_vec(vec![8], a).unwrap();
        let tb = Tensor::from_vec(vec![8], b).unwrap();
        let restored = ta.sub(&tb).unwrap().add(&tb).unwrap();
        for (x, y) in restored.data().iter().zip(ta.data()) {
            prop_assert!((x - y).abs() <= 1e-3_f32.max(y.abs() * 1e-5));
        }
    }

    #[test]
    fn scale_distributes_over_add(a in small_vec(8), b in small_vec(8), s in -10.0f32..10.0) {
        let ta = Tensor::from_vec(vec![8], a).unwrap();
        let tb = Tensor::from_vec(vec![8], b).unwrap();
        let lhs = ta.add(&tb).unwrap().scale(s);
        let rhs = ta.scale(s).add(&tb.scale(s)).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() <= 1e-2_f32.max(y.abs() * 1e-4));
        }
    }

    #[test]
    fn matmul_identity_is_noop(rows in 1usize..5, cols in 1usize..5, seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(vec![rows, cols], 0.0, 1.0, &mut rng);
        let id = Tensor::eye(cols);
        let prod = a.matmul(&id).unwrap();
        for (x, y) in prod.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn cosine_similarity_is_bounded(a in small_vec(12), b in small_vec(12)) {
        let c = vecmath::cosine_similarity(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&c));
    }

    #[test]
    fn cosine_is_scale_invariant(a in small_vec(12), b in small_vec(12), s in 0.1f32..50.0) {
        let base = vecmath::cosine_similarity(&a, &b);
        let scaled: Vec<f32> = a.iter().map(|v| v * s).collect();
        let c = vecmath::cosine_similarity(&scaled, &b);
        prop_assert!((base - c).abs() < 1e-3);
    }

    #[test]
    fn euclidean_triangle_inequality(a in small_vec(6), b in small_vec(6), c in small_vec(6)) {
        let ab = vecmath::euclidean_distance(&a, &b);
        let bc = vecmath::euclidean_distance(&b, &c);
        let ac = vecmath::euclidean_distance(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-3);
    }

    /// The FedAvg aggregation is invariant under any permutation of its
    /// inputs — the formal property MixNN's no-utility-loss claim rests on.
    #[test]
    fn mean_of_is_permutation_invariant(
        vectors in proptest::collection::vec(small_vec(10), 1..8),
        seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
        let refs: Vec<&[f32]> = vectors.iter().map(|v| v.as_slice()).collect();
        let mut shuffled = refs.clone();
        shuffled.shuffle(&mut StdRng::seed_from_u64(seed));
        let m1 = vecmath::mean_of(&refs).unwrap();
        let m2 = vecmath::mean_of(&shuffled).unwrap();
        for (x, y) in m1.iter().zip(m2.iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_is_a_distribution(a in small_vec(9)) {
        let s = vecmath::softmax(&a);
        let sum: f32 = s.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(s.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn reshape_round_trip(a in small_vec(24)) {
        let t = Tensor::from_vec(vec![24], a).unwrap();
        let r = t.reshape(vec![2, 3, 4]).unwrap().reshape(vec![24]).unwrap();
        prop_assert_eq!(t, r);
    }
}
