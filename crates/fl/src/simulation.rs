//! Round orchestration.

use crate::{
    AggregationServer, Dissemination, FlClient, FlConfig, FlError, ModelUpdate, UpdateTransport,
};
use mixnn_data::{Dataset, FederatedDataset};
use mixnn_nn::{Evaluation, ModelParams, Sequential, SoftmaxCrossEntropy};
use mixnn_telemetry::{Component, Counter, Distribution, Span, Telemetry, TraceKind};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Everything produced by one federated round.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// Round index (0-based).
    pub round: usize,
    /// What the server disseminated at the start of the round.
    pub disseminated: Dissemination,
    /// Ids of the clients selected this round, in the order their updates
    /// were produced.
    pub selected: Vec<usize>,
    /// The updates as observed by the server (after the transport).
    pub observed: Vec<ModelUpdate>,
    /// The new global model after aggregation.
    pub global_after: ModelParams,
}

/// A complete federated-learning simulation: clients, server and the round
/// loop of Figure 2.
///
/// The simulation is transport-agnostic — pass a [`crate::DirectTransport`]
/// for classic FL, a [`crate::NoisyTransport`] for the noisy-gradient
/// baseline, or the MixNN proxy transport from `mixnn-core`.
///
/// Client local training runs on a bounded pool of scoped threads
/// (`FlConfig::parallelism.client_workers`), with per-client seeds derived
/// from the master seed so the outcome is deterministic at every worker
/// count.
#[derive(Debug)]
pub struct FlSimulation {
    template: Sequential,
    cfg: FlConfig,
    clients: Vec<FlClient>,
    server: AggregationServer,
    sampler: StdRng,
    rounds_run: usize,
    telemetry: Telemetry,
}

impl FlSimulation {
    /// Builds a simulation over a federated population.
    ///
    /// `template` provides both the architecture and the initial global
    /// model weights.
    pub fn new(template: Sequential, cfg: FlConfig, population: &FederatedDataset) -> Self {
        let clients = population
            .participants()
            .iter()
            .map(|p| FlClient::new(p.id(), p.train().clone()))
            .collect();
        let initial = template.params();
        FlSimulation {
            template,
            clients,
            server: AggregationServer::new(initial),
            sampler: StdRng::seed_from_u64(cfg.seed ^ 0x5e1ec7),
            cfg,
            // rounds_run counts invocations of `run_round*`, used for seeding.
            rounds_run: 0,
            telemetry: mixnn_telemetry::noop(),
        }
    }

    /// Attaches a telemetry registry: each round records its span,
    /// participant count and lifecycle trace events. Only aggregate,
    /// selection-size-level figures are recorded — never per-client ids.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The architecture template (initial weights included).
    pub fn template(&self) -> &Sequential {
        &self.template
    }

    /// The configured hyper-parameters.
    pub fn config(&self) -> &FlConfig {
        &self.cfg
    }

    /// The clients in the simulation.
    pub fn clients(&self) -> &[FlClient] {
        &self.clients
    }

    /// The current global model.
    pub fn global(&self) -> &ModelParams {
        self.server.global()
    }

    /// Overwrites the global model (used by attack drivers to inject
    /// crafted models).
    pub fn set_global(&mut self, params: ModelParams) {
        self.server = AggregationServer::new(params);
    }

    /// Number of rounds executed so far.
    pub fn rounds_run(&self) -> usize {
        self.rounds_run
    }

    /// Samples the clients participating in the next round (without
    /// replacement, §6.1.4 style "the server aggregates N users").
    pub fn sample_clients(&mut self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.clients.iter().map(FlClient::id).collect();
        ids.shuffle(&mut self.sampler);
        ids.truncate(self.cfg.clients_per_round.max(1).min(ids.len()));
        ids.sort_unstable();
        ids
    }

    /// Runs one honest round: broadcast the current global model, train the
    /// sampled clients, relay through `transport`, aggregate.
    ///
    /// # Errors
    ///
    /// Propagates training, transport and aggregation failures.
    pub fn run_round(
        &mut self,
        transport: &mut dyn UpdateTransport,
    ) -> Result<RoundOutcome, FlError> {
        let selected = self.sample_clients();
        let dissemination = Dissemination::Broadcast(self.server.global().clone());
        self.run_round_with(&selected, dissemination, transport)
    }

    /// Runs one round with explicit client selection and dissemination —
    /// the entry point for active attacks, which send crafted per-client
    /// models.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::EmptyRound`] for an empty selection,
    /// [`FlError::UnknownClient`] / [`FlError::MissingModelFor`] for
    /// selection/dissemination mismatches, and propagates training,
    /// transport and aggregation failures.
    pub fn run_round_with(
        &mut self,
        selected: &[usize],
        dissemination: Dissemination,
        transport: &mut dyn UpdateTransport,
    ) -> Result<RoundOutcome, FlError> {
        if selected.is_empty() {
            return Err(FlError::EmptyRound);
        }
        let round = self.rounds_run;
        self.telemetry.trace(
            Component::Fl,
            None,
            TraceKind::RoundStarted {
                round: round as u64,
            },
        );
        let round_t0 = self.telemetry.now_ns();

        // Resolve clients and their disseminated models up front.
        let mut work: Vec<(&FlClient, &ModelParams, u64)> = Vec::with_capacity(selected.len());
        for &id in selected {
            let client = self
                .clients
                .iter()
                .find(|c| c.id() == id)
                .ok_or(FlError::UnknownClient { client_id: id })?;
            let model = dissemination
                .model_for(id)
                .ok_or(FlError::MissingModelFor { client_id: id })?;
            work.push((client, model, self.cfg.client_seed(round, id)));
        }

        // Parallel local training on a bounded worker pool
        // (`parallelism.client_workers`), deterministic via per-client
        // seeds: each client's result depends only on its own
        // (round, client) seed, so chunking across workers cannot change
        // the outcome — only the wall-clock.
        let cfg = self.cfg;
        let template = &self.template;
        let results: Vec<Result<ModelUpdate, FlError>> = crate::map_chunked(
            &work,
            cfg.parallelism.client_workers,
            |(client, model, seed)| client.train(template, model, &cfg, *seed),
        );

        let mut updates = Vec::with_capacity(results.len());
        for r in results {
            updates.push(r?);
        }

        let observed = transport.relay(updates)?;
        let global_after = self.server.aggregate(&observed)?.clone();
        self.rounds_run += 1;
        let elapsed_ns = self.telemetry.now_ns().saturating_sub(round_t0);
        self.telemetry.record_span_ns(Span::FlRound, elapsed_ns);
        self.telemetry.incr(Counter::FlRoundsCompleted, 1);
        self.telemetry
            .incr(Counter::FlClientsTrained, selected.len() as u64);
        self.telemetry
            .observe(Distribution::FlRoundParticipants, selected.len() as u64);
        self.telemetry.trace(
            Component::Fl,
            None,
            TraceKind::RoundCompleted {
                round: round as u64,
            },
        );
        Ok(RoundOutcome {
            round,
            disseminated: dissemination,
            selected: selected.to_vec(),
            observed,
            global_after,
        })
    }

    /// Evaluates the current global model on a dataset.
    ///
    /// # Errors
    ///
    /// Propagates model/data failures.
    pub fn evaluate_global(&self, data: &Dataset) -> Result<Evaluation, FlError> {
        let mut model = self.template.clone();
        model.set_params(self.server.global())?;
        let (x, y) = data.full_batch()?;
        Ok(model.evaluate(&x, &y, &SoftmaxCrossEntropy::new())?)
    }

    /// Evaluates the current global model on each participant's held-out
    /// data — the per-participant accuracies behind the Fig. 6 CDFs.
    ///
    /// # Errors
    ///
    /// Propagates model/data failures.
    pub fn evaluate_per_participant(
        &self,
        population: &FederatedDataset,
    ) -> Result<Vec<(usize, Evaluation)>, FlError> {
        let mut model = self.template.clone();
        model.set_params(self.server.global())?;
        let loss = SoftmaxCrossEntropy::new();
        let mut out = Vec::with_capacity(population.participants().len());
        for p in population.participants() {
            let (x, y) = p.test().full_batch()?;
            out.push((p.id(), model.evaluate(&x, &y, &loss)?));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DirectTransport;
    use mixnn_data::lfw_like;
    use mixnn_nn::zoo;
    use std::collections::HashMap;

    fn sim(seed: u64) -> (FlSimulation, FederatedDataset) {
        let fed = lfw_like(2).generate().unwrap();
        let dims = fed.spec().dims;
        let mut rng = StdRng::seed_from_u64(seed);
        let template = zoo::conv2_fc3(
            zoo::InputSpec::new(dims.channels, dims.height, dims.width),
            fed.spec().num_classes,
            2,
            8,
            &mut rng,
        );
        let cfg = FlConfig {
            rounds: 3,
            local_epochs: 1,
            batch_size: 16,
            clients_per_round: 6,
            seed,
            ..FlConfig::default()
        };
        (FlSimulation::new(template, cfg, &fed), fed)
    }

    #[test]
    fn round_produces_expected_shapes() {
        let (mut sim, _) = sim(1);
        let mut transport = DirectTransport::new();
        let outcome = sim.run_round(&mut transport).unwrap();
        assert_eq!(outcome.selected.len(), 6);
        assert_eq!(outcome.observed.len(), 6);
        assert_eq!(outcome.global_after, *sim.global());
        assert_eq!(sim.rounds_run(), 1);
    }

    #[test]
    fn rounds_are_deterministic() {
        let run = || {
            let (mut sim, _) = sim(7);
            let mut transport = DirectTransport::new();
            sim.run_round(&mut transport).unwrap();
            sim.run_round(&mut transport).unwrap();
            sim.global().clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rounds_are_identical_at_any_client_worker_count() {
        let run = |workers: usize| {
            let (mut sim, _) = sim(7);
            sim.cfg.parallelism = crate::Parallelism {
                client_workers: workers,
                ..crate::Parallelism::sequential()
            };
            let mut transport = DirectTransport::new();
            sim.run_round(&mut transport).unwrap();
            sim.global().clone()
        };
        let sequential = run(1);
        for workers in [2, 3, 8] {
            assert_eq!(sequential, run(workers), "workers={workers}");
        }
    }

    #[test]
    fn training_improves_global_accuracy() {
        let (mut sim, fed) = sim(3);
        let before = sim.evaluate_global(fed.global_test()).unwrap();
        let mut transport = DirectTransport::new();
        for _ in 0..3 {
            sim.run_round(&mut transport).unwrap();
        }
        let after = sim.evaluate_global(fed.global_test()).unwrap();
        assert!(
            after.accuracy > before.accuracy || after.loss < before.loss,
            "no improvement: acc {} -> {}, loss {} -> {}",
            before.accuracy,
            after.accuracy,
            before.loss,
            after.loss
        );
    }

    #[test]
    fn per_client_dissemination_requires_all_models() {
        let (mut sim, _) = sim(4);
        let selected = sim.sample_clients();
        let mut map = HashMap::new();
        map.insert(selected[0], sim.global().clone());
        let err = sim
            .run_round_with(
                &selected,
                Dissemination::PerClient(map),
                &mut DirectTransport::new(),
            )
            .unwrap_err();
        assert!(matches!(err, FlError::MissingModelFor { .. }));
    }

    #[test]
    fn unknown_client_is_rejected() {
        let (mut sim, _) = sim(5);
        let err = sim
            .run_round_with(
                &[999],
                Dissemination::Broadcast(sim.global().clone()),
                &mut DirectTransport::new(),
            )
            .unwrap_err();
        assert!(matches!(err, FlError::UnknownClient { client_id: 999 }));
    }

    #[test]
    fn empty_selection_is_rejected() {
        let (mut sim, _) = sim(6);
        let err = sim
            .run_round_with(
                &[],
                Dissemination::Broadcast(sim.global().clone()),
                &mut DirectTransport::new(),
            )
            .unwrap_err();
        assert_eq!(err, FlError::EmptyRound);
    }

    #[test]
    fn per_participant_evaluation_covers_population() {
        let (mut sim, fed) = sim(8);
        sim.run_round(&mut DirectTransport::new()).unwrap();
        let evals = sim.evaluate_per_participant(&fed).unwrap();
        assert_eq!(evals.len(), fed.len());
        for (_, e) in evals {
            assert!((0.0..=1.0).contains(&e.accuracy));
        }
    }

    #[test]
    fn sample_clients_respects_limit_and_population() {
        let (mut sim, fed) = sim(9);
        let ids = sim.sample_clients();
        assert_eq!(ids.len(), 6);
        let mut sorted = ids.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 6, "sampling must be without replacement");
        assert!(ids.iter().all(|&id| id < fed.len()));
    }
}
