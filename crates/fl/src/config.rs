//! Federated-learning hyper-parameters.

use crate::Parallelism;
use mixnn_core::codec::CompressionConfig;
use serde::{Deserialize, Serialize};

/// The local optimizer run by each participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Plain stochastic gradient descent — whose update-direction leak
    /// ∇Sim exploits directly.
    Sgd,
    /// Adam, the optimizer used in the paper's training runs (§6.1.4).
    Adam,
}

/// Hyper-parameters of a federated run.
///
/// Defaults are deliberately small; the per-dataset configurations from the
/// paper's §6.1.4 live in `mixnn-bench`.
///
/// # Example
///
/// ```
/// use mixnn_fl::{FlConfig, OptimizerKind};
///
/// let cfg = FlConfig {
///     rounds: 10,
///     clients_per_round: 16,
///     ..FlConfig::default()
/// };
/// assert_eq!(cfg.optimizer, OptimizerKind::Adam);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlConfig {
    /// Number of federated learning rounds.
    pub rounds: usize,
    /// Local epochs each client trains per round.
    pub local_epochs: usize,
    /// Local mini-batch size.
    pub batch_size: usize,
    /// Local learning rate.
    pub learning_rate: f32,
    /// Which optimizer clients run locally.
    pub optimizer: OptimizerKind,
    /// Clients aggregated per round (sampled without replacement).
    pub clients_per_round: usize,
    /// Master seed: fixes client sampling, batch order and model init.
    pub seed: u64,
    /// Worker counts for the concurrent pipeline (client training here;
    /// ingest/mixing knobs are consumed by the proxy in `mixnn-core`).
    /// Results are identical at every setting; only throughput changes.
    pub parallelism: Parallelism,
    /// Wire compression for update transports. Round-wide: every
    /// participant must share the mode, or per-layer envelope sizes
    /// fingerprint the clients that differ. Transports constructed from
    /// this config (`MixnnTransport::with_compression`,
    /// `CascadeCoordinator::set_compression`) adopt it; the lossless
    /// default keeps aggregates bit-identical to classic FL.
    pub compression: CompressionConfig,
}

impl Default for FlConfig {
    fn default() -> Self {
        FlConfig {
            rounds: 5,
            local_epochs: 2,
            batch_size: 32,
            learning_rate: 0.01,
            optimizer: OptimizerKind::Adam,
            clients_per_round: 8,
            seed: 0,
            // One worker per hardware thread by default: results are
            // identical at any worker count, so this only buys speed.
            parallelism: Parallelism::available(),
            compression: CompressionConfig::F32,
        }
    }
}

impl FlConfig {
    /// Derives the deterministic training seed for `client_id` in `round`.
    ///
    /// Clients train in parallel threads; giving each a seed derived from
    /// `(master seed, round, client)` keeps runs bit-reproducible however
    /// the threads are scheduled.
    pub fn client_seed(&self, round: usize, client_id: usize) -> u64 {
        // SplitMix64-style mixing of the three coordinates.
        let mut z = self
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(round as u64 + 1))
            .wrapping_add((client_id as u64) << 17);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_use_adam() {
        assert_eq!(FlConfig::default().optimizer, OptimizerKind::Adam);
    }

    #[test]
    fn client_seeds_are_distinct() {
        let cfg = FlConfig::default();
        let mut seeds = std::collections::HashSet::new();
        for round in 0..10 {
            for client in 0..50 {
                assert!(seeds.insert(cfg.client_seed(round, client)));
            }
        }
    }

    #[test]
    fn client_seed_depends_on_master_seed() {
        let a = FlConfig {
            seed: 1,
            ..FlConfig::default()
        };
        let b = FlConfig {
            seed: 2,
            ..FlConfig::default()
        };
        assert_ne!(a.client_seed(0, 0), b.client_seed(0, 0));
    }
}
