//! Update transports: the path from participants to the server.

use crate::{FlError, ModelUpdate};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The channel through which client updates reach the aggregation server.
///
/// `relay` receives the updates as produced by the participants and returns
/// **what the server observes**. Implementations model the defenses under
/// comparison:
///
/// * [`DirectTransport`] — classic FL: the server sees each participant's
///   exact update, attributed to its sender;
/// * [`NoisyTransport`] — the noisy-gradient baseline (local DP style);
/// * [`mixnn_core::MixnnTransport`] — the paper's proxy (the struct lives
///   in `mixnn-core`; its `UpdateTransport` impl lives below, because this
///   crate owns the trait and depends on the proxy crate).
pub trait UpdateTransport: std::fmt::Debug {
    /// Short name for experiment output (e.g. `"classic-fl"`).
    fn label(&self) -> &str;

    /// Relays a round's updates, returning the server-observed view.
    ///
    /// # Errors
    ///
    /// Implementations return [`FlError`] when updates are malformed or
    /// (for the proxy) fail decryption.
    fn relay(&mut self, updates: Vec<ModelUpdate>) -> Result<Vec<ModelUpdate>, FlError>;
}

/// Classic FL: updates pass through unchanged, fully attributable.
#[derive(Debug, Clone, Default)]
pub struct DirectTransport;

impl DirectTransport {
    /// Creates the identity transport.
    pub fn new() -> Self {
        DirectTransport
    }
}

impl UpdateTransport for DirectTransport {
    fn label(&self) -> &str {
        "classic-fl"
    }

    fn relay(&mut self, updates: Vec<ModelUpdate>) -> Result<Vec<ModelUpdate>, FlError> {
        Ok(updates)
    }
}

/// The noisy-gradient baseline of §6.1.3: each participant perturbs every
/// scalar of its update with Gaussian noise `N(0, σ²)` before upload, as in
/// local differential privacy.
///
/// Conceptually the noise is added on-device; modelling it in the transport
/// keeps the comparison pipeline uniform. The noise RNG is seeded per
/// transport, so runs are reproducible.
#[derive(Debug)]
pub struct NoisyTransport {
    sigma: f32,
    rng: StdRng,
}

impl NoisyTransport {
    /// Creates the noisy transport with noise scale `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite.
    pub fn new(sigma: f32, seed: u64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "noise scale must be non-negative"
        );
        NoisyTransport {
            sigma,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured noise scale.
    pub fn sigma(&self) -> f32 {
        self.sigma
    }
}

impl UpdateTransport for NoisyTransport {
    fn label(&self) -> &str {
        "noisy-gradient"
    }

    fn relay(&mut self, updates: Vec<ModelUpdate>) -> Result<Vec<ModelUpdate>, FlError> {
        Ok(updates
            .into_iter()
            .map(|u| ModelUpdate::new(u.client_id, u.params.perturbed(self.sigma, &mut self.rng)))
            .collect())
    }
}

impl UpdateTransport for mixnn_core::MixnnTransport {
    fn label(&self) -> &str {
        "mixnn"
    }

    fn relay(&mut self, updates: Vec<ModelUpdate>) -> Result<Vec<ModelUpdate>, FlError> {
        let slot_ids: Vec<usize> = updates.iter().map(|u| u.client_id).collect();
        let params = updates.into_iter().map(|u| u.params).collect();
        let mixed = self.relay_round(params).map_err(FlError::from)?;
        Ok(slot_ids
            .into_iter()
            .zip(mixed)
            .map(|(slot, params)| ModelUpdate::new(slot, params))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixnn_nn::{LayerParams, ModelParams};

    fn update(id: usize, v: &[f32]) -> ModelUpdate {
        ModelUpdate::new(
            id,
            ModelParams::from_layers(vec![LayerParams::from_values(v.to_vec())]),
        )
    }

    #[test]
    fn direct_transport_is_identity() {
        let mut t = DirectTransport::new();
        let updates = vec![update(0, &[1.0]), update(1, &[2.0])];
        assert_eq!(t.relay(updates.clone()).unwrap(), updates);
        assert_eq!(t.label(), "classic-fl");
    }

    #[test]
    fn noisy_transport_perturbs_every_update() {
        let mut t = NoisyTransport::new(1.0, 42);
        let updates = vec![update(0, &[1.0, 2.0]), update(1, &[3.0, 4.0])];
        let out = t.relay(updates.clone()).unwrap();
        assert_eq!(out.len(), 2);
        for (o, u) in out.iter().zip(&updates) {
            assert_eq!(o.client_id, u.client_id);
            assert_ne!(o.params, u.params);
        }
    }

    #[test]
    fn zero_sigma_is_identity() {
        let mut t = NoisyTransport::new(0.0, 0);
        let updates = vec![update(0, &[1.5])];
        assert_eq!(t.relay(updates.clone()).unwrap(), updates);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let updates = vec![update(0, &[1.0; 16])];
        let a = NoisyTransport::new(0.5, 9).relay(updates.clone()).unwrap();
        let b = NoisyTransport::new(0.5, 9).relay(updates.clone()).unwrap();
        let c = NoisyTransport::new(0.5, 10).relay(updates).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_panics() {
        let _ = NoisyTransport::new(-1.0, 0);
    }

    fn mixnn_transport() -> mixnn_core::MixnnTransport {
        use mixnn_core::{MixnnProxy, MixnnProxyConfig, TransportMode};
        use rand::rngs::StdRng;

        let mut rng = StdRng::seed_from_u64(5);
        let service = mixnn_enclave::AttestationService::new(&mut rng);
        let proxy = MixnnProxy::launch(
            MixnnProxyConfig {
                expected_signature: vec![2, 3],
                seed: 3,
                ..MixnnProxyConfig::default()
            },
            &service,
            &mut rng,
        );
        mixnn_core::MixnnTransport::new(proxy, TransportMode::Encrypted, 77)
    }

    #[test]
    fn mixnn_transport_preserves_slots_and_aggregate() {
        let mut t = mixnn_transport();
        assert_eq!(t.label(), "mixnn");
        let ins: Vec<ModelUpdate> = (0..6)
            .map(|i| {
                ModelUpdate::new(
                    i,
                    ModelParams::from_layers(vec![
                        LayerParams::from_values(vec![i as f32; 2]),
                        LayerParams::from_values(vec![-(i as f32); 3]),
                    ]),
                )
            })
            .collect();
        let outs = t.relay(ins.clone()).unwrap();
        let in_slots: Vec<usize> = ins.iter().map(|u| u.client_id).collect();
        let out_slots: Vec<usize> = outs.iter().map(|u| u.client_id).collect();
        assert_eq!(in_slots, out_slots);
        let a: Vec<ModelParams> = ins.into_iter().map(|u| u.params).collect();
        let b: Vec<ModelParams> = outs.into_iter().map(|u| u.params).collect();
        assert_eq!(ModelParams::mean(&a), ModelParams::mean(&b));
    }
}
