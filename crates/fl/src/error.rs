use mixnn_data::DataError;
use mixnn_nn::NnError;
use std::error::Error;
use std::fmt;

/// Error type for the federated-learning pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum FlError {
    /// A model operation failed (shape/label problems).
    Nn(NnError),
    /// A dataset operation failed.
    Data(DataError),
    /// A round was attempted with no participating clients.
    EmptyRound,
    /// Client updates cannot be aggregated because their layer signatures
    /// disagree (different architectures on the wire).
    IncompatibleUpdates {
        /// Signature of the first update.
        expected: Vec<usize>,
        /// Signature of the offending update.
        actual: Vec<usize>,
    },
    /// A per-client dissemination did not provide a model for a selected
    /// client.
    MissingModelFor {
        /// The client left without a model.
        client_id: usize,
    },
    /// A client id was not found in the simulation.
    UnknownClient {
        /// The offending id.
        client_id: usize,
    },
    /// The transport between participants and server failed (e.g. the
    /// MixNN proxy rejected a ciphertext).
    Transport {
        /// Human-readable failure description from the transport.
        message: String,
    },
    /// The transport timed out waiting for a round segment to arrive —
    /// packets were lost or a connection stalled past its deadline.
    /// Distinct from [`FlError::Transport`] so callers can treat it as
    /// transient (the round may succeed on retry or under a skip policy).
    Timeout {
        /// Human-readable description of the timed-out segment.
        message: String,
    },
}

impl fmt::Display for FlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlError::Nn(e) => write!(f, "model failure during federated round: {e}"),
            FlError::Data(e) => write!(f, "data failure during federated round: {e}"),
            FlError::EmptyRound => write!(f, "cannot run a federated round with zero clients"),
            FlError::IncompatibleUpdates { expected, actual } => write!(
                f,
                "incompatible update signatures: expected {expected:?}, got {actual:?}"
            ),
            FlError::MissingModelFor { client_id } => {
                write!(
                    f,
                    "per-client dissemination missing a model for client {client_id}"
                )
            }
            FlError::UnknownClient { client_id } => {
                write!(f, "client {client_id} is not part of the simulation")
            }
            FlError::Transport { message } => write!(f, "transport failure: {message}"),
            FlError::Timeout { message } => write!(f, "transport timeout: {message}"),
        }
    }
}

impl Error for FlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlError::Nn(e) => Some(e),
            FlError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for FlError {
    fn from(e: NnError) -> Self {
        FlError::Nn(e)
    }
}

impl From<DataError> for FlError {
    fn from(e: DataError) -> Self {
        FlError::Data(e)
    }
}

impl From<mixnn_core::ProxyError> for FlError {
    fn from(e: mixnn_core::ProxyError) -> Self {
        FlError::Transport {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_source() {
        let e: FlError = NnError::LayerCountMismatch {
            expected: 2,
            actual: 1,
        }
        .into();
        assert!(e.source().is_some());
        let e: FlError = DataError::IndexOutOfRange { index: 1, len: 0 }.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn proxy_errors_convert_to_transport_failures() {
        let e: FlError = mixnn_core::ProxyError::InsufficientUpdates { have: 0, need: 1 }.into();
        assert!(matches!(e, FlError::Transport { .. }));
        assert!(e.to_string().contains("needs 1 updates"));
    }

    #[test]
    fn timeout_is_distinct_from_generic_transport_failure() {
        let t = FlError::Timeout {
            message: "hop 1 -> hop 2 stalled".into(),
        };
        assert!(t.to_string().contains("transport timeout"));
        assert!(!matches!(t, FlError::Transport { .. }));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlError>();
    }
}
