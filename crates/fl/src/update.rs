//! Wire types of the federated protocol.

use mixnn_nn::ModelParams;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One participant's model update as observed at some point of the
/// pipeline.
///
/// `client_id` is the identity the *observer associates with the update's
/// transport slot* (e.g. the TCP connection it arrived on) — for classic FL
/// that is the true sender; after the MixNN proxy it is merely the slot
/// index, and the layers inside belong to random participants. Keeping the
/// field makes the inference-evaluation bookkeeping explicit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelUpdate {
    /// Identity attributed to this update by the observer (see type docs).
    pub client_id: usize,
    /// The per-layer parameters after local refinement.
    pub params: ModelParams,
}

impl ModelUpdate {
    /// Creates an update.
    pub fn new(client_id: usize, params: ModelParams) -> Self {
        ModelUpdate { client_id, params }
    }

    /// The gradient-direction view ∇Sim scores: `returned − disseminated`,
    /// flattened. Returns `None` on signature mismatch.
    pub fn gradient_from(&self, disseminated: &ModelParams) -> Option<Vec<f32>> {
        self.params.delta(disseminated).map(|d| d.flatten())
    }
}

/// What the server sends down at the start of a round.
#[derive(Debug, Clone, PartialEq)]
pub enum Dissemination {
    /// Honest protocol: every participant receives the same global model.
    Broadcast(ModelParams),
    /// Protocol abuse (active ∇Sim, §5): a specific model per participant.
    PerClient(HashMap<usize, ModelParams>),
}

impl Dissemination {
    /// The model participant `client_id` receives, if any.
    pub fn model_for(&self, client_id: usize) -> Option<&ModelParams> {
        match self {
            Dissemination::Broadcast(m) => Some(m),
            Dissemination::PerClient(map) => map.get(&client_id),
        }
    }

    /// Whether this dissemination deviates from the honest broadcast
    /// protocol.
    pub fn is_protocol_abuse(&self) -> bool {
        matches!(self, Dissemination::PerClient(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixnn_nn::LayerParams;

    fn params(v: &[f32]) -> ModelParams {
        ModelParams::from_layers(vec![LayerParams::from_values(v.to_vec())])
    }

    #[test]
    fn gradient_from_subtracts() {
        let update = ModelUpdate::new(3, params(&[2.0, 3.0]));
        let global = params(&[1.0, 1.0]);
        assert_eq!(update.gradient_from(&global).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn gradient_from_rejects_mismatch() {
        let update = ModelUpdate::new(0, params(&[1.0]));
        let global = params(&[1.0, 2.0]);
        assert!(update.gradient_from(&global).is_none());
    }

    #[test]
    fn dissemination_lookup() {
        let b = Dissemination::Broadcast(params(&[1.0]));
        assert!(b.model_for(42).is_some());
        assert!(!b.is_protocol_abuse());

        let mut map = HashMap::new();
        map.insert(1usize, params(&[2.0]));
        let p = Dissemination::PerClient(map);
        assert!(p.model_for(1).is_some());
        assert!(p.model_for(2).is_none());
        assert!(p.is_protocol_abuse());
    }
}
