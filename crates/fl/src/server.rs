//! The aggregation server.

use crate::{FlError, ModelUpdate};
use mixnn_nn::ModelParams;

/// The central aggregation server (step ❸ of Figure 2): averages client
/// updates per layer to form the next global model.
///
/// The server holds only `ModelParams`; it has no access to client data.
/// Whether it is honest, curious or malicious is decided by the code that
/// drives it (see `mixnn-attacks` for the malicious variants).
#[derive(Debug, Clone)]
pub struct AggregationServer {
    global: ModelParams,
    rounds_aggregated: usize,
}

impl AggregationServer {
    /// Creates a server with an initial global model.
    pub fn new(initial: ModelParams) -> Self {
        AggregationServer {
            global: initial,
            rounds_aggregated: 0,
        }
    }

    /// The current global model.
    pub fn global(&self) -> &ModelParams {
        &self.global
    }

    /// Number of aggregations performed.
    pub fn rounds_aggregated(&self) -> usize {
        self.rounds_aggregated
    }

    /// FedAvg: replaces the global model with the per-layer mean of the
    /// updates.
    ///
    /// This is the paper's `Agr` function (§4.2). Because the mean is
    /// computed per layer and is permutation-invariant across updates,
    /// aggregating MixNN-mixed updates yields exactly the same global model
    /// as aggregating the originals — the utility-equivalence theorem the
    /// integration tests verify bitwise.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::EmptyRound`] for an empty slice and
    /// [`FlError::IncompatibleUpdates`] when signatures disagree.
    pub fn aggregate(&mut self, updates: &[ModelUpdate]) -> Result<&ModelParams, FlError> {
        let first = updates.first().ok_or(FlError::EmptyRound)?;
        let expected = first.params.signature();
        for u in updates {
            if u.params.signature() != expected {
                return Err(FlError::IncompatibleUpdates {
                    expected,
                    actual: u.params.signature(),
                });
            }
        }
        let params: Vec<ModelParams> = updates.iter().map(|u| u.params.clone()).collect();
        self.global = ModelParams::mean(&params).expect("signatures verified above");
        self.rounds_aggregated += 1;
        Ok(&self.global)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixnn_nn::LayerParams;

    fn params(v: &[f32]) -> ModelParams {
        ModelParams::from_layers(vec![LayerParams::from_values(v.to_vec())])
    }

    #[test]
    fn aggregate_means_updates() {
        let mut server = AggregationServer::new(params(&[0.0, 0.0]));
        let updates = vec![
            ModelUpdate::new(0, params(&[1.0, 3.0])),
            ModelUpdate::new(1, params(&[3.0, 5.0])),
        ];
        let global = server.aggregate(&updates).unwrap();
        assert_eq!(global.layer(0).unwrap().values(), &[2.0, 4.0]);
        assert_eq!(server.rounds_aggregated(), 1);
    }

    #[test]
    fn empty_round_is_rejected() {
        let mut server = AggregationServer::new(params(&[0.0]));
        assert_eq!(server.aggregate(&[]), Err(FlError::EmptyRound));
    }

    #[test]
    fn incompatible_signatures_are_rejected() {
        let mut server = AggregationServer::new(params(&[0.0]));
        let updates = vec![
            ModelUpdate::new(0, params(&[1.0])),
            ModelUpdate::new(1, params(&[1.0, 2.0])),
        ];
        assert!(matches!(
            server.aggregate(&updates),
            Err(FlError::IncompatibleUpdates { .. })
        ));
        // Failed aggregation leaves the global model untouched.
        assert_eq!(server.global(), &params(&[0.0]));
    }

    #[test]
    fn aggregation_is_permutation_invariant() {
        let updates: Vec<ModelUpdate> = (0..5)
            .map(|i| ModelUpdate::new(i, params(&[i as f32, (i * i) as f32])))
            .collect();
        let mut reversed = updates.clone();
        reversed.reverse();
        let mut s1 = AggregationServer::new(params(&[0.0, 0.0]));
        let mut s2 = AggregationServer::new(params(&[0.0, 0.0]));
        assert_eq!(
            s1.aggregate(&updates).unwrap(),
            s2.aggregate(&reversed).unwrap()
        );
    }
}
