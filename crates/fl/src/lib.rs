//! Federated-learning substrate for the MixNN reproduction.
//!
//! Implements the classic FL pipeline of the paper's Figure 2: the server
//! disseminates a global model (❶), participants refine it locally on data
//! that never leaves the device (❷), and the server aggregates the
//! returned per-layer parameter updates by averaging (❸).
//!
//! Two aspects are deliberately first-class because the paper's threat
//! model needs them:
//!
//! * **[`Dissemination`]** — the server may [`Dissemination::Broadcast`]
//!   one model (honest behaviour) or send a *different* model to each
//!   participant ([`Dissemination::PerClient`]) — the protocol abuse behind
//!   the active ∇Sim attack (§5).
//! * **[`UpdateTransport`]** — the path updates take from participants to
//!   the server is pluggable: [`DirectTransport`] (classic FL, the server
//!   sees who sent what), [`NoisyTransport`] (the local-DP style noisy
//!   gradient baseline of §6.1.3), and — in the `mixnn-core` crate — the
//!   MixNN proxy itself.
//!
//! Everything is deterministic per seed; client training runs in parallel
//! threads with per-client derived seeds, so results are reproducible
//! regardless of thread scheduling.

#![deny(missing_docs)]

mod client;
mod config;
mod error;
mod server;
mod simulation;
mod transport;
mod update;

pub use client::{train_local, FlClient};
pub use config::{FlConfig, OptimizerKind};
pub use error::FlError;
// The shared concurrency core moved to `mixnn-core` (so the proxy pipeline
// and the cascade can use it without a dependency cycle); re-exported here
// under its historical path for compatibility.
pub use mixnn_core::{map_chunked, Parallelism};
pub use server::AggregationServer;
pub use simulation::{FlSimulation, RoundOutcome};
pub use transport::{DirectTransport, NoisyTransport, UpdateTransport};
pub use update::{Dissemination, ModelUpdate};
