//! Federated clients and local training.

use crate::{FlConfig, FlError, ModelUpdate, OptimizerKind};
use mixnn_data::Dataset;
use mixnn_nn::{Adam, ModelParams, Optimizer, Sequential, Sgd, SoftmaxCrossEntropy};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A federated participant's device: holds the local dataset and refines
/// disseminated models on it (step ❷ of the paper's Figure 2).
#[derive(Debug, Clone)]
pub struct FlClient {
    id: usize,
    data: Dataset,
}

impl FlClient {
    /// Creates a client with its local training data.
    pub fn new(id: usize, data: Dataset) -> Self {
        FlClient { id, data }
    }

    /// The client's identity on the wire.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The local dataset (never transmitted).
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Refines `global` locally and returns the parameter update.
    ///
    /// `template` supplies the architecture; its weights are overwritten
    /// with `global` before training. `seed` fixes batch shuffling, so a
    /// given (model, data, seed) triple always produces the same update.
    ///
    /// # Errors
    ///
    /// Propagates model/data failures as [`FlError`].
    pub fn train(
        &self,
        template: &Sequential,
        global: &ModelParams,
        cfg: &FlConfig,
        seed: u64,
    ) -> Result<ModelUpdate, FlError> {
        let params = train_local(template, global, &self.data, cfg, seed)?;
        Ok(ModelUpdate::new(self.id, params))
    }
}

/// Local refinement: load `global` into a copy of `template`, run
/// `cfg.local_epochs` epochs of mini-batch training on `data`, and return
/// the resulting parameters.
///
/// Exposed as a free function because the ∇Sim adversary uses the *same*
/// routine to build its per-attribute attack models from auxiliary data —
/// the fidelity of the attack depends on the attacker and the victims
/// running identical training.
///
/// # Errors
///
/// Propagates model/data failures as [`FlError`].
pub fn train_local(
    template: &Sequential,
    global: &ModelParams,
    data: &Dataset,
    cfg: &FlConfig,
    seed: u64,
) -> Result<ModelParams, FlError> {
    let mut model = template.clone();
    model.set_params(global)?;
    let loss = SoftmaxCrossEntropy::new();
    let mut optimizer: Box<dyn Optimizer> = match cfg.optimizer {
        OptimizerKind::Sgd => Box::new(Sgd::new(cfg.learning_rate)),
        OptimizerKind::Adam => Box::new(Adam::new(cfg.learning_rate)),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    for _epoch in 0..cfg.local_epochs {
        for batch in data.epoch_batches(cfg.batch_size, &mut rng) {
            let (x, y) = data.batch(&batch)?;
            model.train_batch(&x, &y, &loss, optimizer.as_mut())?;
        }
    }
    Ok(model.params())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixnn_data::{lfw_like, InputDims};
    use mixnn_nn::zoo;

    fn setup() -> (Sequential, Dataset, FlConfig) {
        let fed = lfw_like(5).generate().unwrap();
        let dims = fed.spec().dims;
        let mut rng = StdRng::seed_from_u64(0);
        let template = zoo::conv2_fc3(
            zoo::InputSpec::new(dims.channels, dims.height, dims.width),
            fed.spec().num_classes,
            2,
            8,
            &mut rng,
        );
        let data = fed.participants()[0].train().clone();
        let cfg = FlConfig {
            local_epochs: 1,
            batch_size: 16,
            ..FlConfig::default()
        };
        (template, data, cfg)
    }

    #[test]
    fn training_changes_parameters() {
        let (template, data, cfg) = setup();
        let global = template.params();
        let updated = train_local(&template, &global, &data, &cfg, 7).unwrap();
        assert_eq!(updated.signature(), global.signature());
        assert_ne!(updated, global);
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (template, data, cfg) = setup();
        let global = template.params();
        let a = train_local(&template, &global, &data, &cfg, 7).unwrap();
        let b = train_local(&template, &global, &data, &cfg, 7).unwrap();
        assert_eq!(a, b);
        let c = train_local(&template, &global, &data, &cfg, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn client_update_carries_identity() {
        let (template, data, cfg) = setup();
        let client = FlClient::new(9, data);
        let update = client
            .train(&template, &template.params(), &cfg, 1)
            .unwrap();
        assert_eq!(update.client_id, 9);
    }

    #[test]
    fn training_reduces_local_loss() {
        let (template, data, cfg) = setup();
        let cfg = FlConfig {
            local_epochs: 4,
            ..cfg
        };
        let global = template.params();
        let updated = train_local(&template, &global, &data, &cfg, 3).unwrap();
        let loss = SoftmaxCrossEntropy::new();
        let (x, y) = data.full_batch().unwrap();
        let mut before = template.clone();
        before.set_params(&global).unwrap();
        let mut after = template.clone();
        after.set_params(&updated).unwrap();
        let l_before = before.evaluate(&x, &y, &loss).unwrap().loss;
        let l_after = after.evaluate(&x, &y, &loss).unwrap().loss;
        assert!(
            l_after < l_before,
            "local training failed to reduce loss ({l_before} -> {l_after})"
        );
    }

    #[test]
    fn wrong_architecture_is_rejected() {
        let (template, data, cfg) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let other = zoo::mlp(&[4, 3], &mut rng);
        let global = other.params();
        assert!(train_local(&template, &global, &data, &cfg, 0).is_err());
        let _ = InputDims::new(1, 1, 1);
    }
}
