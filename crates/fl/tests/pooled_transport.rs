//! Integration: a federated round relayed through the continuous mix
//! pool ([`PooledCascadeTransport`]) must aggregate exactly like classic
//! FL — pooling trickled arrivals into partial rounds and padding them
//! with hop-generated cover is invisible to the learning loop.

use mixnn_cascade::{
    CascadeCoordinator, FailurePolicy, PoolConfig, PooledCascadeTransport, PooledCoordinator,
};
use mixnn_data::lfw_like;
use mixnn_enclave::AttestationService;
use mixnn_fl::{DirectTransport, FlConfig, FlSimulation};
use mixnn_nn::zoo;
use mixnn_telemetry::{Registry, VirtualClock};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn pooled_cascade_transport_drives_a_full_fl_round() {
    let fed = lfw_like(2).generate().unwrap();
    let dims = fed.spec().dims;
    let mut rng = StdRng::seed_from_u64(5);
    let template = zoo::conv2_fc3(
        zoo::InputSpec::new(dims.channels, dims.height, dims.width),
        fed.spec().num_classes,
        2,
        8,
        &mut rng,
    );
    let cfg = FlConfig {
        rounds: 1,
        local_epochs: 1,
        batch_size: 16,
        clients_per_round: 5,
        seed: 5,
        ..FlConfig::default()
    };
    let layer_signature = template.params().signature();

    let pooled_run = || {
        let mut sim = FlSimulation::new(template.clone(), cfg, &fed);
        let mut rng = StdRng::seed_from_u64(6);
        let service = AttestationService::new(&mut rng);
        let cascade = CascadeCoordinator::linear(
            layer_signature.clone(),
            3,
            21,
            FailurePolicy::Abort,
            &service,
            &mut rng,
        )
        .unwrap();
        // k = 2 with a 2 ms deadline against a 10 ms arrival spread: the
        // five participants commit over several partial rounds, at least
        // one of them under-full and dummy-padded.
        let pool = PooledCoordinator::new(
            cascade,
            PoolConfig {
                k: 2,
                deadline_ns: 2_000_000,
            },
            77,
        )
        .unwrap();
        let telemetry = Registry::with_virtual_clock(VirtualClock::new()).shared();
        let mut transport = PooledCascadeTransport::new(pool, telemetry, 10_000_000).unwrap();
        sim.run_round(&mut transport).unwrap();

        // The pool really did split the round and pad the remainder.
        let rounds = transport.last_rounds();
        assert!(rounds.len() > 1, "5 clients at k=2 must fire several pools");
        let total_real: usize = rounds.iter().map(|r| r.real()).sum();
        assert_eq!(total_real, 5, "every participant commits exactly once");
        for round in rounds {
            assert!(
                round.real() + round.dummies() >= 2,
                "the k-floor holds on every fired pool"
            );
        }
        assert!(
            rounds.iter().any(|r| r.dummies() > 0),
            "an odd participant count forces at least one padded pool"
        );
        sim.global().clone()
    };

    let direct_run = || {
        let mut sim = FlSimulation::new(template.clone(), cfg, &fed);
        sim.run_round(&mut DirectTransport::new()).unwrap();
        sim.global().clone()
    };

    assert_eq!(
        direct_run(),
        pooled_run(),
        "pooled mixing with cover must not change the aggregated global model"
    );
}
