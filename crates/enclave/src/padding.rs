//! Constant-cost execution padding.
//!
//! §4.3: *"To avoid side-channel attacks against SGX, the cost (i.e., the
//! execution time) to process an update is constantly the same."* §6.5 adds
//! that the constant processing time over all updates for a given model
//! reduces the side-channel surface.
//!
//! [`CostPadder`] wraps an operation and pads its wall-clock duration to a
//! configured target. Two modes:
//!
//! * [`PaddingMode::Sleep`] — actually busy-waits out the remainder, for
//!   the system-performance benches where real timing matters;
//! * [`PaddingMode::Accounting`] — only records what the padded duration
//!   *would* be, for tests and simulations that must stay fast.

use std::time::{Duration, Instant};

/// How the padder enforces the constant cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaddingMode {
    /// Busy-wait until the target duration has elapsed.
    Sleep,
    /// Record the padded duration without actually waiting.
    Accounting,
}

/// Statistics of padded executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PaddingStats {
    /// Number of operations run through the padder.
    pub operations: u64,
    /// Number of operations whose real cost exceeded the target (timing
    /// leaks — should be zero with a correctly provisioned target).
    pub overruns: u64,
}

/// Pads operations to a constant duration.
///
/// # Example
///
/// ```
/// use mixnn_enclave::{CostPadder, PaddingMode};
/// use std::time::Duration;
///
/// let mut padder = CostPadder::new(Duration::from_millis(1), PaddingMode::Accounting);
/// let (value, padded) = padder.run(|| 21 * 2);
/// assert_eq!(value, 42);
/// assert!(padded >= Duration::from_millis(1));
/// ```
#[derive(Debug, Clone)]
pub struct CostPadder {
    target: Duration,
    mode: PaddingMode,
    stats: PaddingStats,
}

impl CostPadder {
    /// Creates a padder with the given constant target cost.
    pub fn new(target: Duration, mode: PaddingMode) -> Self {
        CostPadder {
            target,
            mode,
            stats: PaddingStats::default(),
        }
    }

    /// The configured target duration.
    pub fn target(&self) -> Duration {
        self.target
    }

    /// Observed statistics.
    pub fn stats(&self) -> PaddingStats {
        self.stats
    }

    /// Runs `f`, padding its duration to the target. Returns the value and
    /// the *effective* (padded) duration.
    ///
    /// If the real execution overruns the target, the overrun is recorded
    /// in [`PaddingStats::overruns`] and the real duration is returned —
    /// an operator signal that the target must be raised.
    pub fn run<T>(&mut self, f: impl FnOnce() -> T) -> (T, Duration) {
        let start = Instant::now();
        let value = f();
        let elapsed = start.elapsed();
        self.stats.operations += 1;
        if elapsed >= self.target {
            if elapsed > self.target {
                self.stats.overruns += 1;
            }
            return (value, elapsed);
        }
        match self.mode {
            PaddingMode::Sleep => {
                // Busy-wait: `thread::sleep` has millisecond-scale jitter,
                // which would itself be a timing signal.
                while start.elapsed() < self.target {
                    std::hint::spin_loop();
                }
                (value, start.elapsed())
            }
            PaddingMode::Accounting => (value, self.target),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_mode_reports_target_without_waiting() {
        let mut padder = CostPadder::new(Duration::from_secs(3600), PaddingMode::Accounting);
        let begin = Instant::now();
        let (v, d) = padder.run(|| 5);
        assert_eq!(v, 5);
        assert_eq!(d, Duration::from_secs(3600));
        assert!(begin.elapsed() < Duration::from_secs(1));
        assert_eq!(padder.stats().operations, 1);
        assert_eq!(padder.stats().overruns, 0);
    }

    #[test]
    fn sleep_mode_pads_to_target() {
        let target = Duration::from_millis(5);
        let mut padder = CostPadder::new(target, PaddingMode::Sleep);
        let (_, d) = padder.run(|| ());
        assert!(d >= target, "padded duration {d:?} below target");
        // Same target for a slower op.
        let (_, d2) = padder.run(|| std::thread::sleep(Duration::from_millis(1)));
        assert!(d2 >= target);
    }

    #[test]
    fn overruns_are_counted() {
        let mut padder = CostPadder::new(Duration::from_nanos(1), PaddingMode::Accounting);
        padder.run(|| std::thread::sleep(Duration::from_millis(2)));
        assert_eq!(padder.stats().overruns, 1);
    }

    #[test]
    fn padded_durations_are_constant_across_variable_work() {
        let mut padder = CostPadder::new(Duration::from_millis(50), PaddingMode::Accounting);
        let (_, fast) = padder.run(|| ());
        let (_, slow) = padder.run(|| {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc)
        });
        assert_eq!(fast, slow, "constant-cost invariant violated");
    }
}
