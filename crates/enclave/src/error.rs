use mixnn_crypto::CryptoError;
use std::error::Error;
use std::fmt;

/// Error type for enclave operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnclaveError {
    /// An allocation would exceed the usable EPC and paging is disabled.
    MemoryExhausted {
        /// Bytes requested by the allocation.
        requested: usize,
        /// Bytes still available inside the EPC.
        available: usize,
    },
    /// A free was attempted for more bytes than are allocated (accounting
    /// bug in the caller).
    FreeUnderflow {
        /// Bytes the caller tried to free.
        requested: usize,
        /// Bytes currently allocated.
        allocated: usize,
    },
    /// A cryptographic step failed (decryption, unsealing, quote
    /// verification).
    Crypto(CryptoError),
    /// A quote did not match the expected enclave measurement.
    MeasurementMismatch,
    /// An index was out of range for an oblivious buffer.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Buffer capacity.
        capacity: usize,
    },
}

impl fmt::Display for EnclaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnclaveError::MemoryExhausted {
                requested,
                available,
            } => write!(
                f,
                "enclave memory exhausted: requested {requested} bytes, {available} available"
            ),
            EnclaveError::FreeUnderflow {
                requested,
                allocated,
            } => write!(
                f,
                "free underflow: tried to free {requested} bytes with {allocated} allocated"
            ),
            EnclaveError::Crypto(e) => write!(f, "enclave crypto failure: {e}"),
            EnclaveError::MeasurementMismatch => {
                write!(f, "quote does not match the expected enclave measurement")
            }
            EnclaveError::IndexOutOfRange { index, capacity } => {
                write!(f, "index {index} out of range for capacity {capacity}")
            }
        }
    }
}

impl Error for EnclaveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EnclaveError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CryptoError> for EnclaveError {
    fn from(e: CryptoError) -> Self {
        EnclaveError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crypto_errors_convert_with_source() {
        let e: EnclaveError = CryptoError::AuthenticationFailed.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn messages_mention_numbers() {
        let e = EnclaveError::MemoryExhausted {
            requested: 100,
            available: 10,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EnclaveError>();
    }
}
