//! Oblivious storage (ZeroTrace substitution).
//!
//! §4.3: *"To avoid side-channel attack based on memory access, ORAM
//! mechanisms (e.g., ZeroTrace) can be adopted to carry out secure and
//! oblivious access of data."* A full path-ORAM is overkill for the proxy's
//! small per-layer lists, so this module provides the standard small-domain
//! alternative with the same access-pattern guarantee: **linear scan** —
//! every operation touches every slot, so the physical access sequence is
//! independent of the logical index. The paper itself notes the overhead is
//! "negligible in our context where updates are sent only periodically".

use crate::EnclaveError;

/// Fixed-capacity buffer whose reads, writes and swaps touch **every**
/// slot, hiding which logical index was accessed.
///
/// This is the data structure backing the proxy's per-layer mixing lists:
/// `sample_swap` implements the paper's "pick at random and remove one
/// element in each list, then fill the hole with the incoming update" in a
/// single oblivious pass.
///
/// # Example
///
/// ```
/// use mixnn_enclave::ObliviousBuffer;
///
/// # fn main() -> Result<(), mixnn_enclave::EnclaveError> {
/// let mut buf = ObliviousBuffer::new(vec![10u32, 20, 30]);
/// assert_eq!(buf.read(1)?, 20);
/// let old = buf.swap(1, 99)?;
/// assert_eq!(old, 20);
/// assert_eq!(buf.read(1)?, 99);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ObliviousBuffer<T> {
    slots: Vec<T>,
    accesses: u64,
}

impl<T: Clone> ObliviousBuffer<T> {
    /// Creates a buffer over the given initial slots.
    pub fn new(slots: Vec<T>) -> Self {
        ObliviousBuffer { slots, accesses: 0 }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total slot touches performed so far (each operation adds
    /// `capacity()` touches — the observable invariant of obliviousness).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    fn check(&self, index: usize) -> Result<(), EnclaveError> {
        if index >= self.slots.len() {
            return Err(EnclaveError::IndexOutOfRange {
                index,
                capacity: self.slots.len(),
            });
        }
        Ok(())
    }

    /// Reads slot `index` by scanning the whole buffer.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::IndexOutOfRange`] for a bad index.
    pub fn read(&mut self, index: usize) -> Result<T, EnclaveError> {
        self.check(index)?;
        let mut result: Option<T> = None;
        for (i, slot) in self.slots.iter().enumerate() {
            // Touch every slot; keep only the requested one. The clone cost
            // is paid for the selected slot only, but the *memory access
            // pattern* (one read per slot) is index-independent.
            let selected = i == index;
            if selected {
                result = Some(slot.clone());
            } else {
                // Read the slot so the access pattern is uniform.
                let _ = slot;
            }
            self.accesses += 1;
        }
        Ok(result.expect("index checked"))
    }

    /// Replaces slot `index` with `value`, returning the previous content,
    /// scanning the whole buffer.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::IndexOutOfRange`] for a bad index.
    pub fn swap(&mut self, index: usize, value: T) -> Result<T, EnclaveError> {
        self.check(index)?;
        let mut incoming = value;
        let mut extracted: Option<T> = None;
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if i == index {
                std::mem::swap(slot, &mut incoming);
                extracted = Some(incoming.clone());
            } else {
                let _ = &*slot;
            }
            self.accesses += 1;
        }
        Ok(extracted.expect("index checked"))
    }

    /// The proxy's core mixing primitive: obliviously swap `value` into the
    /// slot at `index` (chosen by the caller's RNG) and return the element
    /// that was there.
    ///
    /// Identical to [`ObliviousBuffer::swap`]; the alias exists so proxy
    /// code reads like the paper's description.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::IndexOutOfRange`] for a bad index.
    pub fn sample_swap(&mut self, index: usize, value: T) -> Result<T, EnclaveError> {
        self.swap(index, value)
    }

    /// A snapshot of all slots (used when the proxy drains its lists in
    /// batch mode).
    pub fn drain_clone(&mut self) -> Vec<T> {
        self.accesses += self.slots.len() as u64;
        self.slots.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_returns_requested_slot() {
        let mut buf = ObliviousBuffer::new(vec![1, 2, 3]);
        assert_eq!(buf.read(0).unwrap(), 1);
        assert_eq!(buf.read(2).unwrap(), 3);
    }

    #[test]
    fn every_operation_touches_every_slot() {
        let mut buf = ObliviousBuffer::new(vec![0u8; 7]);
        assert_eq!(buf.accesses(), 0);
        buf.read(3).unwrap();
        assert_eq!(buf.accesses(), 7);
        buf.swap(0, 9).unwrap();
        assert_eq!(buf.accesses(), 14);
        // Access count is independent of the index used.
        buf.read(6).unwrap();
        assert_eq!(buf.accesses(), 21);
    }

    #[test]
    fn swap_round_trip() {
        let mut buf = ObliviousBuffer::new(vec!["a".to_string(), "b".to_string()]);
        let old = buf.swap(1, "z".to_string()).unwrap();
        assert_eq!(old, "b");
        assert_eq!(buf.read(1).unwrap(), "z");
        assert_eq!(buf.read(0).unwrap(), "a");
    }

    #[test]
    fn out_of_range_is_rejected() {
        let mut buf = ObliviousBuffer::new(vec![1]);
        assert!(matches!(
            buf.read(1),
            Err(EnclaveError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            buf.swap(5, 0),
            Err(EnclaveError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn drain_clone_returns_all() {
        let mut buf = ObliviousBuffer::new(vec![5, 6]);
        assert_eq!(buf.drain_clone(), vec![5, 6]);
    }

    #[test]
    fn empty_buffer_capacity() {
        let buf: ObliviousBuffer<u8> = ObliviousBuffer::new(Vec::new());
        assert_eq!(buf.capacity(), 0);
    }
}
