//! Simulated Intel SGX enclave runtime for the MixNN proxy.
//!
//! The paper deploys the proxy inside an SGX enclave (§2.5, §4.3) and its
//! §6.5 evaluation hinges on three enclave realities, all of which this
//! crate models faithfully:
//!
//! * **EPC memory budget** — "only 96 MB out of the 128 reserved for the
//!   enclave can be used by applications"; exceeding it forces expensive
//!   encrypted paging. [`EpcBudget`] enforces exactly that arithmetic and
//!   counts paging events.
//! * **Attestation** — enclaves prove the code they run ([`Measurement`],
//!   [`Quote`], [`AttestationService`]); participants only provision their
//!   updates after verifying the quote.
//! * **Side-channel discipline** — processing cost must not depend on the
//!   data (§4.3). [`CostPadder`] pads operations to a constant duration and
//!   [`ObliviousBuffer`] provides linear-scan (ZeroTrace-style) storage
//!   whose access pattern is independent of the accessed index.
//!
//! The cryptography (sealing, quotes, the enclave key pair) is real —
//! borrowed from [`mixnn_crypto`] — only the *isolation* is simulated,
//! since no SGX hardware is available in this environment. The substitution
//! is recorded in `DESIGN.md`.

#![deny(missing_docs)]

mod attestation;
mod enclave;
mod error;
mod memory;
mod oblivious;
mod padding;
mod sealing;

pub use attestation::{AttestationService, Measurement, Quote};
pub use enclave::{Enclave, EnclaveConfig};
pub use error::EnclaveError;
pub use memory::{EpcBudget, MemoryStats};
pub use oblivious::ObliviousBuffer;
pub use padding::{CostPadder, PaddingMode, PaddingStats};
pub use sealing::{seal_data, unseal_data, SealingKey};
