//! The enclave runtime object.

use crate::{
    seal_data, unseal_data, AttestationService, EnclaveError, EpcBudget, Measurement, Quote,
    SealingKey,
};
use mixnn_crypto::{CryptoError, KeyPair, PublicKey, SealedBox};
use rand::Rng;

/// Configuration of a simulated enclave.
#[derive(Debug, Clone)]
pub struct EnclaveConfig {
    /// Canonical description of the code to be measured (MRENCLAVE input).
    pub code_identity: Vec<u8>,
    /// Usable EPC bytes. Defaults to the paper's 96 MiB.
    pub epc_limit: usize,
    /// Whether the enclave may page past the EPC limit (SGX2 dynamic
    /// memory) instead of failing allocations.
    pub allow_paging: bool,
}

impl Default for EnclaveConfig {
    fn default() -> Self {
        EnclaveConfig {
            code_identity: b"mixnn proxy enclave v1".to_vec(),
            epc_limit: crate::memory::DEFAULT_USABLE_EPC,
            allow_paging: false,
        }
    }
}

/// A launched (simulated) SGX enclave: key pair, measurement, memory
/// budget and sealing identity.
///
/// The MixNN proxy runs inside one of these. Participants verify the
/// enclave's [`Quote`] (binding the code measurement to the enclave public
/// key) before encrypting their model updates to it.
///
/// # Example
///
/// ```
/// use mixnn_enclave::{AttestationService, Enclave, EnclaveConfig};
/// use mixnn_crypto::SealedBox;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), mixnn_enclave::EnclaveError> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let service = AttestationService::new(&mut rng);
/// let enclave = Enclave::launch(EnclaveConfig::default(), &service, &mut rng);
///
/// // A participant verifies the quote, then encrypts to the enclave.
/// let expected = Enclave::expected_measurement(&EnclaveConfig::default());
/// assert!(service.verify_quote(enclave.quote(), &expected));
/// let sealed = SealedBox::seal(b"update", enclave.public_key(), &mut rng)?;
/// assert_eq!(enclave.decrypt(&sealed)?, b"update");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Enclave {
    keypair: KeyPair,
    measurement: Measurement,
    quote: Quote,
    memory: EpcBudget,
    sealing_key: SealingKey,
}

impl Enclave {
    /// Launches an enclave: measures the code, generates the key pair and
    /// obtains a quote binding the public key to the measurement.
    pub fn launch<R: Rng + ?Sized>(
        config: EnclaveConfig,
        attestation: &AttestationService,
        rng: &mut R,
    ) -> Self {
        let measurement = Measurement::of_code(&config.code_identity);
        let keypair = KeyPair::generate(rng);
        // Bind the enclave's encryption key into the quote's report data so
        // a man in the middle cannot substitute its own key.
        let report_data = mixnn_crypto::sha256::digest(keypair.public().as_bytes());
        let quote = attestation.issue_quote(measurement, &report_data);
        let memory = if config.allow_paging {
            EpcBudget::paging(config.epc_limit)
        } else {
            EpcBudget::strict(config.epc_limit)
        };
        Enclave {
            keypair,
            measurement,
            quote,
            memory,
            sealing_key: SealingKey::generate(rng),
        }
    }

    /// The measurement a verifier should expect for a given configuration.
    pub fn expected_measurement(config: &EnclaveConfig) -> Measurement {
        Measurement::of_code(&config.code_identity)
    }

    /// The enclave's public encryption key (`k_pub` in the paper).
    pub fn public_key(&self) -> &PublicKey {
        self.keypair.public()
    }

    /// The enclave's code measurement.
    pub fn measurement(&self) -> &Measurement {
        &self.measurement
    }

    /// The launch-time attestation quote (report data = SHA-256 of the
    /// public key).
    pub fn quote(&self) -> &Quote {
        &self.quote
    }

    /// Verifies that this enclave's quote binds its own public key — the
    /// check a participant performs before provisioning.
    pub fn quote_binds_key(&self) -> bool {
        self.quote.binds_key(self.keypair.public())
    }

    /// Memory accounting handle. The budget's counters are atomic, so this
    /// shared handle is all the proxy (and its parallel ingest workers)
    /// need to charge and release EPC bytes.
    pub fn memory(&self) -> &EpcBudget {
        &self.memory
    }

    /// Decrypts a sealed box addressed to the enclave, charging the
    /// plaintext against the EPC budget for the duration of the call.
    ///
    /// Takes `&self`: decryption touches no mutable enclave state (the EPC
    /// accounting is atomic), so sealed updates can be opened from many
    /// ingest workers concurrently.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::Crypto`] with
    /// [`CryptoError::BadLength`] if the blob is shorter than the sealed-box
    /// overhead (rejected up front, before any EPC charge),
    /// [`EnclaveError::MemoryExhausted`] if the plaintext does not fit in
    /// the EPC (strict mode), or [`EnclaveError::Crypto`] if decryption
    /// fails.
    pub fn decrypt(&self, sealed: &[u8]) -> Result<Vec<u8>, EnclaveError> {
        let plaintext_len = Self::plaintext_len(sealed.len())?;
        self.memory.allocate(plaintext_len)?;
        let result = SealedBox::open(sealed, &self.keypair);
        // The transient decryption buffer is released either way.
        self.memory.free(plaintext_len)?;
        Ok(result?)
    }

    /// Plaintext length implied by a sealed blob's length, rejecting blobs
    /// too short to even carry the sealed-box header. A truncated blob must
    /// not be charged as a zero-byte allocation — that would let garbage
    /// bypass EPC accounting entirely.
    fn plaintext_len(sealed_len: usize) -> Result<usize, EnclaveError> {
        sealed_len
            .checked_sub(mixnn_crypto::sealed_box::OVERHEAD)
            .ok_or(EnclaveError::Crypto(CryptoError::BadLength {
                expected: "at least 64 bytes",
                actual: sealed_len,
            }))
    }

    /// Opens a batch of sealed boxes addressed to the enclave **without**
    /// touching the EPC budget: one result per input, in order.
    ///
    /// This is the pure half of batched ingestion — the X25519 shared
    /// secrets for the whole batch are derived together (shared bit
    /// schedule, one Montgomery-trick inversion), which is where the
    /// per-envelope decryption savings come from. Pair each result with
    /// [`Enclave::charge_opened`] to replay the exact EPC accounting
    /// [`Enclave::decrypt`] would have performed.
    pub fn open_batch<T: AsRef<[u8]>>(&self, sealed: &[T]) -> Vec<Result<Vec<u8>, CryptoError>> {
        SealedBox::open_batch(sealed, &self.keypair)
    }

    /// Replays [`Enclave::decrypt`]'s EPC accounting for one envelope whose
    /// cryptographic opening was already performed (by
    /// [`Enclave::open_batch`]).
    ///
    /// For every blob `s`,
    /// `decrypt(s) == charge_opened(s.len(), SealedBox::open(s, keypair))`
    /// — same result, same sequence of EPC operations. Batched callers use
    /// this to interleave their own allocations between envelopes in the
    /// exact order sequential ingestion would, so accept/reject patterns
    /// under tight EPC budgets are bit-for-bit identical.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Enclave::decrypt`].
    pub fn charge_opened(
        &self,
        sealed_len: usize,
        opened: Result<Vec<u8>, CryptoError>,
    ) -> Result<Vec<u8>, EnclaveError> {
        let plaintext_len = Self::plaintext_len(sealed_len)?;
        self.memory.allocate(plaintext_len)?;
        // Decryption itself is pure; the transient buffer decrypt() charges
        // for the duration of SealedBox::open is released immediately.
        self.memory.free(plaintext_len)?;
        Ok(opened?)
    }

    /// Batched [`Enclave::decrypt`]: opens every blob with the batched
    /// kernels, then replays the per-envelope EPC accounting in order.
    ///
    /// Equivalent to calling [`Enclave::decrypt`] on each element, only
    /// faster.
    pub fn decrypt_batch<T: AsRef<[u8]>>(
        &self,
        sealed: &[T],
    ) -> Vec<Result<Vec<u8>, EnclaveError>> {
        self.open_batch(sealed)
            .into_iter()
            .zip(sealed)
            .map(|(opened, s)| self.charge_opened(s.as_ref().len(), opened))
            .collect()
    }

    /// Seals `data` to this enclave's identity for storage outside the EPC.
    pub fn seal<R: Rng + ?Sized>(&self, data: &[u8], rng: &mut R) -> Vec<u8> {
        seal_data(&self.sealing_key, &self.measurement, data, rng)
    }

    /// Unseals data previously sealed by this enclave.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::Crypto`] on authentication failure.
    pub fn unseal(&self, sealed: &[u8]) -> Result<Vec<u8>, EnclaveError> {
        unseal_data(&self.sealing_key, &self.measurement, sealed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn launch() -> (Enclave, AttestationService, StdRng) {
        let mut rng = StdRng::seed_from_u64(3);
        let service = AttestationService::new(&mut rng);
        let enclave = Enclave::launch(EnclaveConfig::default(), &service, &mut rng);
        (enclave, service, rng)
    }

    #[test]
    fn quote_verifies_against_expected_measurement() {
        let (enclave, service, _) = launch();
        let expected = Enclave::expected_measurement(&EnclaveConfig::default());
        assert!(service.verify_quote(enclave.quote(), &expected));
        assert!(enclave.quote_binds_key());
    }

    #[test]
    fn different_code_gets_different_measurement() {
        let (enclave, service, mut rng) = launch();
        let evil_config = EnclaveConfig {
            code_identity: b"evil proxy".to_vec(),
            ..EnclaveConfig::default()
        };
        let evil = Enclave::launch(evil_config, &service, &mut rng);
        let expected = Enclave::expected_measurement(&EnclaveConfig::default());
        assert!(!service.verify_quote(evil.quote(), &expected));
        let _ = enclave;
    }

    #[test]
    fn decrypt_round_trip_and_memory_release() {
        let (enclave, _, mut rng) = launch();
        let sealed = SealedBox::seal(b"gradient bytes", enclave.public_key(), &mut rng).unwrap();
        let plain = enclave.decrypt(&sealed).unwrap();
        assert_eq!(plain, b"gradient bytes");
        // Transient buffer must be freed after decryption.
        assert_eq!(enclave.memory().stats().allocated, 0);
        assert!(enclave.memory().stats().high_water > 0);
    }

    #[test]
    fn decrypt_rejects_oversized_updates_in_strict_mode() {
        let mut rng = StdRng::seed_from_u64(4);
        let service = AttestationService::new(&mut rng);
        let config = EnclaveConfig {
            epc_limit: 16,
            ..EnclaveConfig::default()
        };
        let enclave = Enclave::launch(config, &service, &mut rng);
        let sealed = SealedBox::seal(&[0u8; 64], enclave.public_key(), &mut rng).unwrap();
        assert!(matches!(
            enclave.decrypt(&sealed),
            Err(EnclaveError::MemoryExhausted { .. })
        ));
    }

    #[test]
    fn seal_unseal_round_trip() {
        let (enclave, _, mut rng) = launch();
        let sealed = enclave.seal(b"spilled layer list", &mut rng);
        assert_eq!(enclave.unseal(&sealed).unwrap(), b"spilled layer list");
    }

    #[test]
    fn garbage_ciphertext_fails_cleanly() {
        let (enclave, _, _) = launch();
        assert!(enclave.decrypt(&[0u8; 100]).is_err());
        assert_eq!(enclave.memory().stats().allocated, 0);
    }

    /// A blob shorter than the sealed-box overhead must be rejected before
    /// any EPC charge. The old `saturating_sub` path charged it as a
    /// zero-byte allocation, letting truncated garbage slip past the
    /// accounting.
    #[test]
    fn undersized_blob_rejected_before_epc_charge() {
        let (enclave, _, _) = launch();
        for len in [0usize, 1, 32, 63] {
            assert!(matches!(
                enclave.decrypt(&vec![0u8; len]),
                Err(EnclaveError::Crypto(CryptoError::BadLength { actual, .. })) if actual == len
            ));
        }
        // Up-front rejection: no allocation was ever attempted.
        assert_eq!(enclave.memory().stats().high_water, 0);
        assert_eq!(enclave.memory().stats().allocated, 0);
    }

    /// `decrypt_batch` must agree with per-blob `decrypt` — results and
    /// final EPC accounting — across good, tampered, truncated and
    /// undersized envelopes.
    #[test]
    fn decrypt_batch_matches_sequential_decrypt() {
        let (enclave, _, mut rng) = launch();
        let mut blobs: Vec<Vec<u8>> = (0..4u8)
            .map(|i| SealedBox::seal(&[i; 40], enclave.public_key(), &mut rng).unwrap())
            .collect();
        blobs[1][70] ^= 0xff; // tampered ciphertext
        blobs.push(vec![0u8; 10]); // undersized
        blobs.push(Vec::new()); // empty

        let batched = enclave.decrypt_batch(&blobs);
        assert_eq!(enclave.memory().stats().allocated, 0);
        let sequential: Vec<_> = blobs.iter().map(|b| enclave.decrypt(b)).collect();
        assert_eq!(batched, sequential);
        assert!(batched[0].is_ok());
        assert!(matches!(
            batched[1],
            Err(EnclaveError::Crypto(CryptoError::AuthenticationFailed))
        ));
        assert!(matches!(
            batched[4],
            Err(EnclaveError::Crypto(CryptoError::BadLength { .. }))
        ));
        assert_eq!(enclave.memory().stats().allocated, 0);
    }

    /// `charge_opened` replays `decrypt`'s EPC trace: a blob whose
    /// plaintext would not fit is rejected with `MemoryExhausted` even if
    /// its cryptographic opening succeeded.
    #[test]
    fn charge_opened_enforces_epc_budget() {
        let mut rng = StdRng::seed_from_u64(5);
        let service = AttestationService::new(&mut rng);
        let config = EnclaveConfig {
            epc_limit: 16,
            ..EnclaveConfig::default()
        };
        let enclave = Enclave::launch(config, &service, &mut rng);
        let sealed = SealedBox::seal(&[7u8; 64], enclave.public_key(), &mut rng).unwrap();
        let opened = SealedBox::open(&sealed, &enclave.keypair);
        assert!(opened.is_ok());
        assert!(matches!(
            enclave.charge_opened(sealed.len(), opened),
            Err(EnclaveError::MemoryExhausted { .. })
        ));
    }
}
