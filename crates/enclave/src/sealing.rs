//! Data sealing (simulated SGX sealing).
//!
//! Sealing lets an enclave persist secrets outside the trusted zone by
//! encrypting them under a key derived from the CPU and the enclave
//! identity (§2.5). MixNN uses it when a model is too large for the EPC and
//! layer lists must spill to untrusted memory (§4.3).
//!
//! Simulation: the "CPU fuse key" is a random 32-byte value held by the
//! [`SealingKey`]; derivation binds the enclave [`Measurement`]
//! (MRENCLAVE-policy sealing) through HKDF, and the payload is protected
//! with ChaCha20 + HMAC exactly like the wire sealed box.

use crate::{EnclaveError, Measurement};
use mixnn_crypto::chacha20;
use mixnn_crypto::hmac::{hkdf, hmac_sha256};
use mixnn_crypto::CryptoError;
use rand::Rng;
use std::fmt;

/// A per-platform sealing root key (stands in for the CPU fuse key).
#[derive(Clone)]
pub struct SealingKey {
    root: [u8; 32],
}

impl fmt::Debug for SealingKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SealingKey(redacted)")
    }
}

impl SealingKey {
    /// Derives a fresh platform sealing root.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut root = [0u8; 32];
        rng.fill(&mut root);
        SealingKey { root }
    }

    fn derive(&self, measurement: &Measurement, nonce: &[u8; 12]) -> ([u8; 32], [u8; 32]) {
        let okm = hkdf(
            measurement.as_bytes(),
            &self.root,
            b"mixnn sgx sealing v1",
            64,
        );
        let mut cipher_key = [0u8; 32];
        cipher_key.copy_from_slice(&okm[..32]);
        let mut mac_key = [0u8; 32];
        mac_key.copy_from_slice(&okm[32..]);
        // Mix the nonce into the MAC key so each sealed blob authenticates
        // its own nonce.
        let mac_key = hmac_sha256(&mac_key, nonce);
        (cipher_key, mac_key)
    }
}

/// Seals `data` for the enclave identified by `measurement`.
///
/// Layout: `nonce (12) ‖ tag (32) ‖ ciphertext`.
pub fn seal_data<R: Rng + ?Sized>(
    key: &SealingKey,
    measurement: &Measurement,
    data: &[u8],
    rng: &mut R,
) -> Vec<u8> {
    let mut nonce = [0u8; 12];
    rng.fill(&mut nonce);
    let (cipher_key, mac_key) = key.derive(measurement, &nonce);
    let mut ciphertext = data.to_vec();
    chacha20::xor_keystream(&cipher_key, &nonce, 0, &mut ciphertext);
    let tag = hmac_sha256(&mac_key, &ciphertext);
    let mut out = Vec::with_capacity(12 + 32 + ciphertext.len());
    out.extend_from_slice(&nonce);
    out.extend_from_slice(&tag);
    out.extend_from_slice(&ciphertext);
    out
}

/// Unseals a blob sealed by [`seal_data`] under the same platform key and
/// enclave measurement.
///
/// # Errors
///
/// Returns [`EnclaveError::Crypto`] if the blob is malformed or fails
/// authentication (wrong platform, wrong enclave identity, or tampering).
pub fn unseal_data(
    key: &SealingKey,
    measurement: &Measurement,
    sealed: &[u8],
) -> Result<Vec<u8>, EnclaveError> {
    if sealed.len() < 44 {
        return Err(EnclaveError::Crypto(CryptoError::BadLength {
            expected: "at least 44 bytes",
            actual: sealed.len(),
        }));
    }
    let nonce: [u8; 12] = sealed[..12].try_into().expect("length checked");
    let tag: [u8; 32] = sealed[12..44].try_into().expect("length checked");
    let ciphertext = &sealed[44..];
    let (cipher_key, mac_key) = key.derive(measurement, &nonce);
    if !mixnn_crypto::ct_eq(&hmac_sha256(&mac_key, ciphertext), &tag) {
        return Err(EnclaveError::Crypto(CryptoError::AuthenticationFailed));
    }
    let mut plaintext = ciphertext.to_vec();
    chacha20::xor_keystream(&cipher_key, &nonce, 0, &mut plaintext);
    Ok(plaintext)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (SealingKey, Measurement, StdRng) {
        let mut rng = StdRng::seed_from_u64(10);
        let key = SealingKey::generate(&mut rng);
        let m = Measurement::of_code(b"mixnn proxy");
        (key, m, rng)
    }

    #[test]
    fn round_trip() {
        let (key, m, mut rng) = setup();
        let sealed = seal_data(&key, &m, b"layer list spill", &mut rng);
        let opened = unseal_data(&key, &m, &sealed).unwrap();
        assert_eq!(opened, b"layer list spill");
    }

    #[test]
    fn different_enclave_cannot_unseal() {
        let (key, m, mut rng) = setup();
        let sealed = seal_data(&key, &m, b"secret", &mut rng);
        let other = Measurement::of_code(b"other enclave");
        assert!(matches!(
            unseal_data(&key, &other, &sealed),
            Err(EnclaveError::Crypto(CryptoError::AuthenticationFailed))
        ));
    }

    #[test]
    fn different_platform_cannot_unseal() {
        let (key, m, mut rng) = setup();
        let sealed = seal_data(&key, &m, b"secret", &mut rng);
        let other_key = SealingKey::generate(&mut rng);
        assert!(unseal_data(&other_key, &m, &sealed).is_err());
        let _ = key;
    }

    #[test]
    fn tampering_detected() {
        let (key, m, mut rng) = setup();
        let mut sealed = seal_data(&key, &m, b"secret", &mut rng);
        let last = sealed.len() - 1;
        sealed[last] ^= 1;
        assert!(unseal_data(&key, &m, &sealed).is_err());
    }

    #[test]
    fn short_blob_rejected() {
        let (key, m, _) = setup();
        assert!(matches!(
            unseal_data(&key, &m, &[0u8; 10]),
            Err(EnclaveError::Crypto(CryptoError::BadLength { .. }))
        ));
    }

    #[test]
    fn sealing_is_randomized() {
        let (key, m, mut rng) = setup();
        let a = seal_data(&key, &m, b"same", &mut rng);
        let b = seal_data(&key, &m, b"same", &mut rng);
        assert_ne!(a, b);
    }
}
