//! Remote attestation (simulated).
//!
//! Real SGX attestation proves to a remote party that a specific enclave
//! binary (identified by its MRENCLAVE measurement) runs on genuine
//! hardware. MixNN participants rely on this before provisioning: they only
//! trust the proxy because the quote shows it runs the published mixing
//! code (§2.5: "Enclaves can be attested to prove that the code running in
//! the enclave is the one intended").
//!
//! Simulation: the [`AttestationService`] plays Intel's role with an
//! HMAC-SHA256 "platform key" standing in for the EPID/DCAP signing chain.
//! The trust argument is identical — a verifier checks (1) the quote's
//! signature chains to the platform, (2) the measurement equals the
//! expected code hash.

use mixnn_crypto::hmac::hmac_sha256;
use mixnn_crypto::sha256;
use rand::Rng;

/// An enclave code measurement (MRENCLAVE): SHA-256 of the enclave binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Measurement([u8; 32]);

impl Measurement {
    /// Measures "code" — here, a canonical byte description of the enclave
    /// program (the reproduction uses the proxy's configuration string).
    pub fn of_code(code: &[u8]) -> Self {
        Measurement(sha256::digest(code))
    }

    /// Raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

/// A signed attestation quote.
///
/// Binds a [`Measurement`] to caller-chosen `report_data` (conventionally a
/// hash of the enclave's public key, so the attested identity and the
/// encryption key cannot be split by a man in the middle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    measurement: Measurement,
    report_data: Vec<u8>,
    signature: [u8; 32],
}

impl Quote {
    /// The attested code measurement.
    pub fn measurement(&self) -> &Measurement {
        &self.measurement
    }

    /// The caller-bound report data.
    pub fn report_data(&self) -> &[u8] {
        &self.report_data
    }

    /// Whether this quote binds `public_key` — the convention used by every
    /// enclave in this workspace is report data = SHA-256 of the enclave's
    /// public encryption key, so the attested identity and the key a
    /// participant encrypts to cannot be split by a man in the middle.
    /// This is the single home of that invariant; verifiers must not
    /// re-derive it.
    pub fn binds_key(&self, public_key: &mixnn_crypto::PublicKey) -> bool {
        self.report_data == sha256::digest(public_key.as_bytes())
    }
}

/// The (simulated) platform attestation authority.
#[derive(Debug, Clone)]
pub struct AttestationService {
    platform_key: [u8; 32],
}

impl AttestationService {
    /// Provisions a platform with a fresh signing key.
    pub fn new<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut platform_key = [0u8; 32];
        rng.fill(&mut platform_key);
        AttestationService { platform_key }
    }

    fn sign_payload(&self, measurement: &Measurement, report_data: &[u8]) -> [u8; 32] {
        let mut payload = Vec::with_capacity(32 + report_data.len());
        payload.extend_from_slice(measurement.as_bytes());
        payload.extend_from_slice(report_data);
        hmac_sha256(&self.platform_key, &payload)
    }

    /// Issues a quote for an enclave with `measurement`, binding
    /// `report_data`.
    pub fn issue_quote(&self, measurement: Measurement, report_data: &[u8]) -> Quote {
        Quote {
            signature: self.sign_payload(&measurement, report_data),
            measurement,
            report_data: report_data.to_vec(),
        }
    }

    /// Verifies a quote's platform signature and that its measurement
    /// equals `expected`.
    ///
    /// Returns `true` only when both checks pass. Participants call this
    /// before encrypting updates to the proxy.
    pub fn verify_quote(&self, quote: &Quote, expected: &Measurement) -> bool {
        let sig_ok = mixnn_crypto::ct_eq(
            &self.sign_payload(&quote.measurement, &quote.report_data),
            &quote.signature,
        );
        sig_ok && &quote.measurement == expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn service() -> AttestationService {
        AttestationService::new(&mut StdRng::seed_from_u64(1))
    }

    #[test]
    fn measurement_is_deterministic() {
        assert_eq!(
            Measurement::of_code(b"proxy v1"),
            Measurement::of_code(b"proxy v1")
        );
        assert_ne!(
            Measurement::of_code(b"proxy v1"),
            Measurement::of_code(b"proxy v2")
        );
    }

    #[test]
    fn valid_quote_verifies() {
        let svc = service();
        let m = Measurement::of_code(b"mixnn proxy");
        let q = svc.issue_quote(m, b"pubkey hash");
        assert!(svc.verify_quote(&q, &m));
    }

    #[test]
    fn wrong_measurement_fails() {
        let svc = service();
        let m = Measurement::of_code(b"mixnn proxy");
        let q = svc.issue_quote(m, b"data");
        let other = Measurement::of_code(b"evil proxy");
        assert!(!svc.verify_quote(&q, &other));
    }

    #[test]
    fn tampered_report_data_fails() {
        let svc = service();
        let m = Measurement::of_code(b"mixnn proxy");
        let mut q = svc.issue_quote(m, b"data");
        q.report_data = b"DATA".to_vec();
        assert!(!svc.verify_quote(&q, &m));
    }

    #[test]
    fn quote_from_other_platform_fails() {
        let svc = service();
        let rogue = AttestationService::new(&mut StdRng::seed_from_u64(2));
        let m = Measurement::of_code(b"mixnn proxy");
        let q = rogue.issue_quote(m, b"data");
        assert!(!svc.verify_quote(&q, &m));
    }
}
