//! EPC (Enclave Page Cache) memory accounting.
//!
//! §2.5 of the paper: *"only 96 MB out of the 128 reserved for the enclave
//! can be used by applications. Although virtual and dynamic memory support
//! is available, it incurs significant overheads in paging."* §6.5 then
//! reports per-update memory consumption (26.9 MB for the 2-conv model,
//! 51.3 MB for the 3-conv one) against that limit.
//!
//! [`EpcBudget`] reproduces the arithmetic: allocations up to the usable
//! limit succeed in "fast" EPC; beyond it they either fail (strict mode) or
//! succeed while counting *paging events* whose cost shows up in the
//! §6.5-style benches.

use crate::EnclaveError;

/// Usable EPC bytes in the paper's SGX generation (96 MiB of the 128
/// reserved).
pub const DEFAULT_USABLE_EPC: usize = 96 * 1024 * 1024;

/// Snapshot of enclave memory usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryStats {
    /// Bytes currently allocated inside the EPC.
    pub allocated: usize,
    /// The usable EPC limit.
    pub limit: usize,
    /// Highest allocation watermark observed.
    pub high_water: usize,
    /// Number of allocations that spilled past the limit (paging events).
    pub paging_events: u64,
    /// Bytes currently paged out to (encrypted) untrusted memory.
    pub paged_out: usize,
}

impl MemoryStats {
    /// Fraction of the usable EPC currently occupied (can exceed 1.0 when
    /// paging).
    pub fn utilization(&self) -> f64 {
        self.allocated as f64 / self.limit as f64
    }
}

/// Allocation accounting for a (simulated) enclave.
///
/// # Example
///
/// ```
/// use mixnn_enclave::EpcBudget;
///
/// # fn main() -> Result<(), mixnn_enclave::EnclaveError> {
/// let mut epc = EpcBudget::strict(1024);
/// epc.allocate(512)?;
/// assert!(epc.allocate(1024).is_err()); // would exceed the EPC
/// epc.free(512)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EpcBudget {
    limit: usize,
    allocated: usize,
    high_water: usize,
    paging_events: u64,
    paged_out: usize,
    allow_paging: bool,
}

impl EpcBudget {
    /// Budget that **fails** allocations beyond `limit` bytes (models an
    /// enclave built without dynamic paging support).
    pub fn strict(limit: usize) -> Self {
        EpcBudget {
            limit,
            allocated: 0,
            high_water: 0,
            paging_events: 0,
            paged_out: 0,
            allow_paging: false,
        }
    }

    /// Budget that **pages** beyond `limit` bytes, counting the events
    /// (models SGX2 dynamic memory with its sealing/unsealing overhead).
    pub fn paging(limit: usize) -> Self {
        EpcBudget {
            allow_paging: true,
            ..Self::strict(limit)
        }
    }

    /// The paper's default: strict 96 MiB usable EPC.
    pub fn paper_default() -> Self {
        Self::strict(DEFAULT_USABLE_EPC)
    }

    /// Records an allocation of `bytes`.
    ///
    /// # Errors
    ///
    /// In strict mode, returns [`EnclaveError::MemoryExhausted`] when the
    /// allocation would exceed the limit; in paging mode the allocation
    /// succeeds and a paging event is counted instead.
    pub fn allocate(&mut self, bytes: usize) -> Result<(), EnclaveError> {
        let new_total = self.allocated.saturating_add(bytes);
        if new_total > self.limit {
            if !self.allow_paging {
                return Err(EnclaveError::MemoryExhausted {
                    requested: bytes,
                    available: self.limit.saturating_sub(self.allocated),
                });
            }
            self.paging_events += 1;
            self.paged_out = new_total - self.limit;
        }
        self.allocated = new_total;
        self.high_water = self.high_water.max(self.allocated);
        Ok(())
    }

    /// Records a free of `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::FreeUnderflow`] when freeing more than is
    /// allocated — an accounting bug in the caller that must not be
    /// silently absorbed.
    pub fn free(&mut self, bytes: usize) -> Result<(), EnclaveError> {
        if bytes > self.allocated {
            return Err(EnclaveError::FreeUnderflow {
                requested: bytes,
                allocated: self.allocated,
            });
        }
        self.allocated -= bytes;
        self.paged_out = self.allocated.saturating_sub(self.limit);
        Ok(())
    }

    /// Current usage snapshot.
    pub fn stats(&self) -> MemoryStats {
        MemoryStats {
            allocated: self.allocated,
            limit: self.limit,
            high_water: self.high_water,
            paging_events: self.paging_events,
            paged_out: self.paged_out,
        }
    }

    /// Bytes still available before the limit.
    pub fn available(&self) -> usize {
        self.limit.saturating_sub(self.allocated)
    }

    /// Whether an allocation of `bytes` would fit without paging.
    pub fn fits(&self, bytes: usize) -> bool {
        bytes <= self.available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_mode_rejects_overcommit() {
        let mut epc = EpcBudget::strict(100);
        epc.allocate(60).unwrap();
        let err = epc.allocate(50).unwrap_err();
        assert_eq!(
            err,
            EnclaveError::MemoryExhausted {
                requested: 50,
                available: 40
            }
        );
        // Failed allocation must not change the accounting.
        assert_eq!(epc.stats().allocated, 60);
    }

    #[test]
    fn paging_mode_counts_events() {
        let mut epc = EpcBudget::paging(100);
        epc.allocate(80).unwrap();
        epc.allocate(50).unwrap();
        let stats = epc.stats();
        assert_eq!(stats.allocated, 130);
        assert_eq!(stats.paging_events, 1);
        assert_eq!(stats.paged_out, 30);
        epc.free(50).unwrap();
        assert_eq!(epc.stats().paged_out, 0);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut epc = EpcBudget::strict(100);
        epc.allocate(70).unwrap();
        epc.free(50).unwrap();
        epc.allocate(10).unwrap();
        assert_eq!(epc.stats().high_water, 70);
    }

    #[test]
    fn free_underflow_is_detected() {
        let mut epc = EpcBudget::strict(100);
        epc.allocate(10).unwrap();
        assert!(matches!(
            epc.free(20),
            Err(EnclaveError::FreeUnderflow { .. })
        ));
    }

    #[test]
    fn paper_default_is_96_mib() {
        let epc = EpcBudget::paper_default();
        assert_eq!(epc.stats().limit, 96 * 1024 * 1024);
    }

    #[test]
    fn fits_and_available() {
        let mut epc = EpcBudget::strict(100);
        assert!(epc.fits(100));
        epc.allocate(99).unwrap();
        assert_eq!(epc.available(), 1);
        assert!(epc.fits(1));
        assert!(!epc.fits(2));
    }

    #[test]
    fn utilization_fraction() {
        let mut epc = EpcBudget::strict(200);
        epc.allocate(50).unwrap();
        assert!((epc.stats().utilization() - 0.25).abs() < 1e-12);
    }
}
