//! EPC (Enclave Page Cache) memory accounting.
//!
//! §2.5 of the paper: *"only 96 MB out of the 128 reserved for the enclave
//! can be used by applications. Although virtual and dynamic memory support
//! is available, it incurs significant overheads in paging."* §6.5 then
//! reports per-update memory consumption (26.9 MB for the 2-conv model,
//! 51.3 MB for the 3-conv one) against that limit.
//!
//! [`EpcBudget`] reproduces the arithmetic: allocations up to the usable
//! limit succeed in "fast" EPC; beyond it they either fail (strict mode) or
//! succeed while counting *paging events* whose cost shows up in the
//! §6.5-style benches.
//!
//! The accounting is **thread-safe**: [`EpcBudget::allocate`] and
//! [`EpcBudget::free`] take `&self` and update lock-free atomics, so the
//! parallel ingest workers in `mixnn-core` can charge decrypt buffers and
//! layer-list footprints concurrently while the exhaustion semantics stay
//! exactly those of the sequential accounting (an allocation either fits
//! under the limit at the instant it commits, or fails without changing
//! any counter).

use crate::EnclaveError;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Usable EPC bytes in the paper's SGX generation (96 MiB of the 128
/// reserved).
pub const DEFAULT_USABLE_EPC: usize = 96 * 1024 * 1024;

/// Snapshot of enclave memory usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryStats {
    /// Bytes currently allocated inside the EPC.
    pub allocated: usize,
    /// The usable EPC limit.
    pub limit: usize,
    /// Highest allocation watermark observed.
    pub high_water: usize,
    /// Number of allocations that spilled past the limit (paging events).
    pub paging_events: u64,
    /// Bytes currently paged out to (encrypted) untrusted memory.
    pub paged_out: usize,
}

impl MemoryStats {
    /// Fraction of the usable EPC currently occupied (can exceed 1.0 when
    /// paging).
    pub fn utilization(&self) -> f64 {
        self.allocated as f64 / self.limit as f64
    }
}

/// Allocation accounting for a (simulated) enclave.
///
/// All counters are atomics, so a shared `&EpcBudget` can be charged from
/// many threads at once; a strict budget still never over-commits because
/// the headroom check and the counter update commit in one compare-exchange.
///
/// # Example
///
/// ```
/// use mixnn_enclave::EpcBudget;
///
/// # fn main() -> Result<(), mixnn_enclave::EnclaveError> {
/// let epc = EpcBudget::strict(1024);
/// epc.allocate(512)?;
/// assert!(epc.allocate(1024).is_err()); // would exceed the EPC
/// epc.free(512)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EpcBudget {
    limit: usize,
    allocated: AtomicUsize,
    high_water: AtomicUsize,
    paging_events: AtomicU64,
    allow_paging: bool,
}

impl Clone for EpcBudget {
    fn clone(&self) -> Self {
        EpcBudget {
            limit: self.limit,
            allocated: AtomicUsize::new(self.allocated.load(Ordering::Acquire)),
            high_water: AtomicUsize::new(self.high_water.load(Ordering::Acquire)),
            paging_events: AtomicU64::new(self.paging_events.load(Ordering::Acquire)),
            allow_paging: self.allow_paging,
        }
    }
}

impl EpcBudget {
    /// Budget that **fails** allocations beyond `limit` bytes (models an
    /// enclave built without dynamic paging support).
    pub fn strict(limit: usize) -> Self {
        EpcBudget {
            limit,
            allocated: AtomicUsize::new(0),
            high_water: AtomicUsize::new(0),
            paging_events: AtomicU64::new(0),
            allow_paging: false,
        }
    }

    /// Budget that **pages** beyond `limit` bytes, counting the events
    /// (models SGX2 dynamic memory with its sealing/unsealing overhead).
    pub fn paging(limit: usize) -> Self {
        EpcBudget {
            allow_paging: true,
            ..Self::strict(limit)
        }
    }

    /// The paper's default: strict 96 MiB usable EPC.
    pub fn paper_default() -> Self {
        Self::strict(DEFAULT_USABLE_EPC)
    }

    /// Records an allocation of `bytes`.
    ///
    /// # Errors
    ///
    /// In strict mode, returns [`EnclaveError::MemoryExhausted`] when the
    /// allocation would exceed the limit; in paging mode the allocation
    /// succeeds and a paging event is counted instead. A failed allocation
    /// never changes the accounting, even under concurrency.
    pub fn allocate(&self, bytes: usize) -> Result<(), EnclaveError> {
        let mut current = self.allocated.load(Ordering::Acquire);
        loop {
            let new_total = current.saturating_add(bytes);
            if new_total > self.limit && !self.allow_paging {
                return Err(EnclaveError::MemoryExhausted {
                    requested: bytes,
                    available: self.limit.saturating_sub(current),
                });
            }
            match self.allocated.compare_exchange_weak(
                current,
                new_total,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.high_water.fetch_max(new_total, Ordering::AcqRel);
                    if new_total > self.limit {
                        self.paging_events.fetch_add(1, Ordering::AcqRel);
                    }
                    return Ok(());
                }
                Err(observed) => current = observed,
            }
        }
    }

    /// Records a free of `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::FreeUnderflow`] when freeing more than is
    /// allocated — an accounting bug in the caller that must not be
    /// silently absorbed.
    pub fn free(&self, bytes: usize) -> Result<(), EnclaveError> {
        let mut current = self.allocated.load(Ordering::Acquire);
        loop {
            if bytes > current {
                return Err(EnclaveError::FreeUnderflow {
                    requested: bytes,
                    allocated: current,
                });
            }
            let new_total = current - bytes;
            match self.allocated.compare_exchange_weak(
                current,
                new_total,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(()),
                Err(observed) => current = observed,
            }
        }
    }

    /// Current usage snapshot. `paged_out` is derived from `allocated`
    /// (bytes past the limit) rather than stored, so it can never race out
    /// of sync with the allocation counter.
    pub fn stats(&self) -> MemoryStats {
        let allocated = self.allocated.load(Ordering::Acquire);
        MemoryStats {
            allocated,
            limit: self.limit,
            high_water: self.high_water.load(Ordering::Acquire),
            paging_events: self.paging_events.load(Ordering::Acquire),
            paged_out: allocated.saturating_sub(self.limit),
        }
    }

    /// Bytes still available before the limit.
    pub fn available(&self) -> usize {
        self.limit
            .saturating_sub(self.allocated.load(Ordering::Acquire))
    }

    /// Whether an allocation of `bytes` would fit without paging.
    pub fn fits(&self, bytes: usize) -> bool {
        bytes <= self.available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_mode_rejects_overcommit() {
        let epc = EpcBudget::strict(100);
        epc.allocate(60).unwrap();
        let err = epc.allocate(50).unwrap_err();
        assert_eq!(
            err,
            EnclaveError::MemoryExhausted {
                requested: 50,
                available: 40
            }
        );
        // Failed allocation must not change the accounting.
        assert_eq!(epc.stats().allocated, 60);
    }

    #[test]
    fn paging_mode_counts_events() {
        let epc = EpcBudget::paging(100);
        epc.allocate(80).unwrap();
        epc.allocate(50).unwrap();
        let stats = epc.stats();
        assert_eq!(stats.allocated, 130);
        assert_eq!(stats.paging_events, 1);
        assert_eq!(stats.paged_out, 30);
        epc.free(50).unwrap();
        assert_eq!(epc.stats().paged_out, 0);
    }

    #[test]
    fn high_water_tracks_peak() {
        let epc = EpcBudget::strict(100);
        epc.allocate(70).unwrap();
        epc.free(50).unwrap();
        epc.allocate(10).unwrap();
        assert_eq!(epc.stats().high_water, 70);
    }

    #[test]
    fn free_underflow_is_detected() {
        let epc = EpcBudget::strict(100);
        epc.allocate(10).unwrap();
        assert!(matches!(
            epc.free(20),
            Err(EnclaveError::FreeUnderflow { .. })
        ));
    }

    #[test]
    fn paper_default_is_96_mib() {
        let epc = EpcBudget::paper_default();
        assert_eq!(epc.stats().limit, 96 * 1024 * 1024);
    }

    #[test]
    fn fits_and_available() {
        let epc = EpcBudget::strict(100);
        assert!(epc.fits(100));
        epc.allocate(99).unwrap();
        assert_eq!(epc.available(), 1);
        assert!(epc.fits(1));
        assert!(!epc.fits(2));
    }

    #[test]
    fn utilization_fraction() {
        let epc = EpcBudget::strict(200);
        epc.allocate(50).unwrap();
        assert!((epc.stats().utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn clone_snapshots_counters() {
        let epc = EpcBudget::paging(100);
        epc.allocate(120).unwrap();
        let snap = epc.clone();
        epc.free(120).unwrap();
        assert_eq!(snap.stats().allocated, 120);
        assert_eq!(snap.stats().paging_events, 1);
        assert_eq!(epc.stats().allocated, 0);
    }

    #[test]
    fn concurrent_allocate_free_balances_to_zero() {
        let epc = EpcBudget::strict(1_000_000);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1_000 {
                        epc.allocate(7).unwrap();
                        epc.free(7).unwrap();
                    }
                });
            }
        });
        assert_eq!(epc.stats().allocated, 0);
        assert!(epc.stats().high_water >= 7);
        assert!(epc.stats().high_water <= 8 * 7);
    }

    #[test]
    fn concurrent_strict_budget_never_overcommits() {
        // 8 threads race for 10 slots of 10 bytes inside a 100-byte budget:
        // exactly 10 allocations may succeed, regardless of interleaving.
        let epc = EpcBudget::strict(100);
        let successes: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| (0..4).filter(|_| epc.allocate(10).is_ok()).count()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(successes, 10);
        assert_eq!(epc.stats().allocated, 100);
        assert_eq!(epc.stats().high_water, 100);
    }
}
