//! From-scratch neural-network library for the MixNN reproduction.
//!
//! The paper trains small convolutional networks with TensorFlow; this crate
//! rebuilds the required subset natively in Rust: layers with explicit
//! forward/backward passes ([`Dense`], [`Conv2d`], [`MaxPool2d`],
//! [`LocallyConnected2d`], [`Flatten`], [`Relu`]), a softmax cross-entropy
//! loss, [`Sgd`] and [`Adam`] optimizers, and the [`Sequential`] model
//! container.
//!
//! The crate's most important design decision for MixNN is that **model
//! parameters are exposed per layer as flat vectors** ([`LayerParams`] inside
//! a [`ModelParams`]): the MixNN proxy mixes exactly these per-layer vectors
//! between participants, and FedAvg aggregates them column-wise. Keeping the
//! layer structure first-class makes the mixing operation and its
//! utility-equivalence property direct to implement and test.
//!
//! # Example
//!
//! ```
//! use mixnn_nn::{Dense, Relu, Sequential, Sgd, SoftmaxCrossEntropy};
//! use mixnn_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), mixnn_nn::NnError> {
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut model = Sequential::new();
//! model.push(Dense::new(4, 8, &mut rng));
//! model.push(Relu::new());
//! model.push(Dense::new(8, 3, &mut rng));
//!
//! let x = Tensor::randn(vec![2, 4], 0.0, 1.0, &mut rng);
//! let y = vec![0usize, 2];
//! let mut opt = Sgd::new(0.1);
//! let loss = SoftmaxCrossEntropy::new();
//! let before = model.evaluate(&x, &y, &loss)?.loss;
//! for _ in 0..20 {
//!     model.train_batch(&x, &y, &loss, &mut opt)?;
//! }
//! let after = model.evaluate(&x, &y, &loss)?.loss;
//! assert!(after < before);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod error;
pub mod gradcheck;
mod layers;
mod loss;
mod model;
mod optimizer;
mod params;
pub mod zoo;

pub use error::NnError;
pub use layers::activation::Relu;
pub use layers::conv::Conv2d;
pub use layers::dense::Dense;
pub use layers::flatten::Flatten;
pub use layers::locally_connected::LocallyConnected2d;
pub use layers::pool::MaxPool2d;
pub use layers::Layer;
pub use loss::{Evaluation, SoftmaxCrossEntropy};
pub use model::Sequential;
pub use optimizer::{Adam, Optimizer, Sgd};
pub use params::{LayerParams, ModelParams};
