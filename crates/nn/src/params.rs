use serde::{Deserialize, Serialize};
use std::fmt;

/// The flat parameter vector of one trainable layer.
///
/// This is the *unit of mixing* in MixNN: the proxy swaps whole
/// `LayerParams` between participants, never individual scalars, so the
/// per-layer aggregation on the server is unchanged.
///
/// # Example
///
/// ```
/// use mixnn_nn::LayerParams;
///
/// let p = LayerParams::from_values(vec![0.5, -0.5]);
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.values()[0], 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerParams(Vec<f32>);

impl LayerParams {
    /// Wraps a flat parameter vector.
    pub fn from_values(values: Vec<f32>) -> Self {
        LayerParams(values)
    }

    /// The parameter values.
    pub fn values(&self) -> &[f32] {
        &self.0
    }

    /// Mutable access to the parameter values.
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.0
    }

    /// Consumes the wrapper and returns the flat vector.
    pub fn into_values(self) -> Vec<f32> {
        self.0
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the layer holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Element-wise `self - other`, or `None` on length mismatch.
    pub fn delta(&self, other: &LayerParams) -> Option<LayerParams> {
        if self.len() != other.len() {
            return None;
        }
        Some(LayerParams(
            self.0
                .iter()
                .zip(other.0.iter())
                .map(|(a, b)| a - b)
                .collect(),
        ))
    }
}

impl fmt::Display for LayerParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LayerParams(len={})", self.0.len())
    }
}

/// The full parameter state of a model, one [`LayerParams`] per trainable
/// layer, in network order.
///
/// `ModelParams` is what travels in the federated-learning protocol: the
/// server disseminates one, each client returns one (its locally refined
/// variant), the MixNN proxy permutes per-layer entries across clients, and
/// the server averages them with [`ModelParams::mean`].
///
/// # Example
///
/// ```
/// use mixnn_nn::{LayerParams, ModelParams};
///
/// let a = ModelParams::from_layers(vec![LayerParams::from_values(vec![1.0])]);
/// let b = ModelParams::from_layers(vec![LayerParams::from_values(vec![3.0])]);
/// let mean = ModelParams::mean(&[a, b]).unwrap();
/// assert_eq!(mean.layer(0).unwrap().values(), &[2.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    layers: Vec<LayerParams>,
}

impl ModelParams {
    /// Builds model parameters from per-layer vectors, network order.
    pub fn from_layers(layers: Vec<LayerParams>) -> Self {
        ModelParams { layers }
    }

    /// Number of trainable layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Parameter vector of layer `i`, if present.
    pub fn layer(&self, i: usize) -> Option<&LayerParams> {
        self.layers.get(i)
    }

    /// Mutable parameter vector of layer `i`, if present.
    pub fn layer_mut(&mut self, i: usize) -> Option<&mut LayerParams> {
        self.layers.get_mut(i)
    }

    /// Iterates over per-layer parameter vectors in network order.
    pub fn iter(&self) -> impl Iterator<Item = &LayerParams> {
        self.layers.iter()
    }

    /// Consumes the model parameters and returns the per-layer vectors.
    pub fn into_layers(self) -> Vec<LayerParams> {
        self.layers
    }

    /// Total number of scalars across all layers.
    pub fn total_len(&self) -> usize {
        self.layers.iter().map(LayerParams::len).sum()
    }

    /// Per-layer lengths, network order — the model's "wire signature".
    ///
    /// Two `ModelParams` are *compatible* (mixable, aggregatable) iff their
    /// signatures are equal.
    pub fn signature(&self) -> Vec<usize> {
        self.layers.iter().map(LayerParams::len).collect()
    }

    /// Concatenates all layers into one flat vector (the "gradient vector"
    /// view used by ∇Sim and the Fig. 9 neighbour analysis).
    pub fn flatten(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.total_len());
        for l in &self.layers {
            out.extend_from_slice(l.values());
        }
        out
    }

    /// Element-wise `self - other` across all layers, or `None` if the
    /// signatures differ.
    pub fn delta(&self, other: &ModelParams) -> Option<ModelParams> {
        if self.signature() != other.signature() {
            return None;
        }
        let layers = self
            .layers
            .iter()
            .zip(other.layers.iter())
            .map(|(a, b)| a.delta(b).expect("signatures checked"))
            .collect();
        Some(ModelParams { layers })
    }

    /// Element-wise sum `self + other`, or `None` if the signatures differ.
    pub fn add(&self, other: &ModelParams) -> Option<ModelParams> {
        if self.signature() != other.signature() {
            return None;
        }
        let layers = self
            .layers
            .iter()
            .zip(other.layers.iter())
            .map(|(a, b)| LayerParams(a.0.iter().zip(b.0.iter()).map(|(x, y)| x + y).collect()))
            .collect();
        Some(ModelParams { layers })
    }

    /// Scales every parameter by `s`, returning a new value.
    pub fn scale(&self, s: f32) -> ModelParams {
        ModelParams {
            layers: self
                .layers
                .iter()
                .map(|l| LayerParams(l.0.iter().map(|v| v * s).collect()))
                .collect(),
        }
    }

    /// FedAvg: the per-layer, element-wise mean of a set of compatible model
    /// parameters.
    ///
    /// Returns `None` if `updates` is empty or the signatures disagree.
    ///
    /// The implementation is **exactly permutation-invariant even in f32
    /// arithmetic**: for each scalar position, the column of values across
    /// updates is summed in a canonical (value-sorted) order with an f64
    /// accumulator. Plain sequential summation would round differently
    /// after MixNN permutes the updates, turning the paper's §4.2 theorem
    /// `Agr(A) = Agr(B)` into an approximation; the canonical order makes
    /// the aggregate a pure function of the update *multiset*, so the
    /// equivalence tests can assert bitwise equality.
    pub fn mean(updates: &[ModelParams]) -> Option<ModelParams> {
        let first = updates.first()?;
        let sig = first.signature();
        if updates.iter().any(|u| u.signature() != sig) {
            return None;
        }
        let inv = 1.0 / updates.len() as f64;
        let mut column = vec![0.0f32; updates.len()];
        let layers = sig
            .iter()
            .enumerate()
            .map(|(l, &len)| {
                let mut out = Vec::with_capacity(len);
                for i in 0..len {
                    for (slot, u) in column.iter_mut().zip(updates.iter()) {
                        *slot = u.layers[l].0[i];
                    }
                    column.sort_unstable_by(f32::total_cmp);
                    let sum: f64 = column.iter().map(|&v| f64::from(v)).sum();
                    out.push((sum * inv) as f32);
                }
                LayerParams(out)
            })
            .collect();
        Some(ModelParams { layers })
    }

    /// Adds i.i.d. Gaussian noise `N(0, sigma²)` to every scalar — the
    /// "noisy gradient" baseline of the paper (local-DP style perturbation).
    pub fn perturbed<R: rand::Rng + ?Sized>(&self, sigma: f32, rng: &mut R) -> ModelParams {
        ModelParams {
            layers: self
                .layers
                .iter()
                .map(|l| {
                    LayerParams(
                        l.0.iter()
                            .map(|v| v + sigma * sample_standard_normal(rng))
                            .collect(),
                    )
                })
                .collect(),
        }
    }

    /// L2 distance between the flattened views of two compatible models, or
    /// `None` if signatures differ.
    pub fn l2_distance(&self, other: &ModelParams) -> Option<f32> {
        if self.signature() != other.signature() {
            return None;
        }
        Some(mixnn_tensor::vecmath::euclidean_distance(
            &self.flatten(),
            &other.flatten(),
        ))
    }

    /// Cosine similarity between the flattened views, or `None` if
    /// signatures differ.
    pub fn cosine_similarity(&self, other: &ModelParams) -> Option<f32> {
        if self.signature() != other.signature() {
            return None;
        }
        Some(mixnn_tensor::vecmath::cosine_similarity(
            &self.flatten(),
            &other.flatten(),
        ))
    }
}

fn sample_standard_normal<R: rand::Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mp(vals: &[&[f32]]) -> ModelParams {
        ModelParams::from_layers(
            vals.iter()
                .map(|v| LayerParams::from_values(v.to_vec()))
                .collect(),
        )
    }

    #[test]
    fn signature_and_total_len() {
        let p = mp(&[&[1., 2.], &[3.]]);
        assert_eq!(p.signature(), vec![2, 1]);
        assert_eq!(p.total_len(), 3);
        assert_eq!(p.flatten(), vec![1., 2., 3.]);
    }

    #[test]
    fn delta_and_add_are_inverse() {
        let a = mp(&[&[1., 2.], &[3.]]);
        let b = mp(&[&[0.5, 1.0], &[1.0]]);
        let d = a.delta(&b).unwrap();
        let restored = d.add(&b).unwrap();
        assert_eq!(restored, a);
    }

    #[test]
    fn incompatible_signatures_are_rejected() {
        let a = mp(&[&[1., 2.]]);
        let b = mp(&[&[1.]]);
        assert!(a.delta(&b).is_none());
        assert!(a.add(&b).is_none());
        assert!(a.l2_distance(&b).is_none());
        assert!(ModelParams::mean(&[a, b]).is_none());
    }

    #[test]
    fn mean_averages_per_layer() {
        let a = mp(&[&[2., 4.], &[6.]]);
        let b = mp(&[&[0., 0.], &[0.]]);
        let m = ModelParams::mean(&[a, b]).unwrap();
        assert_eq!(m.layer(0).unwrap().values(), &[1., 2.]);
        assert_eq!(m.layer(1).unwrap().values(), &[3.]);
    }

    #[test]
    fn mean_of_empty_is_none() {
        assert!(ModelParams::mean(&[]).is_none());
    }

    #[test]
    fn mean_is_bitwise_permutation_invariant() {
        // Values chosen so naive sequential f32 summation differs between
        // orderings; the canonical-order mean must not.
        let updates: Vec<ModelParams> = [1.0e8f32, 1.0, -1.0e8, 0.1, 7.7, -3.3]
            .iter()
            .map(|&v| mp(&[&[v, v * 0.3], &[v * 1.7]]))
            .collect();
        let mut reversed = updates.clone();
        reversed.reverse();
        let mut rotated = updates.clone();
        rotated.rotate_left(2);
        let a = ModelParams::mean(&updates).unwrap();
        assert_eq!(a, ModelParams::mean(&reversed).unwrap());
        assert_eq!(a, ModelParams::mean(&rotated).unwrap());
    }

    #[test]
    fn perturbed_changes_values_deterministically() {
        let p = mp(&[&[0.0; 8]]);
        let n1 = p.perturbed(1.0, &mut StdRng::seed_from_u64(5));
        let n2 = p.perturbed(1.0, &mut StdRng::seed_from_u64(5));
        assert_eq!(n1, n2);
        assert_ne!(n1, p);
        // sigma = 0 must be a no-op.
        let same = p.perturbed(0.0, &mut StdRng::seed_from_u64(5));
        assert_eq!(same, p);
    }

    #[test]
    fn distances() {
        let a = mp(&[&[0., 0.]]);
        let b = mp(&[&[3., 4.]]);
        assert_eq!(a.l2_distance(&b).unwrap(), 5.0);
        let c = mp(&[&[1., 0.]]);
        let d = mp(&[&[2., 0.]]);
        assert!((c.cosine_similarity(&d).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn scale_scales_every_layer() {
        let a = mp(&[&[1., 2.], &[3.]]);
        let s = a.scale(2.0);
        assert_eq!(s.flatten(), vec![2., 4., 6.]);
    }
}
