//! Model zoo: the architectures used in the paper's evaluation.
//!
//! §6.1.1 of the paper: *"For CIFAR10, MotionSense and MobiAct datasets, we
//! use a neural network composed of two convolutional layers and three fully
//! connected layers. For LFW we use a more complex architecture provided by
//! Facebook, named DeepFace (multiple convolutional, locally connected,
//! maxpooling, and fully connected layers)."* §6.5 additionally measures a
//! three-convolution variant.
//!
//! The builders below reproduce those layer stacks at configurable widths.
//! Widths default to laptop-scale values; the *shape* of every experiment
//! (who wins, where curves cross) is width-independent because attack and
//! defense operate on per-layer update vectors whatever their size.

use crate::{Conv2d, Dense, Flatten, LocallyConnected2d, MaxPool2d, Relu, Sequential};
use rand::Rng;

/// Spatial geometry of an image-like input: channels × height × width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputSpec {
    /// Channels (e.g. 3 for RGB, 1 for single-channel sensor grids).
    pub channels: usize,
    /// Height in pixels/rows.
    pub height: usize,
    /// Width in pixels/columns.
    pub width: usize,
}

impl InputSpec {
    /// Creates an input specification.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        InputSpec {
            channels,
            height,
            width,
        }
    }

    /// Number of scalars per example.
    pub fn volume(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// The 4-D batch shape for `batch` examples.
    pub fn batch_dims(&self, batch: usize) -> Vec<usize> {
        vec![batch, self.channels, self.height, self.width]
    }
}

/// The paper's main architecture: **two convolutional layers and three
/// fully connected layers** (used for CIFAR10, MotionSense and MobiAct).
///
/// Stack: conv(3×3, pad 1) → ReLU → maxpool(2) → conv(3×3, pad 1) → ReLU →
/// maxpool(2) → flatten → dense → ReLU → dense → ReLU → dense(classes).
///
/// # Panics
///
/// Panics if the input is too small for two 2× poolings.
pub fn conv2_fc3<R: Rng + ?Sized>(
    input: InputSpec,
    classes: usize,
    conv_width: usize,
    fc_width: usize,
    rng: &mut R,
) -> Sequential {
    assert!(
        input.height >= 4 && input.width >= 4,
        "input must be at least 4x4 for two 2x poolings"
    );
    let mut m = Sequential::new();
    m.push(Conv2d::new(input.channels, conv_width, 3, 1, 1, rng));
    m.push(Relu::new());
    m.push(MaxPool2d::new(2));
    m.push(Conv2d::new(conv_width, 2 * conv_width, 3, 1, 1, rng));
    m.push(Relu::new());
    m.push(MaxPool2d::new(2));
    m.push(Flatten::new());
    let flat = 2 * conv_width * (input.height / 4) * (input.width / 4);
    m.push(Dense::new(flat, fc_width, rng));
    m.push(Relu::new());
    m.push(Dense::new(fc_width, fc_width / 2, rng));
    m.push(Relu::new());
    m.push(Dense::new(fc_width / 2, classes, rng));
    m
}

/// The §6.5 variant: **three convolutional layers and three fully connected
/// layers**, used to show how proxy cost scales with model size.
///
/// # Panics
///
/// Panics if the input is too small for two 2× poolings.
pub fn conv3_fc3<R: Rng + ?Sized>(
    input: InputSpec,
    classes: usize,
    conv_width: usize,
    fc_width: usize,
    rng: &mut R,
) -> Sequential {
    assert!(
        input.height >= 4 && input.width >= 4,
        "input must be at least 4x4 for two 2x poolings"
    );
    let mut m = Sequential::new();
    m.push(Conv2d::new(input.channels, conv_width, 3, 1, 1, rng));
    m.push(Relu::new());
    m.push(MaxPool2d::new(2));
    m.push(Conv2d::new(conv_width, 2 * conv_width, 3, 1, 1, rng));
    m.push(Relu::new());
    m.push(MaxPool2d::new(2));
    m.push(Conv2d::new(2 * conv_width, 2 * conv_width, 3, 1, 1, rng));
    m.push(Relu::new());
    m.push(Flatten::new());
    let flat = 2 * conv_width * (input.height / 4) * (input.width / 4);
    m.push(Dense::new(flat, fc_width, rng));
    m.push(Relu::new());
    m.push(Dense::new(fc_width, fc_width / 2, rng));
    m.push(Relu::new());
    m.push(Dense::new(fc_width / 2, classes, rng));
    m
}

/// DeepFace-like architecture for the LFW experiment: convolution, max
/// pooling, a second convolution, a **locally connected** layer (DeepFace's
/// signature component) and two fully connected layers.
///
/// # Panics
///
/// Panics if the input is smaller than 8×8.
pub fn deepface_like<R: Rng + ?Sized>(
    input: InputSpec,
    classes: usize,
    width: usize,
    rng: &mut R,
) -> Sequential {
    assert!(
        input.height >= 8 && input.width >= 8,
        "deepface-like input must be at least 8x8"
    );
    let mut m = Sequential::new();
    // C1: conv + ReLU, then M2: maxpool.
    m.push(Conv2d::new(input.channels, width, 3, 1, 1, rng));
    m.push(Relu::new());
    m.push(MaxPool2d::new(2));
    let (h, w) = (input.height / 2, input.width / 2);
    // C3: second convolution.
    m.push(Conv2d::new(width, width, 3, 1, 1, rng));
    m.push(Relu::new());
    // L4: locally connected layer (unshared kernels).
    m.push(LocallyConnected2d::new(width, width, 3, h, w, rng));
    m.push(Relu::new());
    m.push(Flatten::new());
    let flat = width * (h - 2) * (w - 2);
    // F7, F8: fully connected head.
    m.push(Dense::new(flat, 2 * width, rng));
    m.push(Relu::new());
    m.push(Dense::new(2 * width, classes, rng));
    m
}

/// A plain multi-layer perceptron: `dims[0] → dims[1] → … → dims.last()`,
/// ReLU between layers. Used in unit tests and the quickstart example.
///
/// # Panics
///
/// Panics if fewer than two dimensions are given.
pub fn mlp<R: Rng + ?Sized>(dims: &[usize], rng: &mut R) -> Sequential {
    assert!(dims.len() >= 2, "mlp needs at least input and output dims");
    let mut m = Sequential::new();
    for i in 0..dims.len() - 1 {
        m.push(Dense::new(dims[i], dims[i + 1], rng));
        if i + 2 < dims.len() {
            m.push(Relu::new());
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixnn_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conv2_fc3_has_five_trainable_layers() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = conv2_fc3(InputSpec::new(3, 8, 8), 10, 4, 16, &mut rng);
        assert_eq!(m.num_trainable_layers(), 5);
    }

    #[test]
    fn conv3_fc3_has_six_trainable_layers() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = conv3_fc3(InputSpec::new(3, 8, 8), 10, 4, 16, &mut rng);
        assert_eq!(m.num_trainable_layers(), 6);
    }

    #[test]
    fn deepface_like_contains_locally_connected() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = deepface_like(InputSpec::new(1, 8, 8), 2, 4, &mut rng);
        assert!(m.layer_names().contains(&"locally_connected2d"));
        assert_eq!(m.num_trainable_layers(), 5);
    }

    #[test]
    fn all_architectures_forward_correct_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = InputSpec::new(3, 8, 8);
        let x = Tensor::randn(spec.batch_dims(2), 0.0, 1.0, &mut rng);

        let mut a = conv2_fc3(spec, 10, 4, 16, &mut rng);
        assert_eq!(a.forward(&x).unwrap().dims(), &[2, 10]);

        let mut b = conv3_fc3(spec, 7, 4, 16, &mut rng);
        assert_eq!(b.forward(&x).unwrap().dims(), &[2, 7]);

        let spec1 = InputSpec::new(1, 8, 8);
        let x1 = Tensor::randn(spec1.batch_dims(2), 0.0, 1.0, &mut rng);
        let mut c = deepface_like(spec1, 2, 4, &mut rng);
        assert_eq!(c.forward(&x1).unwrap().dims(), &[2, 2]);
    }

    #[test]
    fn conv3_is_larger_than_conv2() {
        // §6.5's premise: the 3-conv model costs more to proxy than the
        // 2-conv one.
        let mut rng = StdRng::seed_from_u64(2);
        let spec = InputSpec::new(3, 8, 8);
        let small = conv2_fc3(spec, 10, 4, 16, &mut rng);
        let big = conv3_fc3(spec, 10, 4, 16, &mut rng);
        assert!(big.num_parameters() > small.num_parameters());
    }

    #[test]
    fn mlp_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = mlp(&[4, 8, 3], &mut rng);
        assert_eq!(m.num_trainable_layers(), 2);
        let x = Tensor::zeros(vec![5, 4]);
        assert_eq!(m.forward(&x).unwrap().dims(), &[5, 3]);
    }

    #[test]
    fn input_spec_volume_and_dims() {
        let s = InputSpec::new(3, 8, 8);
        assert_eq!(s.volume(), 192);
        assert_eq!(s.batch_dims(4), vec![4, 3, 8, 8]);
    }

    #[test]
    fn architectures_are_trainable_end_to_end() {
        use crate::{Adam, SoftmaxCrossEntropy};
        let mut rng = StdRng::seed_from_u64(4);
        let spec = InputSpec::new(1, 8, 8);
        let mut m = conv2_fc3(spec, 2, 2, 8, &mut rng);
        let x = Tensor::randn(spec.batch_dims(8), 0.0, 1.0, &mut rng);
        let y: Vec<usize> = (0..8).map(|i| i % 2).collect();
        let loss = SoftmaxCrossEntropy::new();
        let mut opt = Adam::new(0.01);
        let before = m.evaluate(&x, &y, &loss).unwrap().loss;
        for _ in 0..15 {
            m.train_batch(&x, &y, &loss, &mut opt).unwrap();
        }
        let after = m.evaluate(&x, &y, &loss).unwrap().loss;
        assert!(after < before, "loss did not decrease: {before} -> {after}");
    }
}
