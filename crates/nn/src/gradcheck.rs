//! Numerical gradient checking.
//!
//! Every layer's `backward` is verified against central finite differences
//! of its `forward`. This is the safety net that makes a from-scratch
//! backprop implementation trustworthy: if the analytic gradients are right,
//! local SGD/Adam training behaves like any mainstream framework, and the
//! gradient "fingerprints" ∇Sim exploits are faithful to the paper's setup.

use crate::{Layer, NnError};
use mixnn_tensor::Tensor;
use std::error::Error;
use std::fmt;

/// Report of a gradient-check failure.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckError {
    /// `"params"` or `"input"` depending on which gradient disagreed.
    pub which: &'static str,
    /// Flat index of the offending scalar.
    pub index: usize,
    /// Analytic (backprop) gradient value.
    pub analytic: f32,
    /// Numerical (finite-difference) gradient value.
    pub numeric: f32,
}

impl fmt::Display for GradCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} gradient mismatch at index {}: analytic {} vs numeric {}",
            self.which, self.index, self.analytic, self.numeric
        )
    }
}

impl Error for GradCheckError {}

/// Errors produced by [`check_layer`].
#[derive(Debug)]
pub enum CheckError {
    /// The layer itself failed during forward/backward.
    Layer(NnError),
    /// Gradients disagreed beyond tolerance.
    Mismatch(GradCheckError),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Layer(e) => write!(f, "layer failed during gradient check: {e}"),
            CheckError::Mismatch(e) => write!(f, "{e}"),
        }
    }
}

impl Error for CheckError {}

impl From<NnError> for CheckError {
    fn from(e: NnError) -> Self {
        CheckError::Layer(e)
    }
}

/// Maximum number of scalar coordinates probed per gradient buffer.
///
/// Finite differences are O(2 · forward) per coordinate; probing a spread
/// subset keeps the check fast on convolution layers while still touching
/// every region of the buffer.
const MAX_PROBES: usize = 48;

fn probe_indices(len: usize) -> Vec<usize> {
    if len <= MAX_PROBES {
        (0..len).collect()
    } else {
        (0..MAX_PROBES).map(|i| i * len / MAX_PROBES).collect()
    }
}

fn relative_error(a: f32, n: f32) -> f32 {
    (a - n).abs() / 1.0f32.max(a.abs()).max(n.abs())
}

/// Checks a layer's analytic gradients against central finite differences.
///
/// The scalar objective is `L = Σᵢ cᵢ · forward(x)ᵢ` for a fixed,
/// non-uniform weighting `c`, which exercises every output coordinate with a
/// distinct sensitivity. Both parameter gradients (when the layer has
/// parameters) and the input gradient are verified on a spread subset of
/// coordinates.
///
/// # Errors
///
/// Returns [`CheckError::Mismatch`] when the relative error at any probed
/// coordinate exceeds `tol`, or [`CheckError::Layer`] if the layer rejects
/// its input.
pub fn check_layer(mut layer: Box<dyn Layer>, input: &Tensor, tol: f32) -> Result<(), CheckError> {
    let out = layer.forward(input)?;
    // Fixed non-uniform weights, deterministic across runs.
    let c = Tensor::from_fn(out.dims().to_vec(), |i| 0.1 + 0.25 * ((i % 7) as f32 - 3.0));

    layer.zero_grads();
    let analytic_dx = layer.backward(&c)?;
    let analytic_dp = layer.grads();

    let eps = 1e-2f32;
    let objective = |layer: &mut Box<dyn Layer>, x: &Tensor| -> Result<f32, NnError> {
        let out = layer.forward(x)?;
        Ok(out
            .data()
            .iter()
            .zip(c.data())
            .map(|(&a, &b)| f64::from(a) * f64::from(b))
            .sum::<f64>() as f32)
    };

    // Parameter gradients.
    if let (Some(p0), Some(dp)) = (layer.params(), analytic_dp) {
        for i in probe_indices(p0.len()) {
            let mut plus = p0.clone();
            plus.values_mut()[i] += eps;
            layer.set_params(&plus)?;
            let f_plus = objective(&mut layer, input)?;

            let mut minus = p0.clone();
            minus.values_mut()[i] -= eps;
            layer.set_params(&minus)?;
            let f_minus = objective(&mut layer, input)?;

            layer.set_params(&p0)?;
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let analytic = dp.values()[i];
            if relative_error(analytic, numeric) > tol {
                return Err(CheckError::Mismatch(GradCheckError {
                    which: "params",
                    index: i,
                    analytic,
                    numeric,
                }));
            }
        }
    }

    // Input gradients.
    for i in probe_indices(input.len()) {
        let mut plus = input.clone();
        plus.data_mut()[i] += eps;
        let f_plus = objective(&mut layer, &plus)?;

        let mut minus = input.clone();
        minus.data_mut()[i] -= eps;
        let f_minus = objective(&mut layer, &minus)?;

        let numeric = (f_plus - f_minus) / (2.0 * eps);
        let analytic = analytic_dx.data()[i];
        if relative_error(analytic, numeric) > tol {
            return Err(CheckError::Mismatch(GradCheckError {
                which: "input",
                index: i,
                analytic,
                numeric,
            }));
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_indices_cover_small_and_large() {
        assert_eq!(probe_indices(3), vec![0, 1, 2]);
        let big = probe_indices(10_000);
        assert_eq!(big.len(), MAX_PROBES);
        assert_eq!(big[0], 0);
        assert!(big.windows(2).all(|w| w[0] < w[1]));
        assert!(*big.last().unwrap() < 10_000);
    }

    #[test]
    fn relative_error_behaviour() {
        assert_eq!(relative_error(1.0, 1.0), 0.0);
        assert!(relative_error(100.0, 101.0) < 0.02);
        assert!(relative_error(0.0, 0.5) > 0.4);
    }

    #[test]
    fn display_of_mismatch_mentions_indices() {
        let e = GradCheckError {
            which: "input",
            index: 7,
            analytic: 1.0,
            numeric: 2.0,
        };
        let s = e.to_string();
        assert!(s.contains("input") && s.contains('7'));
    }
}
