use mixnn_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error type for neural-network construction, training and parameter
/// exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// An underlying tensor operation failed (shape bugs surface here).
    Tensor(TensorError),
    /// A layer received an input whose shape it cannot process.
    BadInput {
        /// Name of the layer rejecting the input.
        layer: String,
        /// Human-readable expectation, e.g. `"[batch, 4, 8, 8]"`.
        expected: String,
        /// The shape actually received.
        actual: Vec<usize>,
    },
    /// A parameter vector of the wrong length was loaded into a layer.
    ParamLengthMismatch {
        /// Name of the layer rejecting the parameters.
        layer: String,
        /// Number of parameters the layer owns.
        expected: usize,
        /// Number of parameters supplied.
        actual: usize,
    },
    /// The number of per-layer parameter vectors does not match the model's
    /// trainable layer count.
    LayerCountMismatch {
        /// Trainable layers in the model.
        expected: usize,
        /// Per-layer vectors supplied.
        actual: usize,
    },
    /// `backward` was called before `forward` (no cached activation).
    BackwardBeforeForward {
        /// Name of the offending layer.
        layer: String,
    },
    /// Labels and batch rows disagree.
    LabelCountMismatch {
        /// Batch rows.
        expected: usize,
        /// Labels supplied.
        actual: usize,
    },
    /// A label was outside the class range of the output layer.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of classes.
        classes: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
            NnError::BadInput {
                layer,
                expected,
                actual,
            } => write!(
                f,
                "layer {layer} expected input shaped {expected}, got {actual:?}"
            ),
            NnError::ParamLengthMismatch {
                layer,
                expected,
                actual,
            } => write!(
                f,
                "layer {layer} owns {expected} parameters but {actual} were supplied"
            ),
            NnError::LayerCountMismatch { expected, actual } => write!(
                f,
                "model has {expected} trainable layers but {actual} parameter vectors were supplied"
            ),
            NnError::BackwardBeforeForward { layer } => {
                write!(f, "backward called on layer {layer} before forward")
            }
            NnError::LabelCountMismatch { expected, actual } => {
                write!(f, "batch has {expected} rows but {actual} labels")
            }
            NnError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_error_converts_and_sources() {
        let e: NnError = TensorError::EmptyTensor.into();
        assert!(matches!(e, NnError::Tensor(_)));
        assert!(e.source().is_some());
    }

    #[test]
    fn display_messages_are_informative() {
        let e = NnError::ParamLengthMismatch {
            layer: "dense".into(),
            expected: 10,
            actual: 9,
        };
        let msg = e.to_string();
        assert!(msg.contains("dense") && msg.contains("10") && msg.contains('9'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
