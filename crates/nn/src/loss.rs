//! Loss functions and evaluation metrics.

use crate::NnError;
use mixnn_tensor::{vecmath, Tensor};

/// Result of evaluating a model on a labelled batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Mean cross-entropy loss over the batch.
    pub loss: f32,
    /// Fraction of correctly classified rows — the paper's *Model Accuracy*
    /// metric (§6.1.2).
    pub accuracy: f32,
}

/// Softmax followed by cross-entropy, fused for numerical stability.
///
/// `loss_and_grad` returns both the scalar loss and the gradient with
/// respect to the logits (`(softmax(z) − onehot(y)) / batch`), which is the
/// textbook fused derivative.
///
/// # Example
///
/// ```
/// use mixnn_nn::SoftmaxCrossEntropy;
/// use mixnn_tensor::Tensor;
///
/// # fn main() -> Result<(), mixnn_nn::NnError> {
/// let loss = SoftmaxCrossEntropy::new();
/// let logits = Tensor::from_vec(vec![1, 3], vec![10.0, 0.0, 0.0])?;
/// let (l, _grad) = loss.loss_and_grad(&logits, &[0])?;
/// assert!(l < 0.01); // confident and correct → tiny loss
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Creates the loss function.
    pub fn new() -> Self {
        SoftmaxCrossEntropy
    }

    fn validate(&self, logits: &Tensor, labels: &[usize]) -> Result<(usize, usize), NnError> {
        if logits.rank() != 2 {
            return Err(NnError::BadInput {
                layer: "softmax_cross_entropy".to_string(),
                expected: "[batch, classes]".to_string(),
                actual: logits.dims().to_vec(),
            });
        }
        let (batch, classes) = (logits.dims()[0], logits.dims()[1]);
        if labels.len() != batch {
            return Err(NnError::LabelCountMismatch {
                expected: batch,
                actual: labels.len(),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
            return Err(NnError::LabelOutOfRange {
                label: bad,
                classes,
            });
        }
        Ok((batch, classes))
    }

    /// Computes the mean cross-entropy loss and the gradient w.r.t. the
    /// logits.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`], [`NnError::LabelCountMismatch`] or
    /// [`NnError::LabelOutOfRange`] on malformed inputs.
    pub fn loss_and_grad(
        &self,
        logits: &Tensor,
        labels: &[usize],
    ) -> Result<(f32, Tensor), NnError> {
        let (batch, classes) = self.validate(logits, labels)?;
        let mut grad = Tensor::zeros(vec![batch, classes]);
        let mut total_loss = 0.0f64;
        for b in 0..batch {
            let probs = vecmath::softmax(logits.row(b));
            let p_true = probs[labels[b]].max(1e-12);
            total_loss += -f64::from(p_true.ln());
            let g_row = &mut grad.data_mut()[b * classes..(b + 1) * classes];
            for (j, (&p, g)) in probs.iter().zip(g_row.iter_mut()).enumerate() {
                *g = (p - if j == labels[b] { 1.0 } else { 0.0 }) / batch as f32;
            }
        }
        Ok(((total_loss / batch as f64) as f32, grad))
    }

    /// Computes loss and accuracy without gradients (evaluation path).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SoftmaxCrossEntropy::loss_and_grad`].
    pub fn evaluate(&self, logits: &Tensor, labels: &[usize]) -> Result<Evaluation, NnError> {
        let (batch, _classes) = self.validate(logits, labels)?;
        let mut total_loss = 0.0f64;
        let mut correct = 0usize;
        for b in 0..batch {
            let row = logits.row(b);
            let probs = vecmath::softmax(row);
            total_loss += -f64::from(probs[labels[b]].max(1e-12).ln());
            if vecmath::argmax(row) == labels[b] {
                correct += 1;
            }
        }
        Ok(Evaluation {
            loss: (total_loss / batch as f64) as f32,
            accuracy: correct as f32 / batch as f32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![1, 2], vec![20.0, -20.0]).unwrap();
        let (l, _) = loss.loss_and_grad(&logits, &[0]).unwrap();
        assert!(l < 1e-6);
    }

    #[test]
    fn uniform_logits_give_log_classes() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::zeros(vec![1, 4]);
        let (l, _) = loss.loss_and_grad(&logits, &[2]).unwrap();
        assert!((l - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., -1., 0., 1.]).unwrap();
        let (_, grad) = loss.loss_and_grad(&logits, &[0, 2]).unwrap();
        for b in 0..2 {
            let s: f32 = grad.row(b).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![2, 3], vec![0.3, -0.2, 0.9, 1.1, 0.0, -0.5]).unwrap();
        let labels = [2usize, 0];
        let (_, grad) = loss.loss_and_grad(&logits, &labels).unwrap();
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut plus = logits.clone();
            plus.data_mut()[i] += eps;
            let (lp, _) = loss.loss_and_grad(&plus, &labels).unwrap();
            let mut minus = logits.clone();
            minus.data_mut()[i] -= eps;
            let (lm, _) = loss.loss_and_grad(&minus, &labels).unwrap();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (grad.data()[i] - numeric).abs() < 1e-3,
                "index {i}: {} vs {}",
                grad.data()[i],
                numeric
            );
        }
    }

    #[test]
    fn evaluate_counts_accuracy() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![3, 2], vec![2.0, 1.0, 0.0, 5.0, 3.0, 1.0]).unwrap();
        let eval = loss.evaluate(&logits, &[0, 1, 1]).unwrap();
        assert!((eval.accuracy - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_bad_labels() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::zeros(vec![2, 2]);
        assert!(matches!(
            loss.loss_and_grad(&logits, &[0]),
            Err(NnError::LabelCountMismatch { .. })
        ));
        assert!(matches!(
            loss.loss_and_grad(&logits, &[0, 5]),
            Err(NnError::LabelOutOfRange { .. })
        ));
    }
}
