//! The sequential model container.

use crate::layers::Layer;
use crate::loss::{Evaluation, SoftmaxCrossEntropy};
use crate::optimizer::Optimizer;
use crate::params::{LayerParams, ModelParams};
use crate::NnError;
use mixnn_tensor::Tensor;

/// A feed-forward stack of layers trained with backpropagation.
///
/// `Sequential` is the model type used by every federated participant. Its
/// federated-learning surface is deliberately parameter-centric:
/// [`Sequential::params`] / [`Sequential::set_params`] move whole models as
/// [`ModelParams`] (one flat vector per trainable layer), which is exactly
/// the representation the MixNN proxy mixes and the server aggregates.
///
/// # Example
///
/// ```
/// use mixnn_nn::{Dense, Relu, Sequential};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut model = Sequential::new();
/// model.push(Dense::new(8, 16, &mut rng));
/// model.push(Relu::new());
/// model.push(Dense::new(16, 2, &mut rng));
/// assert_eq!(model.num_trainable_layers(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty model.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer to the stack.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) {
        self.layers.push(Box::new(layer));
    }

    /// Appends a boxed layer (used by the model zoo builders).
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers (including parameter-free ones).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of trainable layers — the "n" in the paper's mixing matrix:
    /// the proxy maintains one mixing list per trainable layer.
    pub fn num_trainable_layers(&self) -> usize {
        self.layers.iter().filter(|l| l.param_len() > 0).count()
    }

    /// Total number of trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.layers.iter().map(|l| l.param_len()).sum()
    }

    /// Runs the forward pass.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error (typically a shape mismatch).
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    /// Runs the backward pass from the loss gradient, accumulating
    /// parameter gradients in every trainable layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] if `forward` was not
    /// called first.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<(), NnError> {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(())
    }

    /// Applies accumulated gradients through `optimizer` and advances its
    /// timestep, then clears the gradients.
    ///
    /// # Errors
    ///
    /// Returns an error if a layer's parameter buffers are inconsistent
    /// (cannot happen through the public API).
    pub fn apply_gradients(&mut self, optimizer: &mut dyn Optimizer) -> Result<(), NnError> {
        let mut trainable_idx = 0usize;
        for layer in &mut self.layers {
            if layer.param_len() == 0 {
                continue;
            }
            let mut params = layer.params().expect("trainable layer must expose params");
            let grads = layer.grads().expect("trainable layer must expose grads");
            optimizer.step(trainable_idx, params.values_mut(), grads.values());
            layer.set_params(&params)?;
            layer.zero_grads();
            trainable_idx += 1;
        }
        optimizer.advance();
        Ok(())
    }

    /// One optimization step on a batch: forward, loss, backward, update.
    /// Returns the batch loss before the update.
    ///
    /// # Errors
    ///
    /// Propagates shape/label errors from the layers or the loss.
    pub fn train_batch(
        &mut self,
        x: &Tensor,
        labels: &[usize],
        loss: &SoftmaxCrossEntropy,
        optimizer: &mut dyn Optimizer,
    ) -> Result<f32, NnError> {
        let logits = self.forward(x)?;
        let (loss_value, dlogits) = loss.loss_and_grad(&logits, labels)?;
        self.backward(&dlogits)?;
        self.apply_gradients(optimizer)?;
        Ok(loss_value)
    }

    /// Evaluates loss and accuracy on a labelled batch without updating.
    ///
    /// # Errors
    ///
    /// Propagates shape/label errors from the layers or the loss.
    pub fn evaluate(
        &mut self,
        x: &Tensor,
        labels: &[usize],
        loss: &SoftmaxCrossEntropy,
    ) -> Result<Evaluation, NnError> {
        let logits = self.forward(x)?;
        loss.evaluate(&logits, labels)
    }

    /// Extracts the per-layer parameter vectors of all trainable layers.
    pub fn params(&self) -> ModelParams {
        ModelParams::from_layers(
            self.layers
                .iter()
                .filter(|l| l.param_len() > 0)
                .map(|l| l.params().expect("trainable layer must expose params"))
                .collect(),
        )
    }

    /// Loads per-layer parameter vectors into the trainable layers.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LayerCountMismatch`] if the layer count differs,
    /// or [`NnError::ParamLengthMismatch`] if any vector has the wrong
    /// length (the model is left partially updated only up to the failing
    /// layer; callers treat this as fatal).
    pub fn set_params(&mut self, params: &ModelParams) -> Result<(), NnError> {
        let trainable: Vec<&mut Box<dyn Layer>> = self
            .layers
            .iter_mut()
            .filter(|l| l.param_len() > 0)
            .collect();
        if trainable.len() != params.num_layers() {
            return Err(NnError::LayerCountMismatch {
                expected: trainable.len(),
                actual: params.num_layers(),
            });
        }
        for (i, layer) in trainable.into_iter().enumerate() {
            layer.set_params(params.layer(i).expect("bounds checked"))?;
        }
        Ok(())
    }

    /// Extracts the accumulated gradients of all trainable layers as
    /// per-layer vectors (aligned with [`Sequential::params`]).
    pub fn grads(&self) -> ModelParams {
        ModelParams::from_layers(
            self.layers
                .iter()
                .filter(|l| l.param_len() > 0)
                .map(|l| l.grads().expect("trainable layer must expose grads"))
                .collect(),
        )
    }

    /// Clears accumulated gradients in every layer.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Per-layer parameter signature (lengths of each trainable layer).
    pub fn signature(&self) -> Vec<usize> {
        self.layers
            .iter()
            .filter(|l| l.param_len() > 0)
            .map(|l| l.param_len())
            .collect()
    }

    /// Layer names in order, for diagnostics.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Serialized size in bytes of one parameter update for this model
    /// (4 bytes per scalar) — used by the §6.5 memory accounting.
    pub fn update_size_bytes(&self) -> usize {
        self.num_parameters() * std::mem::size_of::<f32>()
    }

    /// The default parameter placeholder used by `ModelParams::default` —
    /// a zeroed parameter set matching this model's signature.
    pub fn zero_params(&self) -> ModelParams {
        ModelParams::from_layers(
            self.signature()
                .into_iter()
                .map(|len| LayerParams::from_values(vec![0.0; len]))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adam, Dense, Flatten, Relu, Sgd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Sequential::new();
        m.push(Dense::new(2, 8, &mut rng));
        m.push(Relu::new());
        m.push(Dense::new(8, 2, &mut rng));
        m
    }

    fn xor_data() -> (Tensor, Vec<usize>) {
        let x = Tensor::from_vec(vec![4, 2], vec![0., 0., 0., 1., 1., 0., 1., 1.]).unwrap();
        (x, vec![0, 1, 1, 0])
    }

    #[test]
    fn counts_layers_and_parameters() {
        let m = xor_model(0);
        assert_eq!(m.num_layers(), 3);
        assert_eq!(m.num_trainable_layers(), 2);
        assert_eq!(m.num_parameters(), 2 * 8 + 8 + 8 * 2 + 2);
        assert_eq!(m.signature(), vec![24, 18]);
        assert_eq!(m.update_size_bytes(), (24 + 18) * 4);
    }

    #[test]
    fn learns_xor_with_sgd() {
        let mut m = xor_model(42);
        let (x, y) = xor_data();
        let loss = SoftmaxCrossEntropy::new();
        let mut opt = Sgd::new(0.5);
        for _ in 0..800 {
            m.train_batch(&x, &y, &loss, &mut opt).unwrap();
        }
        let eval = m.evaluate(&x, &y, &loss).unwrap();
        assert_eq!(eval.accuracy, 1.0, "XOR not learned, loss {}", eval.loss);
    }

    #[test]
    fn learns_xor_with_adam() {
        let mut m = xor_model(43);
        let (x, y) = xor_data();
        let loss = SoftmaxCrossEntropy::new();
        let mut opt = Adam::new(0.05);
        for _ in 0..300 {
            m.train_batch(&x, &y, &loss, &mut opt).unwrap();
        }
        let eval = m.evaluate(&x, &y, &loss).unwrap();
        assert_eq!(eval.accuracy, 1.0);
    }

    #[test]
    fn params_round_trip_preserves_outputs() {
        let mut m = xor_model(7);
        let (x, _) = xor_data();
        let out1 = m.forward(&x).unwrap();
        let p = m.params();
        let mut m2 = xor_model(8); // different init
        m2.set_params(&p).unwrap();
        let out2 = m2.forward(&x).unwrap();
        assert_eq!(out1, out2);
    }

    #[test]
    fn set_params_validates_layer_count() {
        let mut m = xor_model(0);
        let p = ModelParams::from_layers(vec![LayerParams::from_values(vec![0.0; 24])]);
        assert!(matches!(
            m.set_params(&p),
            Err(NnError::LayerCountMismatch { .. })
        ));
    }

    #[test]
    fn set_params_validates_lengths() {
        let mut m = xor_model(0);
        let p = ModelParams::from_layers(vec![
            LayerParams::from_values(vec![0.0; 24]),
            LayerParams::from_values(vec![0.0; 99]),
        ]);
        assert!(matches!(
            m.set_params(&p),
            Err(NnError::ParamLengthMismatch { .. })
        ));
    }

    #[test]
    fn grads_align_with_params() {
        let mut m = xor_model(9);
        let (x, y) = xor_data();
        let loss = SoftmaxCrossEntropy::new();
        let logits = m.forward(&x).unwrap();
        let (_, d) = loss.loss_and_grad(&logits, &y).unwrap();
        m.backward(&d).unwrap();
        let g = m.grads();
        assert_eq!(g.signature(), m.params().signature());
        assert!(g.flatten().iter().any(|&v| v != 0.0));
        m.zero_grads();
        assert!(m.grads().flatten().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn deterministic_training_given_seed() {
        let run = || {
            let mut m = xor_model(11);
            let (x, y) = xor_data();
            let loss = SoftmaxCrossEntropy::new();
            let mut opt = Sgd::new(0.1);
            for _ in 0..50 {
                m.train_batch(&x, &y, &loss, &mut opt).unwrap();
            }
            m.params()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn parameter_free_model_has_empty_params() {
        let mut m = Sequential::new();
        m.push(Flatten::new());
        assert_eq!(m.num_trainable_layers(), 0);
        assert_eq!(m.params().num_layers(), 0);
    }
}
