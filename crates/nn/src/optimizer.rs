//! Optimizers.
//!
//! Two optimizers are provided: plain [`Sgd`] — whose privacy vulnerability
//! the ∇Sim attack exploits (the update direction mirrors the local data) —
//! and [`Adam`], which the paper uses for the main training runs ("we use
//! the Adam optimizer proposed by TensorFlow", §6.1.4). Defaults match the
//! TensorFlow/Keras defaults.

use std::collections::HashMap;

/// An optimization algorithm applying per-layer gradient steps.
///
/// The trait is object-safe so models can hold `&mut dyn Optimizer`.
/// `layer_idx` identifies the trainable layer, letting stateful optimizers
/// (Adam) keep separate moment estimates per layer.
pub trait Optimizer: std::fmt::Debug + Send {
    /// Updates `params` in place given the accumulated `grads` of trainable
    /// layer `layer_idx`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `params` and `grads` lengths differ;
    /// the model guarantees alignment.
    fn step(&mut self, layer_idx: usize, params: &mut [f32], grads: &[f32]);

    /// Advances the global timestep (call once per batch, after all layers
    /// have been stepped). Stateless optimizers may ignore this.
    fn advance(&mut self) {}

    /// The base learning rate.
    fn learning_rate(&self) -> f32;
}

/// Stochastic gradient descent: `θ ← θ − η·∇θ`.
///
/// # Example
///
/// ```
/// use mixnn_nn::{Optimizer, Sgd};
///
/// let mut opt = Sgd::new(0.5);
/// let mut params = vec![1.0f32];
/// opt.step(0, &mut params, &[2.0]);
/// assert_eq!(params, vec![0.0]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, _layer_idx: usize, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "sgd: param/grad length mismatch");
        for (p, &g) in params.iter_mut().zip(grads.iter()) {
            *p -= self.lr * g;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adam optimizer (Kingma & Ba) with bias-corrected moment estimates.
///
/// State (first and second moments) is kept per layer index; the timestep
/// `t` is shared and advanced by [`Optimizer::advance`].
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    moments: HashMap<usize, (Vec<f32>, Vec<f32>)>,
}

impl Adam {
    /// Creates Adam with the given learning rate and TensorFlow-default
    /// β₁ = 0.9, β₂ = 0.999, ε = 1e-7.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999, 1e-7)
    }

    /// Creates Adam with explicit hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive or the betas are outside `[0, 1)`.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0, 1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0, 1)");
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            moments: HashMap::new(),
        }
    }

    /// Resets all moment state (used when a fresh global model arrives in a
    /// new federated round, mirroring a fresh TF optimizer per round).
    pub fn reset(&mut self) {
        self.t = 0;
        self.moments.clear();
    }
}

impl Optimizer for Adam {
    fn step(&mut self, layer_idx: usize, params: &mut [f32], grads: &[f32]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "adam: param/grad length mismatch"
        );
        let (m, v) = self
            .moments
            .entry(layer_idx)
            .or_insert_with(|| (vec![0.0; params.len()], vec![0.0; params.len()]));
        assert_eq!(m.len(), params.len(), "adam: layer size changed");
        // `t` is advanced once per batch by `advance`; the current step uses
        // t+1 so the very first update is bias-corrected.
        let t = (self.t + 1) as i32;
        let bc1 = 1.0 - self.beta1.powi(t);
        let bc2 = 1.0 - self.beta2.powi(t);
        for i in 0..params.len() {
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grads[i];
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let m_hat = m[i] / bc1;
            let v_hat = v[i] / bc2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn advance(&mut self) {
        self.t += 1;
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_moves_against_gradient() {
        let mut opt = Sgd::new(0.1);
        let mut p = vec![1.0f32, -1.0];
        opt.step(0, &mut p, &[1.0, -1.0]);
        assert_eq!(p, vec![0.9, -0.9]);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn sgd_rejects_nonpositive_lr() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    fn adam_first_step_size_is_about_lr() {
        // With bias correction, the first Adam step has magnitude ≈ lr
        // regardless of gradient scale.
        let mut opt = Adam::new(0.01);
        let mut p = vec![0.0f32];
        opt.step(0, &mut p, &[123.0]);
        assert!((p[0] + 0.01).abs() < 1e-3, "step was {}", p[0]);
    }

    #[test]
    fn adam_keeps_per_layer_state() {
        let mut opt = Adam::new(0.01);
        let mut p0 = vec![0.0f32];
        let mut p1 = vec![0.0f32];
        opt.step(0, &mut p0, &[1.0]);
        opt.advance();
        // Layer 1 first touched at t=1: still gets a fresh, bias-corrected
        // first step.
        opt.step(1, &mut p1, &[1.0]);
        assert!(p1[0] < 0.0);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimise f(x) = (x - 3)², ∇f = 2(x - 3).
        let mut opt = Adam::new(0.1);
        let mut p = vec![0.0f32];
        for _ in 0..500 {
            let g = 2.0 * (p[0] - 3.0);
            opt.step(0, &mut p, &[g]);
            opt.advance();
        }
        assert!((p[0] - 3.0).abs() < 0.05, "converged to {}", p[0]);
    }

    #[test]
    fn adam_reset_clears_state() {
        let mut opt = Adam::new(0.01);
        let mut p = vec![0.0f32];
        opt.step(0, &mut p, &[1.0]);
        opt.advance();
        opt.reset();
        let mut q = vec![0.0f32];
        opt.step(0, &mut q, &[1.0]);
        // After reset the step must equal a fresh optimizer's first step.
        assert!((q[0] - p[0]).abs() < 1e-7);
    }

    #[test]
    fn sgd_convergence_beats_initial_loss() {
        let mut opt = Sgd::new(0.05);
        let mut p = vec![10.0f32];
        for _ in 0..200 {
            let g = 2.0 * p[0];
            opt.step(0, &mut p, &[g]);
        }
        assert!(p[0].abs() < 0.01);
    }
}
