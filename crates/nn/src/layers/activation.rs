//! Activation layers.

use crate::layers::Layer;
use crate::{LayerParams, NnError};
use mixnn_tensor::Tensor;

/// Rectified linear unit: `y = max(0, x)` element-wise.
///
/// Parameter-free; `backward` masks the incoming gradient with the
/// positivity pattern of the cached input.
///
/// # Example
///
/// ```
/// use mixnn_nn::{Layer, Relu};
/// use mixnn_tensor::Tensor;
///
/// # fn main() -> Result<(), mixnn_nn::NnError> {
/// let mut relu = Relu::new();
/// let x = Tensor::from_vec(vec![3], vec![-1.0, 0.0, 2.0])?;
/// let y = relu.forward(&x)?;
/// assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Relu {
    cached_input: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU activation layer.
    pub fn new() -> Self {
        Relu { cached_input: None }
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        self.cached_input = Some(input.clone());
        Ok(input.map(|v| v.max(0.0)))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: self.name().to_string(),
            })?;
        if input.dims() != grad_output.dims() {
            return Err(NnError::BadInput {
                layer: self.name().to_string(),
                expected: format!("{:?}", input.dims()),
                actual: grad_output.dims().to_vec(),
            });
        }
        Ok(grad_output.zip_map(input, |g, x| if x > 0.0 { g } else { 0.0 })?)
    }

    fn params(&self) -> Option<LayerParams> {
        None
    }

    fn set_params(&mut self, params: &LayerParams) -> Result<(), NnError> {
        crate::layers::check_param_len(self.name(), 0, params)
    }

    fn grads(&self) -> Option<LayerParams> {
        None
    }

    fn zero_grads(&mut self) {}

    fn param_len(&self) -> usize {
        0
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![4], vec![-2.0, -0.0, 0.5, 3.0]).unwrap();
        let y = relu.forward(&x).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 0.5, 3.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![3], vec![-1.0, 1.0, 2.0]).unwrap();
        relu.forward(&x).unwrap();
        let g = Tensor::from_vec(vec![3], vec![10.0, 10.0, 10.0]).unwrap();
        let dx = relu.backward(&g).unwrap();
        assert_eq!(dx.data(), &[0.0, 10.0, 10.0]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut relu = Relu::new();
        let g = Tensor::zeros(vec![1]);
        assert!(matches!(
            relu.backward(&g),
            Err(NnError::BackwardBeforeForward { .. })
        ));
    }

    #[test]
    fn has_no_params() {
        let relu = Relu::new();
        assert!(relu.params().is_none());
        assert_eq!(relu.param_len(), 0);
    }

    #[test]
    fn gradient_check_away_from_kink() {
        // Keep inputs away from 0 where ReLU is non-differentiable.
        let x = Tensor::from_fn(vec![2, 6], |i| {
            if i % 2 == 0 {
                1.0 + i as f32
            } else {
                -1.0 - i as f32
            }
        });
        crate::gradcheck::check_layer(Box::new(Relu::new()), &x, 1e-2).unwrap();
    }
}
