//! 2-D convolution layer (NCHW).

use crate::layers::{check_param_len, Layer};
use crate::{LayerParams, NnError};
use mixnn_tensor::{init, Tensor};
use rand::Rng;

/// A 2-D convolution over `[batch, in_channels, height, width]` inputs.
///
/// Kernels are `[out_channels, in_channels, kernel, kernel]` with a bias per
/// output channel; stride and symmetric zero padding are configurable. The
/// flat parameter layout is the kernel tensor row-major followed by the
/// biases.
///
/// The implementation uses direct loops rather than im2col: the paper's
/// models are small (two to three conv layers on ≤ 32×32 inputs), and
/// direct loops keep the backward pass transparently auditable.
///
/// # Example
///
/// ```
/// use mixnn_nn::{Conv2d, Layer};
/// use mixnn_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), mixnn_nn::NnError> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
/// let x = Tensor::zeros(vec![2, 3, 8, 8]);
/// let y = conv.forward(&x)?;
/// assert_eq!(y.dims(), &[2, 8, 8, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    weights: Tensor,
    bias: Tensor,
    grad_weights: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with Glorot-uniform kernels and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut R,
    ) -> Self {
        assert!(kernel > 0, "kernel size must be positive");
        assert!(stride > 0, "stride must be positive");
        let fan_in = in_channels * kernel * kernel;
        let fan_out = out_channels * kernel * kernel;
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            weights: init::glorot_uniform(
                fan_in,
                fan_out,
                vec![out_channels, in_channels, kernel, kernel],
                rng,
            ),
            bias: Tensor::zeros(vec![out_channels]),
            grad_weights: Tensor::zeros(vec![out_channels, in_channels, kernel, kernel]),
            grad_bias: Tensor::zeros(vec![out_channels]),
            cached_input: None,
        }
    }

    /// Output spatial size for an input spatial size, or `None` if the
    /// kernel does not fit.
    pub fn output_size(&self, input: usize) -> Option<usize> {
        let padded = input + 2 * self.padding;
        if padded < self.kernel {
            return None;
        }
        Some((padded - self.kernel) / self.stride + 1)
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    fn validate_input(&self, input: &Tensor) -> Result<(usize, usize, usize), NnError> {
        let bad = || NnError::BadInput {
            layer: "conv2d".to_string(),
            expected: format!("[batch, {}, h, w] with kernel fitting", self.in_channels),
            actual: input.dims().to_vec(),
        };
        if input.rank() != 4 || input.dims()[1] != self.in_channels {
            return Err(bad());
        }
        let (h, w) = (input.dims()[2], input.dims()[3]);
        let oh = self.output_size(h).ok_or_else(bad)?;
        let ow = self.output_size(w).ok_or_else(bad)?;
        Ok((input.dims()[0], oh, ow))
    }

    #[inline]
    fn w_at(&self, oc: usize, ic: usize, kh: usize, kw: usize) -> f32 {
        let k = self.kernel;
        self.weights.data()[((oc * self.in_channels + ic) * k + kh) * k + kw]
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let (batch, oh, ow) = self.validate_input(input)?;
        let (h, w) = (input.dims()[2], input.dims()[3]);
        let (ic_n, oc_n, k, s, p) = (
            self.in_channels,
            self.out_channels,
            self.kernel,
            self.stride,
            self.padding,
        );
        let mut out = Tensor::zeros(vec![batch, oc_n, oh, ow]);
        let x = input.data();
        let o = out.data_mut();
        for b in 0..batch {
            for oc in 0..oc_n {
                let bias = self.bias.data()[oc];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias;
                        for ic in 0..ic_n {
                            for kh in 0..k {
                                let iy = (oy * s + kh) as isize - p as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kw in 0..k {
                                    let ix = (ox * s + kw) as isize - p as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let xi = ((b * ic_n + ic) * h + iy as usize) * w + ix as usize;
                                    acc += x[xi] * self.w_at(oc, ic, kh, kw);
                                }
                            }
                        }
                        o[((b * oc_n + oc) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: self.name().to_string(),
            })?
            .clone();
        let (batch, oh, ow) = self.validate_input(&input)?;
        if grad_output.dims() != [batch, self.out_channels, oh, ow] {
            return Err(NnError::BadInput {
                layer: self.name().to_string(),
                expected: format!("[{batch}, {}, {oh}, {ow}]", self.out_channels),
                actual: grad_output.dims().to_vec(),
            });
        }
        let (h, w) = (input.dims()[2], input.dims()[3]);
        let (ic_n, oc_n, k, s, p) = (
            self.in_channels,
            self.out_channels,
            self.kernel,
            self.stride,
            self.padding,
        );
        let x = input.data();
        let g = grad_output.data();
        let mut dx = Tensor::zeros(input.dims().to_vec());

        for b in 0..batch {
            for oc in 0..oc_n {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let go = g[((b * oc_n + oc) * oh + oy) * ow + ox];
                        if go == 0.0 {
                            continue;
                        }
                        self.grad_bias.data_mut()[oc] += go;
                        for ic in 0..ic_n {
                            for kh in 0..k {
                                let iy = (oy * s + kh) as isize - p as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kw in 0..k {
                                    let ix = (ox * s + kw) as isize - p as isize;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    let xi = ((b * ic_n + ic) * h + iy as usize) * w + ix as usize;
                                    let wi = ((oc * ic_n + ic) * k + kh) * k + kw;
                                    self.grad_weights.data_mut()[wi] += go * x[xi];
                                    dx.data_mut()[xi] += go * self.weights.data()[wi];
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(dx)
    }

    fn params(&self) -> Option<LayerParams> {
        let mut v = Vec::with_capacity(self.param_len());
        v.extend_from_slice(self.weights.data());
        v.extend_from_slice(self.bias.data());
        Some(LayerParams::from_values(v))
    }

    fn set_params(&mut self, params: &LayerParams) -> Result<(), NnError> {
        check_param_len(self.name(), self.param_len(), params)?;
        let w_len = self.weights.len();
        self.weights
            .data_mut()
            .copy_from_slice(&params.values()[..w_len]);
        self.bias
            .data_mut()
            .copy_from_slice(&params.values()[w_len..]);
        Ok(())
    }

    fn grads(&self) -> Option<LayerParams> {
        let mut v = Vec::with_capacity(self.param_len());
        v.extend_from_slice(self.grad_weights.data());
        v.extend_from_slice(self.grad_bias.data());
        Some(LayerParams::from_values(v))
    }

    fn zero_grads(&mut self) {
        self.grad_weights.map_in_place(|_| 0.0);
        self.grad_bias.map_in_place(|_| 0.0);
    }

    fn param_len(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel * self.kernel + self.out_channels
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_size_arithmetic() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::new(1, 1, 3, 1, 1, &mut rng);
        assert_eq!(conv.output_size(8), Some(8));
        let conv2 = Conv2d::new(1, 1, 3, 2, 0, &mut rng);
        assert_eq!(conv2.output_size(7), Some(3));
        assert_eq!(conv2.output_size(1), None);
    }

    #[test]
    fn identity_kernel_preserves_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        conv.set_params(&LayerParams::from_values(vec![1.0, 0.0]))
            .unwrap();
        let x = Tensor::from_fn(vec![1, 1, 3, 3], |i| i as f32);
        let y = conv.forward(&x).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn hand_computed_3x3_valid_conv() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, &mut rng);
        // Kernel [[1, 2], [3, 4]], bias 0.5.
        conv.set_params(&LayerParams::from_values(vec![1., 2., 3., 4., 0.5]))
            .unwrap();
        // Input 3x3: 0..9.
        let x = Tensor::from_fn(vec![1, 1, 3, 3], |i| i as f32);
        let y = conv.forward(&x).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        // Window at (0,0): 0*1 + 1*2 + 3*3 + 4*4 = 27, plus bias.
        assert_eq!(y.data(), &[27.5, 37.5, 57.5, 67.5]);
    }

    #[test]
    fn padding_grows_output() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(vec![1, 2, 5, 5], 0.0, 1.0, &mut rng);
        let y = conv.forward(&x).unwrap();
        assert_eq!(y.dims(), &[1, 3, 5, 5]);
    }

    #[test]
    fn rejects_wrong_channels() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::zeros(vec![1, 5, 5, 5]);
        assert!(matches!(conv.forward(&x), Err(NnError::BadInput { .. })));
    }

    #[test]
    fn param_round_trip() {
        let mut rng = StdRng::seed_from_u64(2);
        let conv = Conv2d::new(2, 4, 3, 1, 1, &mut rng);
        assert_eq!(conv.param_len(), 4 * 2 * 9 + 4);
        let p = conv.params().unwrap();
        let mut other = Conv2d::new(2, 4, 3, 1, 1, &mut rng);
        other.set_params(&p).unwrap();
        assert_eq!(other.params().unwrap(), p);
    }

    #[test]
    fn numerical_gradient_check_no_padding() {
        let mut rng = StdRng::seed_from_u64(3);
        let conv = Conv2d::new(2, 3, 3, 1, 0, &mut rng);
        let x = Tensor::randn(vec![2, 2, 5, 5], 0.0, 1.0, &mut rng);
        crate::gradcheck::check_layer(Box::new(conv), &x, 2e-2).unwrap();
    }

    #[test]
    fn numerical_gradient_check_with_padding_and_stride() {
        let mut rng = StdRng::seed_from_u64(4);
        let conv = Conv2d::new(1, 2, 3, 2, 1, &mut rng);
        let x = Tensor::randn(vec![1, 1, 6, 6], 0.0, 1.0, &mut rng);
        crate::gradcheck::check_layer(Box::new(conv), &x, 2e-2).unwrap();
    }
}
