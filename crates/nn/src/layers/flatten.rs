//! Flattening layer.

use crate::layers::Layer;
use crate::{LayerParams, NnError};
use mixnn_tensor::Tensor;

/// Flattens `[batch, d1, d2, …]` into `[batch, d1·d2·…]`.
///
/// Parameter-free; remembers the input shape so `backward` can restore it.
///
/// # Example
///
/// ```
/// use mixnn_nn::{Flatten, Layer};
/// use mixnn_tensor::Tensor;
///
/// # fn main() -> Result<(), mixnn_nn::NnError> {
/// let mut flatten = Flatten::new();
/// let x = Tensor::zeros(vec![2, 3, 4, 4]);
/// let y = flatten.forward(&x)?;
/// assert_eq!(y.dims(), &[2, 48]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cached_dims: None }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.rank() < 2 {
            return Err(NnError::BadInput {
                layer: self.name().to_string(),
                expected: "[batch, …] with rank ≥ 2".to_string(),
                actual: input.dims().to_vec(),
            });
        }
        let batch = input.dims()[0];
        let rest: usize = input.dims()[1..].iter().product();
        self.cached_dims = Some(input.dims().to_vec());
        Ok(input.reshape(vec![batch, rest])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let dims = self
            .cached_dims
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: self.name().to_string(),
            })?;
        Ok(grad_output.reshape(dims.clone())?)
    }

    fn params(&self) -> Option<LayerParams> {
        None
    }

    fn set_params(&mut self, params: &LayerParams) -> Result<(), NnError> {
        crate::layers::check_param_len(self.name(), 0, params)
    }

    fn grads(&self) -> Option<LayerParams> {
        None
    }

    fn zero_grads(&mut self) {}

    fn param_len(&self) -> usize {
        0
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_restores_shape() {
        let mut f = Flatten::new();
        let x = Tensor::from_fn(vec![2, 3, 4], |i| i as f32);
        let y = f.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 12]);
        let dx = f.backward(&y).unwrap();
        assert_eq!(dx.dims(), &[2, 3, 4]);
        assert_eq!(dx.data(), x.data());
    }

    #[test]
    fn rejects_rank_one() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(vec![5]);
        assert!(matches!(f.forward(&x), Err(NnError::BadInput { .. })));
    }

    #[test]
    fn backward_requires_forward() {
        let mut f = Flatten::new();
        assert!(matches!(
            f.backward(&Tensor::zeros(vec![1, 1])),
            Err(NnError::BackwardBeforeForward { .. })
        ));
    }
}
