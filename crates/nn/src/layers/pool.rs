//! 2-D max pooling.

use crate::layers::Layer;
use crate::{LayerParams, NnError};
use mixnn_tensor::Tensor;

/// Max pooling over `[batch, channels, height, width]` inputs with a square
/// window and equal stride.
///
/// Parameter-free. The forward pass records the flat index of each window's
/// maximum so the backward pass routes gradients only to the winning
/// positions (ties go to the first maximal element scanned, row-major).
///
/// # Example
///
/// ```
/// use mixnn_nn::{Layer, MaxPool2d};
/// use mixnn_tensor::Tensor;
///
/// # fn main() -> Result<(), mixnn_nn::NnError> {
/// let mut pool = MaxPool2d::new(2);
/// let x = Tensor::from_fn(vec![1, 1, 4, 4], |i| i as f32);
/// let y = pool.forward(&x)?;
/// assert_eq!(y.dims(), &[1, 1, 2, 2]);
/// assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    argmax: Vec<usize>,
    input_dims: Option<Vec<usize>>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with a `window`×`window` kernel and stride
    /// equal to the window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "pool window must be positive");
        MaxPool2d {
            window,
            argmax: Vec::new(),
            input_dims: None,
        }
    }

    /// The pooling window (and stride).
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.rank() != 4 || input.dims()[2] < self.window || input.dims()[3] < self.window {
            return Err(NnError::BadInput {
                layer: self.name().to_string(),
                expected: format!("[batch, c, h≥{0}, w≥{0}]", self.window),
                actual: input.dims().to_vec(),
            });
        }
        let (batch, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let k = self.window;
        let (oh, ow) = (h / k, w / k);
        let mut out = Tensor::zeros(vec![batch, c, oh, ow]);
        self.argmax = vec![0; batch * c * oh * ow];
        let x = input.data();
        for b in 0..batch {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = oy * k + ky;
                                let ix = ox * k + kx;
                                let idx = ((b * c + ch) * h + iy) * w + ix;
                                if x[idx] > best {
                                    best = x[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let oidx = ((b * c + ch) * oh + oy) * ow + ox;
                        out.data_mut()[oidx] = best;
                        self.argmax[oidx] = best_idx;
                    }
                }
            }
        }
        self.input_dims = Some(input.dims().to_vec());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let dims = self
            .input_dims
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: self.name().to_string(),
            })?;
        if grad_output.len() != self.argmax.len() {
            return Err(NnError::BadInput {
                layer: self.name().to_string(),
                expected: format!("{} elements", self.argmax.len()),
                actual: grad_output.dims().to_vec(),
            });
        }
        let mut dx = Tensor::zeros(dims.clone());
        for (oidx, &iidx) in self.argmax.iter().enumerate() {
            dx.data_mut()[iidx] += grad_output.data()[oidx];
        }
        Ok(dx)
    }

    fn params(&self) -> Option<LayerParams> {
        None
    }

    fn set_params(&mut self, params: &LayerParams) -> Result<(), NnError> {
        crate::layers::check_param_len(self.name(), 0, params)
    }

    fn grads(&self) -> Option<LayerParams> {
        None
    }

    fn zero_grads(&mut self) {}

    fn param_len(&self) -> usize {
        0
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_picks_window_maxima() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1, 1, 2, 4], vec![1., 9., 2., 3., 4., 5., 8., 6.]).unwrap();
        let y = pool.forward(&x).unwrap();
        assert_eq!(y.dims(), &[1, 1, 1, 2]);
        assert_eq!(y.data(), &[9.0, 8.0]);
    }

    #[test]
    fn backward_routes_to_argmax_only() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1., 9., 2., 3.]).unwrap();
        pool.forward(&x).unwrap();
        let g = Tensor::from_vec(vec![1, 1, 1, 1], vec![5.0]).unwrap();
        let dx = pool.backward(&g).unwrap();
        assert_eq!(dx.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn rejects_window_larger_than_input() {
        let mut pool = MaxPool2d::new(4);
        let x = Tensor::zeros(vec![1, 1, 2, 2]);
        assert!(matches!(pool.forward(&x), Err(NnError::BadInput { .. })));
    }

    #[test]
    fn gradient_check_with_distinct_values() {
        // Distinct inputs keep the argmax stable under the probe epsilon.
        let x = Tensor::from_fn(vec![1, 2, 4, 4], |i| (i as f32) * 1.7 % 13.0);
        crate::gradcheck::check_layer(Box::new(MaxPool2d::new(2)), &x, 1e-2).unwrap();
    }

    #[test]
    fn non_divisible_sizes_truncate() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_fn(vec![1, 1, 5, 5], |i| i as f32);
        let y = pool.forward(&x).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
    }
}
