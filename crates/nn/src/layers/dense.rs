//! Fully connected (dense) layer.

use crate::layers::{check_param_len, Layer};
use crate::{LayerParams, NnError};
use mixnn_tensor::{init, Tensor};
use rand::Rng;

/// A fully connected layer computing `Y = X·W + b`.
///
/// Input is `[batch, in_features]`, output `[batch, out_features]`. The
/// weight matrix is stored `[in_features, out_features]` so the forward pass
/// is a plain matmul. The flat parameter layout is `W` row-major followed by
/// `b` — this layout is part of the wire format the MixNN proxy shuffles, so
/// it is stable and documented.
///
/// # Example
///
/// ```
/// use mixnn_nn::{Dense, Layer};
/// use mixnn_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), mixnn_nn::NnError> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut layer = Dense::new(3, 2, &mut rng);
/// let x = Tensor::ones(vec![4, 3]);
/// let y = layer.forward(&x)?;
/// assert_eq!(y.dims(), &[4, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    weights: Tensor,
    bias: Tensor,
    grad_weights: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Glorot-uniform weights and zero bias.
    pub fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        Dense {
            in_features,
            out_features,
            weights: init::glorot_uniform(
                in_features,
                out_features,
                vec![in_features, out_features],
                rng,
            ),
            bias: Tensor::zeros(vec![out_features]),
            grad_weights: Tensor::zeros(vec![in_features, out_features]),
            grad_bias: Tensor::zeros(vec![out_features]),
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight matrix, `[in_features, out_features]`.
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// The bias vector, `[out_features]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.rank() != 2 || input.dims()[1] != self.in_features {
            return Err(NnError::BadInput {
                layer: self.name().to_string(),
                expected: format!("[batch, {}]", self.in_features),
                actual: input.dims().to_vec(),
            });
        }
        let mut out = input.matmul(&self.weights)?;
        let batch = out.dims()[0];
        let of = self.out_features;
        {
            let data = out.data_mut();
            for b in 0..batch {
                for (o, &bias) in data[b * of..(b + 1) * of].iter_mut().zip(self.bias.data()) {
                    *o += bias;
                }
            }
        }
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: self.name().to_string(),
            })?;
        if grad_output.rank() != 2
            || grad_output.dims()[1] != self.out_features
            || grad_output.dims()[0] != input.dims()[0]
        {
            return Err(NnError::BadInput {
                layer: self.name().to_string(),
                expected: format!("[{}, {}]", input.dims()[0], self.out_features),
                actual: grad_output.dims().to_vec(),
            });
        }
        // dW = Xᵀ · dY, accumulated.
        let dw = input.matmul_tn(grad_output)?;
        self.grad_weights.add_assign(&dw)?;
        // db = column sums of dY, accumulated.
        let batch = grad_output.dims()[0];
        {
            let gb = self.grad_bias.data_mut();
            for b in 0..batch {
                for (g, &d) in gb.iter_mut().zip(grad_output.row(b)) {
                    *g += d;
                }
            }
        }
        // dX = dY · Wᵀ.
        let dx = grad_output.matmul_nt(&self.weights)?;
        Ok(dx)
    }

    fn params(&self) -> Option<LayerParams> {
        let mut v = Vec::with_capacity(self.param_len());
        v.extend_from_slice(self.weights.data());
        v.extend_from_slice(self.bias.data());
        Some(LayerParams::from_values(v))
    }

    fn set_params(&mut self, params: &LayerParams) -> Result<(), NnError> {
        check_param_len(self.name(), self.param_len(), params)?;
        let w_len = self.weights.len();
        self.weights
            .data_mut()
            .copy_from_slice(&params.values()[..w_len]);
        self.bias
            .data_mut()
            .copy_from_slice(&params.values()[w_len..]);
        Ok(())
    }

    fn grads(&self) -> Option<LayerParams> {
        let mut v = Vec::with_capacity(self.param_len());
        v.extend_from_slice(self.grad_weights.data());
        v.extend_from_slice(self.grad_bias.data());
        Some(LayerParams::from_values(v))
    }

    fn zero_grads(&mut self) {
        self.grad_weights.map_in_place(|_| 0.0);
        self.grad_bias.map_in_place(|_| 0.0);
    }

    fn param_len(&self) -> usize {
        self.in_features * self.out_features + self.out_features
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Dense::new(2, 3, &mut rng);
        // Set known parameters: W = rows of ones, b = [1, 2, 3].
        let mut params = vec![1.0f32; 6];
        params.extend_from_slice(&[1.0, 2.0, 3.0]);
        layer.set_params(&LayerParams::from_values(params)).unwrap();
        let x = Tensor::from_vec(vec![1, 2], vec![10.0, 20.0]).unwrap();
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.data(), &[31.0, 32.0, 33.0]);
    }

    #[test]
    fn forward_rejects_wrong_width() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Dense::new(2, 3, &mut rng);
        let x = Tensor::zeros(vec![1, 5]);
        assert!(matches!(layer.forward(&x), Err(NnError::BadInput { .. })));
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Dense::new(2, 3, &mut rng);
        let g = Tensor::zeros(vec![1, 3]);
        assert!(matches!(
            layer.backward(&g),
            Err(NnError::BackwardBeforeForward { .. })
        ));
    }

    #[test]
    fn params_round_trip() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = Dense::new(4, 5, &mut rng);
        let p = layer.params().unwrap();
        assert_eq!(p.len(), 4 * 5 + 5);
        let mut other = Dense::new(4, 5, &mut rng);
        other.set_params(&p).unwrap();
        assert_eq!(other.params().unwrap(), p);
    }

    #[test]
    fn set_params_rejects_wrong_len() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = Dense::new(2, 2, &mut rng);
        let bad = LayerParams::from_values(vec![0.0; 3]);
        assert!(matches!(
            layer.set_params(&bad),
            Err(NnError::ParamLengthMismatch { .. })
        ));
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Dense::new(2, 2, &mut rng);
        let x = Tensor::ones(vec![1, 2]);
        let g = Tensor::ones(vec![1, 2]);
        layer.forward(&x).unwrap();
        layer.backward(&g).unwrap();
        let g1 = layer.grads().unwrap();
        layer.forward(&x).unwrap();
        layer.backward(&g).unwrap();
        let g2 = layer.grads().unwrap();
        for (a, b) in g1.values().iter().zip(g2.values()) {
            assert!((b - 2.0 * a).abs() < 1e-6);
        }
        layer.zero_grads();
        assert!(layer.grads().unwrap().values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn numerical_gradient_check() {
        let mut rng = StdRng::seed_from_u64(4);
        let layer = Dense::new(3, 2, &mut rng);
        let x = Tensor::randn(vec![2, 3], 0.0, 1.0, &mut rng);
        crate::gradcheck::check_layer(Box::new(layer), &x, 1e-2).unwrap();
    }
}
