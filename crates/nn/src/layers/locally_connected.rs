//! Locally connected 2-D layer (unshared convolution).
//!
//! The paper's LFW experiment uses the DeepFace architecture, whose
//! distinguishing component is *locally connected* layers: convolutions
//! whose kernels are **not shared** across spatial positions. This layer
//! provides that building block for the `zoo::deepface_like` model.

use crate::layers::{check_param_len, Layer};
use crate::{LayerParams, NnError};
use mixnn_tensor::{init, Tensor};
use rand::Rng;

/// Locally connected layer: like [`crate::Conv2d`] with `stride`=1 and no
/// padding, but with an independent kernel at every output position.
///
/// Weights have shape
/// `[out_channels, out_h, out_w, in_channels, kernel, kernel]` and biases
/// `[out_channels, out_h, out_w]`; the flat parameter layout is weights then
/// biases, both row-major. Note the parameter count grows with the output
/// area — exactly the property that makes DeepFace-style models large,
/// which the paper's §6.5 memory discussion depends on.
#[derive(Debug, Clone)]
pub struct LocallyConnected2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    in_h: usize,
    in_w: usize,
    weights: Tensor,
    bias: Tensor,
    grad_weights: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl LocallyConnected2d {
    /// Creates a locally connected layer for a fixed input spatial size
    /// `in_h`×`in_w` (the unshared kernels make the layer shape-specific).
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is zero or larger than the input extent.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        in_h: usize,
        in_w: usize,
        rng: &mut R,
    ) -> Self {
        assert!(kernel > 0, "kernel size must be positive");
        assert!(
            kernel <= in_h && kernel <= in_w,
            "kernel must fit in the input"
        );
        let (out_h, out_w) = (in_h - kernel + 1, in_w - kernel + 1);
        let fan_in = in_channels * kernel * kernel;
        let w_dims = vec![out_channels, out_h, out_w, in_channels, kernel, kernel];
        LocallyConnected2d {
            in_channels,
            out_channels,
            kernel,
            in_h,
            in_w,
            weights: init::glorot_uniform(fan_in, out_channels, w_dims.clone(), rng),
            bias: Tensor::zeros(vec![out_channels, out_h, out_w]),
            grad_weights: Tensor::zeros(w_dims),
            grad_bias: Tensor::zeros(vec![out_channels, out_h, out_w]),
            cached_input: None,
        }
    }

    /// Output spatial height.
    pub fn out_h(&self) -> usize {
        self.in_h - self.kernel + 1
    }

    /// Output spatial width.
    pub fn out_w(&self) -> usize {
        self.in_w - self.kernel + 1
    }

    #[inline]
    fn w_idx(&self, oc: usize, oy: usize, ox: usize, ic: usize, kh: usize, kw: usize) -> usize {
        let (oh, ow, icn, k) = (self.out_h(), self.out_w(), self.in_channels, self.kernel);
        ((((oc * oh + oy) * ow + ox) * icn + ic) * k + kh) * k + kw
    }
}

impl Layer for LocallyConnected2d {
    fn name(&self) -> &'static str {
        "locally_connected2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        if input.rank() != 4
            || input.dims()[1] != self.in_channels
            || input.dims()[2] != self.in_h
            || input.dims()[3] != self.in_w
        {
            return Err(NnError::BadInput {
                layer: self.name().to_string(),
                expected: format!(
                    "[batch, {}, {}, {}]",
                    self.in_channels, self.in_h, self.in_w
                ),
                actual: input.dims().to_vec(),
            });
        }
        let batch = input.dims()[0];
        let (oh, ow) = (self.out_h(), self.out_w());
        let (icn, ocn, k, h, w) = (
            self.in_channels,
            self.out_channels,
            self.kernel,
            self.in_h,
            self.in_w,
        );
        let mut out = Tensor::zeros(vec![batch, ocn, oh, ow]);
        let x = input.data();
        for b in 0..batch {
            for oc in 0..ocn {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = self.bias.data()[(oc * oh + oy) * ow + ox];
                        for ic in 0..icn {
                            for kh in 0..k {
                                for kw in 0..k {
                                    let xi = ((b * icn + ic) * h + oy + kh) * w + ox + kw;
                                    acc += x[xi]
                                        * self.weights.data()[self.w_idx(oc, oy, ox, ic, kh, kw)];
                                }
                            }
                        }
                        out.data_mut()[((b * ocn + oc) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: self.name().to_string(),
            })?
            .clone();
        let batch = input.dims()[0];
        let (oh, ow) = (self.out_h(), self.out_w());
        if grad_output.dims() != [batch, self.out_channels, oh, ow] {
            return Err(NnError::BadInput {
                layer: self.name().to_string(),
                expected: format!("[{batch}, {}, {oh}, {ow}]", self.out_channels),
                actual: grad_output.dims().to_vec(),
            });
        }
        let (icn, ocn, k, h, w) = (
            self.in_channels,
            self.out_channels,
            self.kernel,
            self.in_h,
            self.in_w,
        );
        let x = input.data();
        let g = grad_output.data();
        let mut dx = Tensor::zeros(input.dims().to_vec());
        for b in 0..batch {
            for oc in 0..ocn {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let go = g[((b * ocn + oc) * oh + oy) * ow + ox];
                        if go == 0.0 {
                            continue;
                        }
                        self.grad_bias.data_mut()[(oc * oh + oy) * ow + ox] += go;
                        for ic in 0..icn {
                            for kh in 0..k {
                                for kw in 0..k {
                                    let xi = ((b * icn + ic) * h + oy + kh) * w + ox + kw;
                                    let wi = self.w_idx(oc, oy, ox, ic, kh, kw);
                                    self.grad_weights.data_mut()[wi] += go * x[xi];
                                    dx.data_mut()[xi] += go * self.weights.data()[wi];
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(dx)
    }

    fn params(&self) -> Option<LayerParams> {
        let mut v = Vec::with_capacity(self.param_len());
        v.extend_from_slice(self.weights.data());
        v.extend_from_slice(self.bias.data());
        Some(LayerParams::from_values(v))
    }

    fn set_params(&mut self, params: &LayerParams) -> Result<(), NnError> {
        check_param_len(self.name(), self.param_len(), params)?;
        let w_len = self.weights.len();
        self.weights
            .data_mut()
            .copy_from_slice(&params.values()[..w_len]);
        self.bias
            .data_mut()
            .copy_from_slice(&params.values()[w_len..]);
        Ok(())
    }

    fn grads(&self) -> Option<LayerParams> {
        let mut v = Vec::with_capacity(self.param_len());
        v.extend_from_slice(self.grad_weights.data());
        v.extend_from_slice(self.grad_bias.data());
        Some(LayerParams::from_values(v))
    }

    fn zero_grads(&mut self) {
        self.grad_weights.map_in_place(|_| 0.0);
        self.grad_bias.map_in_place(|_| 0.0);
    }

    fn param_len(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape_is_valid_convolution_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lc = LocallyConnected2d::new(2, 3, 3, 6, 5, &mut rng);
        let x = Tensor::zeros(vec![2, 2, 6, 5]);
        let y = lc.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 3, 4, 3]);
    }

    #[test]
    fn unshared_weights_differ_across_positions() {
        // With weights set so that position (0,0) has kernel of ones and all
        // others zero, only the first output position responds.
        let mut rng = StdRng::seed_from_u64(0);
        let mut lc = LocallyConnected2d::new(1, 1, 2, 3, 3, &mut rng);
        let mut params = vec![0.0f32; lc.param_len()];
        for p in params.iter_mut().take(4) {
            *p = 1.0;
        }
        lc.set_params(&LayerParams::from_values(params)).unwrap();
        let x = Tensor::ones(vec![1, 1, 3, 3]);
        let y = lc.forward(&x).unwrap();
        assert_eq!(y.data(), &[4.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn rejects_wrong_spatial_size() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lc = LocallyConnected2d::new(1, 1, 2, 4, 4, &mut rng);
        let x = Tensor::zeros(vec![1, 1, 5, 5]);
        assert!(matches!(lc.forward(&x), Err(NnError::BadInput { .. })));
    }

    #[test]
    fn param_count_scales_with_output_area() {
        let mut rng = StdRng::seed_from_u64(0);
        let lc = LocallyConnected2d::new(1, 1, 2, 4, 4, &mut rng);
        // 3x3 output positions, each with a 2x2 kernel + bias.
        assert_eq!(lc.param_len(), 9 * 4 + 9);
    }

    #[test]
    fn numerical_gradient_check() {
        let mut rng = StdRng::seed_from_u64(5);
        let lc = LocallyConnected2d::new(2, 2, 2, 4, 4, &mut rng);
        let x = Tensor::randn(vec![2, 2, 4, 4], 0.0, 1.0, &mut rng);
        crate::gradcheck::check_layer(Box::new(lc), &x, 2e-2).unwrap();
    }
}
