//! Layer implementations.
//!
//! Every layer implements the object-safe [`Layer`] trait so that
//! [`crate::Sequential`] can hold a heterogeneous stack. Layers cache the
//! activations they need during `forward` and consume them in `backward`;
//! gradient buffers accumulate until [`Layer::zero_grads`] is called, which
//! lets callers implement mini-batch or multi-batch accumulation on top.

pub mod activation;
pub mod conv;
pub mod dense;
pub mod flatten;
pub mod locally_connected;
pub mod pool;

use crate::{LayerParams, NnError};
use mixnn_tensor::Tensor;
use std::fmt::Debug;

/// A differentiable network layer.
///
/// The trait is object-safe: [`crate::Sequential`] stores `Box<dyn Layer>`.
/// Implementations must be deterministic — given the same input and
/// parameters, `forward` and `backward` must produce identical results, a
/// property the reproduction relies on to verify MixNN's exact utility
/// equivalence.
pub trait Layer: Debug + Send + Sync {
    /// Human-readable layer kind, e.g. `"dense"`.
    fn name(&self) -> &'static str;

    /// Computes the layer output for `input`, caching whatever the backward
    /// pass will need.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] when the input shape is not what the
    /// layer was constructed for.
    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError>;

    /// Propagates `grad_output` backwards, accumulating parameter gradients
    /// and returning the gradient with respect to the layer input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] if no activation is
    /// cached, or [`NnError::BadInput`] on a shape mismatch.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError>;

    /// Flat view of the trainable parameters, or `None` for parameter-free
    /// layers (activations, pooling, flatten).
    fn params(&self) -> Option<LayerParams>;

    /// Loads a flat parameter vector produced by [`Layer::params`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParamLengthMismatch`] if the vector length differs
    /// from the layer's parameter count.
    fn set_params(&mut self, params: &LayerParams) -> Result<(), NnError>;

    /// Flat view of the accumulated parameter gradients, aligned with
    /// [`Layer::params`]; `None` for parameter-free layers.
    fn grads(&self) -> Option<LayerParams>;

    /// Clears the accumulated gradients.
    fn zero_grads(&mut self);

    /// Number of trainable parameters (0 for parameter-free layers).
    fn param_len(&self) -> usize;

    /// Clones the layer into a box (enables `Clone` for the model).
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Shared helper: validate a parameter vector length against a layer.
pub(crate) fn check_param_len(
    layer: &'static str,
    expected: usize,
    params: &LayerParams,
) -> Result<(), NnError> {
    if params.len() != expected {
        return Err(NnError::ParamLengthMismatch {
            layer: layer.to_string(),
            expected,
            actual: params.len(),
        });
    }
    Ok(())
}
