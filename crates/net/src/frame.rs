//! Length-prefixed MIXC frame bursts — the unit of transmission.
//!
//! A *frame* is one onion envelope (or whole onion message) plus a
//! sequence number; a *burst* is every frame a sender flushes to one
//! peer at once:
//!
//! ```text
//! magic   u32 = 0x4d495842 ("MIXB")
//! version u8  = 1
//! count   u32
//! repeat count times:
//!     seq  u32             // position in the sender's logical batch
//!     len  u32
//!     data len bytes       // MIXC onion bytes (opaque to the wire)
//! ```
//!
//! **Batched flushing** is the transmission analogue of the crypto
//! layer's `open_batch`: a round's C envelopes for one peer coalesce
//! into a *single* burst, paying the per-packet transmission overhead
//! once instead of C times. The per-envelope-flush baseline (one burst
//! per envelope) is what `eval load` measures batching against. Because
//! frames carry their sequence number, the receiver reassembles the
//! logical batch in order no matter how the wire delayed or reordered
//! the packets that carried it.

use bytes::{Buf, BufMut};
use std::error::Error;
use std::fmt;

/// Burst framing magic: `"MIXB"` as a big-endian u32.
pub const BURST_MAGIC: u32 = 0x4d49_5842;
/// Current burst framing version.
pub const BURST_VERSION: u8 = 1;
/// Fixed burst header bytes (magic + version + count).
pub const BURST_HEADER_BYTES: usize = 9;
/// Per-frame header bytes (seq + len).
pub const FRAME_HEADER_BYTES: usize = 8;

/// Wire bytes a burst of `frames` frames adds on top of its payloads.
pub const fn burst_overhead_bytes(frames: usize) -> usize {
    BURST_HEADER_BYTES + frames * FRAME_HEADER_BYTES
}

/// A malformed burst.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError {
    /// Human-readable decode failure.
    pub reason: String,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed frame burst: {}", self.reason)
    }
}

impl Error for FrameError {}

/// Accumulates frames and flushes them as one burst.
///
/// The internal buffer survives [`FrameWriter::flush`]-less reuse via
/// [`FrameWriter::clear`]; `flush` hands the finished burst out by value
/// (it goes on the wire) and re-arms the writer with a fresh header.
#[derive(Debug)]
pub struct FrameWriter {
    buf: Vec<u8>,
    count: u32,
}

impl Default for FrameWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameWriter {
    /// An empty writer with the burst header pre-laid.
    pub fn new() -> Self {
        let mut w = FrameWriter {
            buf: Vec::new(),
            count: 0,
        };
        w.lay_header();
        w
    }

    fn lay_header(&mut self) {
        self.buf.put_u32(BURST_MAGIC);
        self.buf.put_u8(BURST_VERSION);
        self.buf.put_u32(0); // count, patched on flush
    }

    /// Appends one frame carrying `payload` at logical position `seq`.
    pub fn push(&mut self, seq: u32, payload: &[u8]) {
        self.buf.put_u32(seq);
        self.buf.put_u32(payload.len() as u32);
        self.buf.put_slice(payload);
        self.count += 1;
    }

    /// Frames accumulated since the last flush.
    pub fn frames(&self) -> usize {
        self.count as usize
    }

    /// Whether no frame has been pushed since the last flush.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Bytes the flushed burst will occupy on the wire.
    pub fn wire_len(&self) -> usize {
        self.buf.len()
    }

    /// Finishes the burst: patches the frame count, hands the bytes out
    /// and re-arms the writer.
    pub fn flush(&mut self) -> Vec<u8> {
        self.buf[5..9].copy_from_slice(&self.count.to_be_bytes());
        let out = std::mem::take(&mut self.buf);
        self.count = 0;
        self.lay_header();
        out
    }

    /// Discards accumulated frames, keeping the buffer's capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.count = 0;
        self.lay_header();
    }
}

/// Parses a burst into `(seq, payload)` frames, in burst order.
///
/// # Errors
///
/// Returns [`FrameError`] on truncation, bad magic, an unknown version,
/// an implausible frame count or trailing bytes.
pub fn parse_burst(mut bytes: &[u8]) -> Result<Vec<(u32, Vec<u8>)>, FrameError> {
    let fail = |reason: &str| FrameError {
        reason: reason.to_string(),
    };
    if bytes.remaining() < BURST_HEADER_BYTES {
        return Err(fail("header truncated"));
    }
    if bytes.get_u32() != BURST_MAGIC {
        return Err(fail("bad magic"));
    }
    let version = bytes.get_u8();
    if version != BURST_VERSION {
        return Err(FrameError {
            reason: format!("unsupported version {version}"),
        });
    }
    let count = bytes.get_u32() as usize;
    if count > bytes.remaining() / FRAME_HEADER_BYTES + 1 {
        return Err(fail("implausible frame count"));
    }
    let mut frames = Vec::with_capacity(count);
    for _ in 0..count {
        if bytes.remaining() < FRAME_HEADER_BYTES {
            return Err(fail("frame header truncated"));
        }
        let seq = bytes.get_u32();
        let len = bytes.get_u32() as usize;
        if bytes.remaining() < len {
            return Err(fail("frame payload truncated"));
        }
        let mut payload = vec![0u8; len];
        bytes.copy_to_slice(&mut payload);
        frames.push((seq, payload));
    }
    if bytes.has_remaining() {
        return Err(fail("trailing bytes after last frame"));
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_batched_frames() {
        let mut w = FrameWriter::new();
        w.push(2, b"charlie");
        w.push(0, b"alpha");
        w.push(1, b"");
        assert_eq!(w.frames(), 3);
        let burst = w.flush();
        assert_eq!(
            burst.len(),
            burst_overhead_bytes(3) + "charlie".len() + "alpha".len()
        );
        let frames = parse_burst(&burst).unwrap();
        assert_eq!(
            frames,
            vec![
                (2, b"charlie".to_vec()),
                (0, b"alpha".to_vec()),
                (1, Vec::new())
            ]
        );
        // The writer re-armed.
        assert!(w.is_empty());
        w.push(9, b"x");
        let frames = parse_burst(&w.flush()).unwrap();
        assert_eq!(frames, vec![(9, b"x".to_vec())]);
    }

    #[test]
    fn empty_burst_is_valid() {
        let mut w = FrameWriter::new();
        let frames = parse_burst(&w.flush()).unwrap();
        assert!(frames.is_empty());
    }

    #[test]
    fn clear_discards_without_flushing() {
        let mut w = FrameWriter::new();
        w.push(0, b"dropped");
        w.clear();
        assert!(w.is_empty());
        assert!(parse_burst(&w.flush()).unwrap().is_empty());
    }

    #[test]
    fn truncation_anywhere_is_rejected() {
        let mut w = FrameWriter::new();
        w.push(0, b"abc");
        w.push(1, b"defg");
        let burst = w.flush();
        for cut in 0..burst.len() {
            assert!(parse_burst(&burst[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn bad_magic_version_trailing_and_count_are_rejected() {
        let mut w = FrameWriter::new();
        w.push(0, b"abc");
        let good = w.flush();

        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(parse_burst(&bad).unwrap_err().to_string().contains("magic"));

        let mut bad = good.clone();
        bad[4] = 7;
        assert!(parse_burst(&bad)
            .unwrap_err()
            .to_string()
            .contains("version 7"));

        let mut bad = good.clone();
        bad.push(0);
        assert!(parse_burst(&bad)
            .unwrap_err()
            .to_string()
            .contains("trailing"));

        let mut bad = good;
        bad[5..9].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(parse_burst(&bad)
            .unwrap_err()
            .to_string()
            .contains("implausible"));
    }
}
