//! Update transports that cross the simulated wire.
//!
//! [`NetCascadeTransport`] and [`NetMixnnTransport`] mirror the
//! in-process `CascadeTransport` / `MixnnTransport` exactly — same
//! sealing RNG discipline, same mixing pipeline — but every segment of
//! the update path travels through a [`SimLink`]: framed, transmitted
//! under latency/jitter/backpressure, reassembled. Under zero loss the
//! mixed output is bit-identical to the in-process drive (the
//! equivalence proptest pins this); packet loss and stalls surface as
//! [`LinkError`] timeouts, which the cascade's `FailurePolicy` consumes
//! and the federated loop sees as `FlError::Timeout`.

use crate::link::{FlushPolicy, SimLink};
use crate::sim::LinkConfig;
use mixnn_cascade::{CascadeAudit, CascadeCoordinator, CascadeError};
use mixnn_core::{
    codec, Endpoint, LinkError, MixingStrategy, MixnnProxy, ParallelIngest, RoundLink,
};
use mixnn_crypto::SealedBox;
use mixnn_fl::{FlError, ModelUpdate, UpdateTransport};
use mixnn_nn::ModelParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fl_error(e: LinkError) -> FlError {
    if e.is_timeout() {
        FlError::Timeout {
            message: e.to_string(),
        }
    } else {
        FlError::Transport {
            message: e.to_string(),
        }
    }
}

/// An [`UpdateTransport`] that routes each round through a mix cascade
/// whose every segment crosses the simulated network.
///
/// Coordinator, hops and server run unchanged — the coordinator's
/// link-aware drive (`run_round_over`) moves batches through the
/// [`SimLink`], so delivery failures trigger the configured
/// `FailurePolicy` exactly as a real wire outage would.
#[derive(Debug)]
pub struct NetCascadeTransport {
    coordinator: CascadeCoordinator,
    link: SimLink,
    /// RNG standing in for the participants' onion-sealing entropy.
    participant_rng: StdRng,
    last_audit: Option<CascadeAudit>,
}

impl NetCascadeTransport {
    /// Wraps a launched cascade, wiring a simulated network sized to its
    /// hop count.
    pub fn new(
        coordinator: CascadeCoordinator,
        seed: u64,
        cfg: LinkConfig,
        flush: FlushPolicy,
        timeout_ns: u64,
    ) -> Self {
        let hops = coordinator.hops().len();
        NetCascadeTransport {
            coordinator,
            link: SimLink::new(hops, seed ^ 0x6e65_745f, cfg, flush, timeout_ns),
            participant_rng: StdRng::seed_from_u64(seed),
            last_audit: None,
        }
    }

    /// Access to the cascade (per-hop stats, skip state).
    pub fn coordinator(&self) -> &CascadeCoordinator {
        &self.coordinator
    }

    /// Mutable access (reinstating hops between rounds).
    pub fn coordinator_mut(&mut self) -> &mut CascadeCoordinator {
        &mut self.coordinator
    }

    /// The simulated wire (stats, segment reconfiguration).
    pub fn link(&self) -> &SimLink {
        &self.link
    }

    /// Mutable wire access (loss injection in tests).
    pub fn link_mut(&mut self) -> &mut SimLink {
        &mut self.link
    }

    /// The audit of the most recent round, for experiments.
    pub fn last_audit(&self) -> Option<&CascadeAudit> {
        self.last_audit.as_ref()
    }

    fn relay_inner(&mut self, updates: Vec<ModelUpdate>) -> Result<Vec<ModelUpdate>, CascadeError> {
        let slot_ids: Vec<usize> = updates.iter().map(|u| u.client_id).collect();
        let params: Vec<ModelParams> = updates.into_iter().map(|u| u.params).collect();
        let round =
            self.coordinator
                .run_round_over(&params, &mut self.participant_rng, &mut self.link)?;
        self.last_audit = Some(round.audit);
        Ok(slot_ids
            .into_iter()
            .zip(round.mixed)
            .map(|(slot, params)| ModelUpdate::new(slot, params))
            .collect())
    }
}

impl UpdateTransport for NetCascadeTransport {
    fn label(&self) -> &str {
        "mixnn-cascade-net"
    }

    fn relay(&mut self, updates: Vec<ModelUpdate>) -> Result<Vec<ModelUpdate>, FlError> {
        self.relay_inner(updates).map_err(FlError::from)
    }
}

/// An [`UpdateTransport`] that routes each round through a single MixNN
/// proxy across the simulated network.
///
/// The sealed envelopes travel Clients → proxy as framed bursts; the
/// mixed plaintext updates travel proxy → server the same way. The
/// pipeline inside the proxy (parallel ingest, batch or streaming mix)
/// is identical to `MixnnTransport`'s encrypted mode.
#[derive(Debug)]
pub struct NetMixnnTransport {
    proxy: MixnnProxy,
    link: SimLink,
    compression: codec::CompressionConfig,
    /// RNG standing in for the participants' sealing entropy.
    participant_rng: StdRng,
}

impl NetMixnnTransport {
    /// Wraps a launched proxy behind a one-hop simulated network.
    pub fn new(
        proxy: MixnnProxy,
        seed: u64,
        cfg: LinkConfig,
        flush: FlushPolicy,
        timeout_ns: u64,
    ) -> Self {
        NetMixnnTransport {
            proxy,
            link: SimLink::new(1, seed ^ 0x6e65_745f, cfg, flush, timeout_ns),
            compression: codec::CompressionConfig::F32,
            participant_rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Sets the wire compression for the clients → proxy leg (the
    /// per-client cost at scale). The proxy → server leg stays the
    /// lossless v1 format: its payload is already-mixed aggregate input,
    /// and re-quantizing decoded values would compound the loss.
    #[must_use]
    pub fn with_compression(mut self, compression: codec::CompressionConfig) -> Self {
        self.compression = compression;
        self
    }

    /// Access to the proxy (stats, memory, last plan).
    pub fn proxy(&self) -> &MixnnProxy {
        &self.proxy
    }

    /// The simulated wire.
    pub fn link(&self) -> &SimLink {
        &self.link
    }

    /// Mutable wire access (loss injection in tests).
    pub fn link_mut(&mut self) -> &mut SimLink {
        &mut self.link
    }

    /// Runs one proxy round over the wire: seal, transmit, ingest, mix,
    /// transmit, decode.
    ///
    /// # Errors
    ///
    /// Proxy rejections surface as [`FlError::Transport`]; wire timeouts
    /// as [`FlError::Timeout`].
    pub fn relay_round(&mut self, params: Vec<ModelParams>) -> Result<Vec<ModelParams>, FlError> {
        let sealed: Vec<Vec<u8>> = params
            .iter()
            .map(|p| {
                SealedBox::seal(
                    &codec::encode_params_with(p, self.compression),
                    self.proxy.public_key(),
                    &mut self.participant_rng,
                )
                .expect("attested enclave keys are never low-order")
            })
            .collect();
        let delivered = self
            .link
            .deliver(Endpoint::Clients, Endpoint::Hop(0), sealed)
            .map_err(fl_error)?;
        let ingest = ParallelIngest::from_parallelism(self.proxy.parallelism());
        let mut streamed = Vec::new();
        for result in ingest.submit_all(&mut self.proxy, &delivered) {
            let out = result.map_err(|e| FlError::Transport {
                message: e.to_string(),
            })?;
            if let Some(out) = out {
                streamed.push(out);
            }
        }
        let mixed = match self.proxy.strategy() {
            MixingStrategy::Batch => self.proxy.mix_batch().map_err(|e| FlError::Transport {
                message: e.to_string(),
            })?,
            MixingStrategy::Streaming { .. } => {
                streamed.extend(self.proxy.flush().map_err(|e| FlError::Transport {
                    message: e.to_string(),
                })?);
                streamed
            }
        };
        let encoded: Vec<Vec<u8>> = mixed.iter().map(codec::encode_params).collect();
        drop(mixed);
        let delivered = self
            .link
            .deliver(Endpoint::Hop(0), Endpoint::Server, encoded)
            .map_err(fl_error)?;
        delivered
            .iter()
            .map(|bytes| {
                codec::decode_params(bytes).map_err(|e| FlError::Transport {
                    message: e.to_string(),
                })
            })
            .collect()
    }
}

impl UpdateTransport for NetMixnnTransport {
    fn label(&self) -> &str {
        "mixnn-proxy-net"
    }

    fn relay(&mut self, updates: Vec<ModelUpdate>) -> Result<Vec<ModelUpdate>, FlError> {
        let slot_ids: Vec<usize> = updates.iter().map(|u| u.client_id).collect();
        let params = updates.into_iter().map(|u| u.params).collect();
        let mixed = self.relay_round(params)?;
        Ok(slot_ids
            .into_iter()
            .zip(mixed)
            .map(|(slot, params)| ModelUpdate::new(slot, params))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixnn_cascade::FailurePolicy;
    use mixnn_core::MixnnProxyConfig;
    use mixnn_enclave::AttestationService;
    use mixnn_nn::LayerParams;

    fn updates(c: usize) -> Vec<ModelUpdate> {
        (0..c)
            .map(|i| {
                ModelUpdate::new(
                    i,
                    ModelParams::from_layers(vec![
                        LayerParams::from_values(vec![i as f32; 2]),
                        LayerParams::from_values(vec![-(i as f32); 3]),
                    ]),
                )
            })
            .collect()
    }

    fn cascade_transport(policy: FailurePolicy) -> NetCascadeTransport {
        let mut rng = StdRng::seed_from_u64(61);
        let service = AttestationService::new(&mut rng);
        let cascade =
            CascadeCoordinator::linear(vec![2, 3], 3, 17, policy, &service, &mut rng).unwrap();
        NetCascadeTransport::new(
            cascade,
            77,
            LinkConfig::default(),
            FlushPolicy::Batched,
            10_000_000_000,
        )
    }

    #[test]
    fn cascade_relay_over_wire_preserves_slots_and_aggregate() {
        let mut t = cascade_transport(FailurePolicy::Abort);
        let ins = updates(6);
        let outs = t.relay(ins.clone()).unwrap();
        assert_eq!(outs.len(), 6);
        let in_slots: Vec<usize> = ins.iter().map(|u| u.client_id).collect();
        let out_slots: Vec<usize> = outs.iter().map(|u| u.client_id).collect();
        assert_eq!(in_slots, out_slots);
        let a: Vec<ModelParams> = ins.into_iter().map(|u| u.params).collect();
        let b: Vec<ModelParams> = outs.into_iter().map(|u| u.params).collect();
        assert_eq!(ModelParams::mean(&a), ModelParams::mean(&b));
        assert!(t.link().stats().packets_sent > 0, "rounds crossed the wire");
    }

    #[test]
    fn proxy_relay_over_wire_preserves_aggregate() {
        let mut rng = StdRng::seed_from_u64(5);
        let service = AttestationService::new(&mut rng);
        let proxy = MixnnProxy::launch(
            MixnnProxyConfig {
                expected_signature: vec![2, 3],
                seed: 3,
                ..MixnnProxyConfig::default()
            },
            &service,
            &mut rng,
        );
        let mut t = NetMixnnTransport::new(
            proxy,
            77,
            LinkConfig::default(),
            FlushPolicy::Batched,
            10_000_000_000,
        );
        let ins = updates(6);
        let outs = t.relay(ins.clone()).unwrap();
        assert_eq!(outs.len(), 6);
        let a: Vec<ModelParams> = ins.into_iter().map(|u| u.params).collect();
        let b: Vec<ModelParams> = outs.into_iter().map(|u| u.params).collect();
        assert_eq!(ModelParams::mean(&a), ModelParams::mean(&b));
        assert_eq!(t.label(), "mixnn-proxy-net");
    }

    #[test]
    fn proxy_wire_timeout_is_typed() {
        let mut rng = StdRng::seed_from_u64(5);
        let service = AttestationService::new(&mut rng);
        let proxy = MixnnProxy::launch(
            MixnnProxyConfig {
                expected_signature: vec![2, 3],
                seed: 3,
                ..MixnnProxyConfig::default()
            },
            &service,
            &mut rng,
        );
        let mut t = NetMixnnTransport::new(
            proxy,
            77,
            LinkConfig::default(),
            FlushPolicy::Batched,
            1_000_000_000,
        );
        t.link_mut().set_segment_config(
            Endpoint::Clients,
            Endpoint::Hop(0),
            LinkConfig {
                loss: 1.0,
                ..LinkConfig::default()
            },
        );
        let err = t.relay(updates(4)).unwrap_err();
        assert!(matches!(err, FlError::Timeout { .. }), "got {err}");
    }
}
